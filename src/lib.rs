//! # homonym-rings
//!
//! A full Rust reproduction of *"Leader Election in Asymmetric Labeled
//! Unidirectional Rings"* (Altisen, Datta, Devismes, Durand, Larmore —
//! IPDPS 2017): deterministic, process-terminating leader election among
//! **homonym processes** (labels need not be unique) on unidirectional
//! rings, where processes know a bound `k` on label multiplicity but
//! nothing about the ring size `n`.
//!
//! ## Quick start
//!
//! ```
//! use homonym_rings::prelude::*;
//!
//! // The paper's Figure 1 ring: labels 1,3,1,3,2,2,1,2 and k = 3.
//! let ring = RingLabeling::from_raw(&[1, 3, 1, 3, 2, 2, 1, 2]);
//! assert!(ring.is_asymmetric() && ring.in_kk(3));
//!
//! // Run algorithm Ak under a seeded asynchronous scheduler.
//! let report = run(&Ak::new(3), &ring, &mut RandomSched::new(42), RunOptions::default());
//! assert!(report.clean());
//! assert_eq!(report.leader, Some(0)); // p0 is the true leader
//!
//! // Bk elects the same process with O(1) labels of state.
//! let report = run(&Bk::new(3), &ring, &mut RandomSched::new(43), RunOptions::default());
//! assert_eq!(report.leader, Some(0));
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`words`] | `hre-words` | Lyndon words, smallest repeating prefix, rotations |
//! | [`ring`] | `hre-ring` | Labelings, classes `A`/`Kk`/`U*`, generators, enumeration |
//! | [`sim`] | `hre-sim` | The paper's model: guarded actions, FIFO links, schedulers, spec monitor |
//! | [`core`] | `hre-core` | Algorithms `Ak` (Table 1) and `Bk` (Table 2 / Figure 2) |
//! | [`baselines`] | `hre-baselines` | Chang–Roberts, Peterson, known-`n` Lyndon election |
//! | [`runtime`] | `hre-runtime` | One-thread-per-process crossbeam-channel runtime |
//! | [`net`] | `hre-net` | TCP socket runtime: framing, fault injection, FIFO/exactly-once recovery |
//! | [`svc`] | `hre-svc` | Election-as-a-service daemon: HTTP/1.1, worker pool, canonical-ring result cache |
//! | [`cluster`] | `hre-cluster` | Sharded election cluster: rotation-affinity routing, breakers, hedged retries |
//! | [`analysis`] | `hre-analysis` | Executable lower bound / impossibility proofs, figure reconstruction |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use hre_analysis as analysis;
pub use hre_baselines as baselines;
pub use hre_cluster as cluster;
pub use hre_core as core;
pub use hre_ctrl as ctrl;
pub use hre_net as net;
pub use hre_ring as ring;
pub use hre_runtime as runtime;
pub use hre_sim as sim;
pub use hre_svc as svc;
pub use hre_words as words;

/// One-stop imports for applications.
pub mod prelude {
    pub use hre_analysis::{demonstrate_impossibility, reconstruct_phases, Table};
    pub use hre_baselines::{BoundedN, ChangRoberts, MtAk, OracleN, Peterson};
    pub use hre_cluster::{ClusterConfig, HashRing, RouterHandle};
    pub use hre_core::{Ak, AkReference, Bk};
    pub use hre_net::{run_tcp, FaultPolicy, NetOptions, NetReport};
    pub use hre_ring::{classify, generate, RingLabeling};
    pub use hre_runtime::{run_threaded, ThreadedOptions};
    pub use hre_sim::{
        explore, run, run_faulty, satisfies_message_terminating, AdversarialSched, Adversary,
        ExploreReport, FaultPlan, LinkFault, RandomSched, RoundRobinSched, RunOptions, RunReport,
        SyncSched, Verdict,
    };
    pub use hre_svc::{AlgoId, ElectRequest, ServerHandle, SvcConfig};
    pub use hre_words::{labels, Label};
}
