//! The `hre` command-line interface, as a library — the `hre` binary is a
//! thin wrapper so every code path here is unit-tested.
//!
//! Commands return their output as a `String` (the binary prints it), and
//! errors as `Err(message)`.

use crate::analysis::render::render_ring;
use crate::analysis::spacetime::render_activity_grid;
use crate::prelude::*;
use crate::ring::generate;
use crate::sim::Scheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Usage text shown on errors and `hre help`.
pub const USAGE: &str = "\
hre — leader election in asymmetric labeled unidirectional rings

USAGE:
  hre classify --ring L0,L1,...            classify a labeling (A, Kk, U*, true leader)
  hre elect --ring L0,L1,... --algo A      run an election
        --algo ak|ak-ref|bk|cr|peterson|oracle-n
        [--k K]              multiplicity bound (default: the ring's actual; bk needs >= 2)
        [--transport T]      sim | threads | tcp  (default sim)
        [--sched S]          sync | rr | random:SEED | starve:PID  (sim only, default rr)
        [--faults F]         none | stress — transport-fault mix (tcp only, default none)
        [--fault-seed S]     seed for the fault schedules (tcp only, default 0)
        [--phases]           print Bk's phase table (bk + sim only)
        [--diagram]          print the virtual-time activity grid of the run (sim only)
        [--json]             emit the run as JSON, byte-identical to POST /elect (sim + rr only)
  hre generate --n N [--k K] [--class C] [--seed S]   print a random ring
        --class a-kk|k1|ustar|exact        (default a-kk)
  hre impossibility --n N [--k0 K] [--seed S]         run the Theorem 1 adversary
  hre verify --ring L0,L1,... [--k K]                 model-check every interleaving
  hre serve [--addr A] [--workers W] [--cache-cap C]  run the election daemon
        [--queue-cap Q] [--deadline-ms D]  (defaults: 127.0.0.1:8080, 4 workers,
                                            cache 1024, queue 256, deadline 2000 ms;
                                            drains gracefully on SIGTERM/ctrl-c)
        [--max-body B]       largest accepted request body in bytes (default 1 MiB)
        [--trace-cap T]      flight-recorder span capacity; 0 = off (default 4096)
        [--slow-ms S]        log span trees of requests slower than S ms;
                             0 disables the slow-request log (default 1000)
        [--ctrl]             run a control-plane node: gossip membership, elect
                             the cluster coordinator with Ak over TCP
        [--join S1,S2,...]   control-plane seed addresses to join through
                             (implies --ctrl; empty bootstraps a new cluster)
        [--ctrl-addr A]      control-plane listen address (default 127.0.0.1:0)
        [--node-id I]        stable node id (default: derived from the serve address)
  hre bench-svc [--addr A] [--requests N] [--connections C]   load-test a daemon
        [--ring L0,L1,...] [--algo A] [--k K] [--no-rotate]
        [--workers W] [--cache-cap C]      (no --addr: spins up an in-process daemon)
  hre cluster-route --backends A1,A2,...   front a set of daemons with the router
        [--addr A] [--vnodes V] [--hedge-min-ms H] [--failure-threshold F]
        [--max-body B] [--trace-cap T] [--slow-ms S]   (as for hre serve)
        [--ctrl] [--join S1,S2,...] [--ctrl-addr A]    join the control plane as an
                             observer: the elected coordinator pushes the backend
                             list, so --backends becomes optional (dynamic topology)
        (defaults: 127.0.0.1:8090, 128 vnodes, hedge floor 30 ms, threshold 3;
         rotation-affinity placement, breaker failover, drains on SIGTERM/ctrl-c)
  hre ctrl-status --addr A                 control-plane status of a live node
        (any /ctrl endpoint: a daemon, a router, or a bare control address)
  hre ctrl-ring --addr A                   render the election ring a node sees
        (who is in the labeled unidirectional ring, labels, coordinator)
  hre trace --addr A [--id HEX]            fetch traces from a live daemon
        (no --id: list recent root spans; --id: render that trace's span
         tree — on a router, merged with the backends' spans)
  hre bench-cluster [--addr A] [--requests N] [--connections C]   load-test a cluster
        [--rings W] [--n SIZE] [--no-rotate]
        [--nodes B] [--cache-cap C]        (no --addr: spins up B in-process
                                            backends behind an in-process router)
        [--churn] [--kills K]              self-hosting churn mode (in-process only):
                             the cluster elects its own coordinator, K times the
                             current coordinator is killed mid-load and a fresh
                             member rejoins; reports re-election latency p50/p95
                             alongside request latency (default 2 kills)
  hre bench-core [--sizes N1,N2,...] [--k K] [--threads T] [--seed S] [--json]
        in-process engine throughput: full Ak/Bk elections per second,
        messages per second, and a peak-memory proxy, per ring size
        (defaults: sizes 8,32,128,512, k 3, seed 9000, threads = all cores)
";

/// Parsed arguments: `--key value` pairs plus bare flags.
pub type Opts = BTreeMap<String, String>;

/// Splits `args` into a command name and its options. Returns `None` on
/// malformed input (missing value, key without `--`, no command).
pub fn parse(args: &[String]) -> Option<(String, Opts)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut opts = Opts::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].strip_prefix("--")?.to_string();
        if matches!(key.as_str(), "phases" | "diagram" | "json" | "no-rotate" | "ctrl" | "churn") {
            opts.insert(key, "true".into());
            i += 1;
            continue;
        }
        let value = rest.get(i + 1)?.to_string();
        opts.insert(key, value);
        i += 2;
    }
    Some((cmd, opts))
}

/// Dispatches a parsed command; returns the text to print.
pub fn dispatch(cmd: &str, opts: &Opts) -> Result<String, String> {
    match cmd {
        "classify" => classify_cmd(opts),
        "elect" => elect_cmd(opts),
        "generate" => generate_cmd(opts),
        "impossibility" => impossibility_cmd(opts),
        "verify" => verify_cmd(opts),
        "serve" => serve_cmd(opts),
        "bench-svc" => bench_svc_cmd(opts),
        "cluster-route" => cluster_route_cmd(opts),
        "bench-cluster" => bench_cluster_cmd(opts),
        "bench-core" => bench_core_cmd(opts),
        "trace" => trace_cmd(opts),
        "ctrl-status" => ctrl_status_cmd(opts),
        "ctrl-ring" => ctrl_ring_cmd(opts),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn ring_from(opts: &Opts) -> Result<RingLabeling, String> {
    let spec = opts.get("ring").ok_or("--ring is required")?;
    let raw: Result<Vec<u64>, _> = spec.split(',').map(|s| s.trim().parse::<u64>()).collect();
    let raw = raw.map_err(|e| format!("bad --ring: {e}"))?;
    if raw.len() < 2 {
        return Err("--ring needs at least two labels".into());
    }
    Ok(RingLabeling::from_raw(&raw))
}

fn sched_from(opts: &Opts) -> Result<Box<dyn Scheduler>, String> {
    match opts.get("sched").map(String::as_str).unwrap_or("rr") {
        "sync" => Ok(Box::new(SyncSched)),
        "rr" => Ok(Box::new(RoundRobinSched::default())),
        s if s.starts_with("random:") => {
            let seed: u64 = s[7..].parse().map_err(|e| format!("bad seed: {e}"))?;
            Ok(Box::new(RandomSched::new(seed)))
        }
        s if s.starts_with("starve:") => {
            let pid: usize = s[7..].parse().map_err(|e| format!("bad pid: {e}"))?;
            Ok(Box::new(AdversarialSched { strategy: Adversary::Starve(pid) }))
        }
        other => Err(format!("unknown scheduler '{other}'")),
    }
}

fn u64_opt(opts: &Opts, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        Some(s) => s.parse().map_err(|e| format!("bad --{key}: {e}")),
        None => Ok(default),
    }
}

fn classify_cmd(opts: &Opts) -> Result<String, String> {
    let ring = ring_from(opts)?;
    let c = classify(&ring);
    let mut out = String::new();
    let _ = writeln!(out, "{}", render_ring(&ring, c.true_leader));
    let _ = writeln!(out, "{c}");
    let _ = writeln!(
        out,
        "classes: A={} | smallest k with R ∈ Kk: {} | U*={} | K1={}",
        c.asymmetric,
        c.minimal_k(),
        c.has_unique_label,
        c.fully_identified()
    );
    Ok(out)
}

fn elect_cmd(opts: &Opts) -> Result<String, String> {
    let ring = ring_from(opts)?;
    let algo = opts.get("algo").map(String::as_str).unwrap_or("ak");
    let k = u64_opt(opts, "k", ring.max_multiplicity() as u64)? as usize;
    if opts.contains_key("json") {
        return elect_json_cmd(opts, &ring, algo, k);
    }
    match opts.get("transport").map(String::as_str).unwrap_or("sim") {
        "sim" => reject_tcp_only_flags(opts, "sim")?,
        "threads" => {
            reject_tcp_only_flags(opts, "threads")?;
            return elect_threads_cmd(opts, &ring, algo, k);
        }
        "tcp" => return elect_tcp_cmd(opts, &ring, algo, k),
        other => return Err(format!("unknown transport '{other}'")),
    }
    let mut sched = sched_from(opts)?;
    let want_diagram = opts.contains_key("diagram");
    let run_opts = RunOptions { record_trace: want_diagram, ..Default::default() };

    let (clean, leader, metrics, violations, diagram) = match algo {
        "ak" => summarize(run(&Ak::new(k.max(1)), &ring, &mut sched, run_opts)),
        "ak-ref" => summarize(run(&AkReference::new(k.max(1)), &ring, &mut sched, run_opts)),
        "bk" => summarize(run(&Bk::new(k.max(2)), &ring, &mut sched, run_opts)),
        "cr" => summarize(run(&ChangRoberts, &ring, &mut sched, run_opts)),
        "peterson" => summarize(run(&Peterson, &ring, &mut sched, run_opts)),
        "oracle-n" => summarize(run(&OracleN::new(ring.n()), &ring, &mut sched, run_opts)),
        other => return Err(format!("unknown algorithm '{other}'")),
    };

    let mut out = String::new();
    let _ = writeln!(out, "{}", render_ring(&ring, leader));
    match leader {
        Some(l) => {
            let _ = writeln!(
                out,
                "elected p{l} (label {}) — spec {}",
                ring.label(l),
                if clean { "satisfied" } else { "VIOLATED" }
            );
        }
        None => {
            let _ = writeln!(out, "no unique leader — spec VIOLATED");
        }
    }
    let _ = writeln!(out, "{metrics}");
    for v in &violations {
        let _ = writeln!(out, "violation: {v}");
    }
    if let Some(d) = diagram {
        let _ = writeln!(out, "\nactivity grid (● receive, ◐ initial action, · idle):");
        out.push_str(&d);
    }
    if opts.contains_key("phases") {
        if algo != "bk" {
            return Err("--phases applies to --algo bk".into());
        }
        let table = reconstruct_phases(&ring, k.max(2));
        let _ = writeln!(out, "\nphases (● active at start, ○ passive):");
        for phase in 1..=table.phases() {
            let guests: Vec<_> = (0..ring.n()).map(|p| table.guest(phase, p)).collect();
            let _ = writeln!(
                out,
                "  {:>3}: {}",
                phase,
                crate::analysis::render::render_phase(&guests, &table.active_set(phase))
            );
        }
    }
    if !clean {
        return Err(format!("{out}election did not satisfy the specification"));
    }
    Ok(out)
}

/// `hre elect --json`: the run as the service's response document.
///
/// The output is **byte-identical** to the body a daemon returns for
/// `POST /elect` on the same ring/algorithm/k (both sides build it via
/// `hre_svc::response_json`), so served results can be diffed against
/// in-process runs directly. That contract pins the execution model, so
/// the flag only combines with the defaults the daemon uses: `sim`
/// transport and the round-robin scheduler.
fn elect_json_cmd(
    opts: &Opts,
    ring: &RingLabeling,
    algo: &str,
    k: usize,
) -> Result<String, String> {
    for key in ["phases", "diagram", "faults", "fault-seed"] {
        if opts.contains_key(key) {
            return Err(format!("--{key} cannot be combined with --json"));
        }
    }
    if opts.get("transport").is_some_and(|t| t != "sim") {
        return Err("--json requires --transport sim (the daemon's execution model)".into());
    }
    if opts.get("sched").is_some_and(|s| s != "rr") {
        return Err("--json requires the default rr scheduler (matches the daemon)".into());
    }
    let algo_id = AlgoId::parse(algo).ok_or_else(|| format!("unknown algorithm '{algo}'"))?;
    let labels: Vec<u64> = ring.labels().iter().map(|l| l.raw()).collect();
    let req = ElectRequest::new(labels, algo_id, Some(k))?;
    let out = crate::svc::run_election(&req)?;
    Ok(crate::svc::response_json(&req, &out))
}

fn reject_sim_only_flags(opts: &Opts) -> Result<(), String> {
    for key in ["sched", "phases", "diagram"] {
        if opts.contains_key(key) {
            return Err(format!("--{key} applies only to --transport sim"));
        }
    }
    Ok(())
}

fn reject_tcp_only_flags(opts: &Opts, transport: &str) -> Result<(), String> {
    for key in ["faults", "fault-seed"] {
        if opts.contains_key(key) {
            return Err(format!("--{key} applies only to --transport tcp, not {transport}"));
        }
    }
    Ok(())
}

fn render_outcome(ring: &RingLabeling, clean: bool, leader: Option<usize>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", render_ring(ring, leader));
    match leader {
        Some(l) => {
            let _ = writeln!(
                out,
                "elected p{l} (label {}) — spec {}",
                ring.label(l),
                if clean { "satisfied" } else { "VIOLATED" }
            );
        }
        None => {
            let _ = writeln!(out, "no unique leader — spec VIOLATED");
        }
    }
    out
}

fn elect_threads_cmd(
    opts: &Opts,
    ring: &RingLabeling,
    algo: &str,
    k: usize,
) -> Result<String, String> {
    reject_sim_only_flags(opts)?;
    let t = ThreadedOptions::default();
    let rep = match algo {
        "ak" => run_threaded(&Ak::new(k.max(1)), ring, t),
        "ak-ref" => run_threaded(&AkReference::new(k.max(1)), ring, t),
        "bk" => run_threaded(&Bk::new(k.max(2)), ring, t),
        "cr" => run_threaded(&ChangRoberts, ring, t),
        "peterson" => run_threaded(&Peterson, ring, t),
        "oracle-n" => run_threaded(&OracleN::new(ring.n()), ring, t),
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let mut out = render_outcome(ring, rep.clean(), rep.leader());
    let _ = writeln!(
        out,
        "threads transport: {} messages | wall {:.3} ms",
        rep.messages,
        rep.wall.as_secs_f64() * 1e3
    );
    if !rep.clean() {
        return Err(format!("{out}election did not satisfy the specification"));
    }
    Ok(out)
}

fn elect_tcp_cmd(opts: &Opts, ring: &RingLabeling, algo: &str, k: usize) -> Result<String, String> {
    reject_sim_only_flags(opts)?;
    let faults = match opts.get("faults").map(String::as_str).unwrap_or("none") {
        "none" => FaultPolicy::NONE,
        "stress" => FaultPolicy::stress(),
        other => return Err(format!("unknown fault mix '{other}' (none | stress)")),
    };
    let nopts =
        NetOptions { faults, fault_seed: u64_opt(opts, "fault-seed", 0)?, ..Default::default() };
    let rep = match algo {
        "ak" => run_tcp(&Ak::new(k.max(1)), ring, nopts),
        "ak-ref" => run_tcp(&AkReference::new(k.max(1)), ring, nopts),
        "bk" => run_tcp(&Bk::new(k.max(2)), ring, nopts),
        "cr" => run_tcp(&ChangRoberts, ring, nopts),
        "peterson" => run_tcp(&Peterson, ring, nopts),
        "oracle-n" => run_tcp(&OracleN::new(ring.n()), ring, nopts),
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let mut out = render_outcome(ring, rep.clean(), rep.leader());
    let t = &rep.net.total;
    let _ = writeln!(
        out,
        "tcp transport: {} logical messages | wall {:.3} ms",
        rep.messages,
        rep.wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "  wire: {} frames (+{} retries), {} acks, {} bytes, {} reconnects",
        t.frames_sent, t.frames_retried, t.acks_sent, t.bytes_on_wire, t.reconnects
    );
    let _ = writeln!(
        out,
        "  recovery: {} duplicate frames suppressed, {} frames rejected, {} faults injected",
        t.dup_frames_rx, t.frames_rejected, t.faults_injected
    );
    match t.rtt_mean() {
        Some(mean) => {
            let _ = writeln!(
                out,
                "  rtt: {} clean samples, mean {:.0} µs",
                t.rtt.count,
                mean.as_secs_f64() * 1e6
            );
            out.push_str(&rep.net.rtt_histogram_pretty());
        }
        None => {
            let _ = writeln!(out, "  rtt: no clean samples (every frame was retransmitted)");
        }
    }
    if !rep.clean() {
        return Err(format!("{out}election did not satisfy the specification"));
    }
    Ok(out)
}

type Summary =
    (bool, Option<usize>, crate::sim::RunMetrics, Vec<crate::sim::SpecViolation>, Option<String>);

fn summarize<M: Clone + std::fmt::Debug>(rep: RunReport<M>) -> Summary {
    let diagram = rep.trace.as_ref().map(|t| render_activity_grid(t, rep.metrics.n));
    (rep.clean(), rep.leader, rep.metrics, rep.violations, diagram)
}

fn generate_cmd(opts: &Opts) -> Result<String, String> {
    let n = u64_opt(opts, "n", 0)? as usize;
    if n < 2 {
        return Err("--n (>= 2) is required".into());
    }
    let k = u64_opt(opts, "k", 2)? as usize;
    let seed = u64_opt(opts, "seed", 0)?;
    let class = opts.get("class").map(String::as_str).unwrap_or("a-kk");
    let mut rng = StdRng::seed_from_u64(seed);
    let ring = match class {
        "k1" => generate::random_k1(n, &mut rng),
        "ustar" => generate::random_ustar_inter_kk(n, k, &mut rng),
        "exact" => generate::random_exact_multiplicity(n, k, &mut rng),
        "a-kk" => generate::random_a_inter_kk(n, k, (n.div_ceil(k) as u64 + 2).max(3), &mut rng),
        other => return Err(format!("unknown class '{other}'")),
    };
    let c = classify(&ring);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        ring.labels().iter().map(|l| l.to_string()).collect::<Vec<_>>().join(",")
    );
    let _ = writeln!(out, "{}", render_ring(&ring, c.true_leader));
    let _ = writeln!(out, "{c}");
    Ok(out)
}

fn impossibility_cmd(opts: &Opts) -> Result<String, String> {
    let n = u64_opt(opts, "n", 0)? as usize;
    if n < 2 {
        return Err("--n (>= 2) is required".into());
    }
    let k0 = u64_opt(opts, "k0", 2)? as usize;
    let seed = u64_opt(opts, "seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generate::random_k1(n, &mut rng);
    let mut out = String::new();
    let _ = writeln!(out, "base K1 ring : {}", render_ring(&base, None));
    let cert = demonstrate_impossibility(&Ak::new(k0.max(1)), &base);
    let _ = writeln!(
        out,
        "candidate    : Ak(k0={k0}) — terminates on the base in T = {} sync steps",
        cert.t_steps
    );
    let _ = writeln!(
        out,
        "construction : replicate x{} + fresh label → {} processes in U* ∩ K{}",
        cert.k,
        cert.big.n(),
        cert.k
    );
    match cert.two_leaders_step {
        Some(step) => {
            let names: Vec<String> = cert.leaders.iter().map(|l| format!("q{l}")).collect();
            let _ = writeln!(
                out,
                "verdict      : at sync step {step}, processes {} ALL claim leadership — \
                 spec violated, Theorem 1 confirmed",
                names.join(", ")
            );
        }
        None => {
            let _ = writeln!(out, "verdict      : violations {:?}", cert.violations);
        }
    }
    Ok(out)
}

fn verify_cmd(opts: &Opts) -> Result<String, String> {
    let ring = ring_from(opts)?;
    let k = u64_opt(opts, "k", ring.max_multiplicity() as u64)? as usize;
    let mut out = String::new();
    let ak = explore(&Ak::new(k.max(1)), &ring, 5_000_000);
    let _ = writeln!(
        out,
        "Ak(k={}): {} configurations, verified={}",
        k.max(1),
        ak.configurations,
        ak.verified()
    );
    let bk = explore(&Bk::new(k.max(2)), &ring, 5_000_000);
    let _ = writeln!(
        out,
        "Bk(k={}): {} configurations, verified={}",
        k.max(2),
        bk.configurations,
        bk.verified()
    );
    if !(ak.verified() && bk.verified()) {
        return Err(format!("{out}model checking FAILED"));
    }
    Ok(out)
}

fn svc_config_from(opts: &Opts, default_addr: &str) -> Result<SvcConfig, String> {
    let slow_ms = u64_opt(opts, "slow-ms", 1000)?;
    Ok(SvcConfig {
        addr: opts.get("addr").cloned().unwrap_or_else(|| default_addr.into()),
        workers: u64_opt(opts, "workers", 4)? as usize,
        cache_cap: u64_opt(opts, "cache-cap", 1024)? as usize,
        cache_shards: u64_opt(opts, "cache-shards", 8)? as usize,
        queue_cap: u64_opt(opts, "queue-cap", 256)? as usize,
        deadline: std::time::Duration::from_millis(u64_opt(opts, "deadline-ms", 2000)?),
        max_body: u64_opt(opts, "max-body", crate::svc::DEFAULT_MAX_BODY as u64)? as usize,
        trace_cap: u64_opt(opts, "trace-cap", hre_runtime::trace::DEFAULT_TRACE_CAP as u64)?
            as usize,
        slow_threshold: (slow_ms > 0).then(|| std::time::Duration::from_millis(slow_ms)),
        ctrl_status: None,
    })
}

/// Whether this invocation asked for a control-plane node: `--ctrl`
/// explicitly, or `--join` (joining seeds implies running one).
fn wants_ctrl(opts: &Opts) -> bool {
    opts.contains_key("ctrl") || opts.contains_key("join")
}

/// Control-plane node config from the shared `--join`/`--ctrl-addr`/
/// `--node-id` options; `serve_addr` is the data-plane address this
/// member advertises (known only after the daemon binds).
fn ctrl_cfg_from(
    opts: &Opts,
    role: crate::ctrl::Role,
    serve_addr: String,
    recorder: std::sync::Arc<hre_runtime::trace::FlightRecorder>,
) -> Result<crate::ctrl::CtrlConfig, String> {
    let seeds: Vec<String> = opts
        .get("join")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect())
        .unwrap_or_default();
    let node_id = match opts.get("node-id") {
        Some(s) => Some(s.parse::<u64>().map_err(|e| format!("bad --node-id: {e}"))?),
        None => None,
    };
    Ok(crate::ctrl::CtrlConfig {
        node_id,
        role,
        ctrl_addr: opts.get("ctrl-addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into()),
        serve_addr,
        seeds,
        recorder: Some(recorder),
        ..Default::default()
    })
}

/// `hre serve`: run the daemon until SIGTERM/SIGINT, then drain.
///
/// With `--ctrl` (or `--join`), the daemon also runs a control-plane
/// node: it gossips membership, takes part in the `Ak` coordinator
/// election over TCP, and serves the control document on the daemon's
/// own `GET /ctrl`.
///
/// The listening banner is printed eagerly (the command only returns
/// after the drain), so orchestration scripts can wait for readiness on
/// stdout or just poll `GET /healthz`.
fn serve_cmd(opts: &Opts) -> Result<String, String> {
    let mut cfg = svc_config_from(opts, "127.0.0.1:8080")?;
    // The control node needs the daemon's bound address, which exists
    // only after the daemon starts — so `GET /ctrl` gets a late-bound
    // provider that delegates once the node is up.
    let late: std::sync::Arc<std::sync::Mutex<Option<crate::svc::StatusProvider>>> =
        std::sync::Arc::new(std::sync::Mutex::new(None));
    if wants_ctrl(opts) {
        let late = std::sync::Arc::clone(&late);
        cfg.ctrl_status = Some(crate::svc::StatusProvider::new(move || {
            late.lock()
                .unwrap()
                .as_ref()
                .map(|p| p.get())
                .unwrap_or_else(|| "{\"error\":\"control plane still starting\"}".to_string())
        }));
    }
    let handle = crate::svc::start(cfg.clone()).map_err(|e| format!("cannot start daemon: {e}"))?;
    let ctrl = if wants_ctrl(opts) {
        let ccfg = ctrl_cfg_from(
            opts,
            crate::ctrl::Role::Backend,
            handle.addr.to_string(),
            handle.recorder(),
        )?;
        let seeds = ccfg.seeds.clone();
        let node =
            crate::ctrl::start(ccfg).map_err(|e| format!("cannot start control node: {e}"))?;
        *late.lock().unwrap() = Some(node.status_provider());
        println!(
            "control plane on http://{} — node {}, {}",
            node.addr,
            node.member_id(),
            if seeds.is_empty() {
                "bootstrapping a new cluster".to_string()
            } else {
                format!("joining via {}", seeds.join(", "))
            }
        );
        Some(node)
    } else {
        None
    };
    let flag = handle.shutdown_flag();
    for sig in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
        signal_hook::flag::register(sig, std::sync::Arc::clone(&flag))
            .map_err(|e| format!("cannot install signal handler: {e}"))?;
    }
    println!(
        "hre-svc listening on http://{} — {} workers, cache {} entries, queue {}, deadline {} ms",
        handle.addr,
        cfg.workers,
        cfg.cache_cap,
        cfg.queue_cap,
        cfg.deadline.as_millis()
    );
    println!(
        "POST /elect | GET /healthz | GET /metrics | GET /ctrl | GET /trace/recent — \
         SIGTERM or ctrl-c drains and exits"
    );
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let summary = handle.run_until(&flag);
    if let Some(node) = ctrl {
        node.shutdown();
    }
    Ok(format!("drained cleanly\n{summary}"))
}

/// `hre bench-svc`: closed-loop load against a daemon — an external one
/// (`--addr`) or an in-process one spun up for the measurement.
fn bench_svc_cmd(opts: &Opts) -> Result<String, String> {
    let labels: Vec<u64> = match opts.get("ring") {
        Some(_) => ring_from(opts)?.labels().iter().map(|l| l.raw()).collect(),
        None => vec![1, 3, 1, 3, 2, 2, 1, 2], // the paper's Figure 1 ring
    };
    let algo_name = opts.get("algo").map(String::as_str).unwrap_or("ak");
    let algo =
        AlgoId::parse(algo_name).ok_or_else(|| format!("unknown algorithm '{algo_name}'"))?;
    let k = match opts.get("k") {
        Some(s) => Some(s.parse::<usize>().map_err(|e| format!("bad --k: {e}"))?),
        None => None,
    };
    let base = ElectRequest::new(labels, algo, k)?;
    let load = crate::svc::LoadOptions {
        connections: u64_opt(opts, "connections", 8)? as usize,
        requests: u64_opt(opts, "requests", 2000)?,
        base,
        rotate: !opts.contains_key("no-rotate"),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} requests over {} connections (ring n={}, algo {}, {})",
        load.requests,
        load.connections,
        load.base.labels.len(),
        load.base.algo.name(),
        if load.rotate { "rotating" } else { "verbatim" }
    );
    let report = match opts.get("addr") {
        Some(addr) => {
            let _ = writeln!(out, "target: {addr}");
            crate::svc::run_load(addr, &load)
        }
        None => {
            let cfg = svc_config_from(opts, "127.0.0.1:0")?;
            let handle =
                crate::svc::start(cfg.clone()).map_err(|e| format!("cannot start daemon: {e}"))?;
            let _ = writeln!(
                out,
                "target: in-process daemon on {} ({} workers, cache {})",
                handle.addr, cfg.workers, cfg.cache_cap
            );
            let r = crate::svc::run_load(&handle.addr.to_string(), &load);
            let summary = handle.shutdown();
            let _ = writeln!(
                out,
                "server cache: {} hits / {} misses",
                summary.cache.hits, summary.cache.misses
            );
            r
        }
    }
    .map_err(|e| format!("load generation failed: {e}"))?;
    out.push_str(&report.pretty());
    Ok(out)
}

/// `hre cluster-route`: run the front-door router over a set of backend
/// daemons until SIGTERM/SIGINT, then drain.
///
/// With `--ctrl` (or `--join`), the router also joins the control plane
/// as a non-electable **observer**: the elected coordinator's config
/// pushes become the router's topology source (so `--backends` is
/// optional and serves only as a static warm start), and a member the
/// control plane declares dead has its breaker tripped immediately.
fn cluster_route_cmd(opts: &Opts) -> Result<String, String> {
    let with_ctrl = wants_ctrl(opts);
    let backends: Vec<String> = match opts.get("backends") {
        Some(s) => s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect(),
        None if with_ctrl => Vec::new(),
        None => {
            return Err("--backends is required (comma-separated daemon addresses); \
                        only --ctrl routers may start without it"
                .into())
        }
    };
    let slow_ms = u64_opt(opts, "slow-ms", 1000)?;
    let cfg = crate::cluster::ClusterConfig {
        addr: opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:8090".into()),
        backends,
        dynamic: with_ctrl,
        vnodes: u64_opt(opts, "vnodes", 128)? as usize,
        hedge_min: std::time::Duration::from_millis(u64_opt(opts, "hedge-min-ms", 30)?),
        failure_threshold: u64_opt(opts, "failure-threshold", 3)? as u32,
        max_body: u64_opt(opts, "max-body", crate::svc::DEFAULT_MAX_BODY as u64)? as usize,
        trace_cap: u64_opt(opts, "trace-cap", hre_runtime::trace::DEFAULT_TRACE_CAP as u64)?
            as usize,
        slow_threshold: (slow_ms > 0).then(|| std::time::Duration::from_millis(slow_ms)),
        ..Default::default()
    };
    let router =
        crate::cluster::start(cfg.clone()).map_err(|e| format!("cannot start router: {e}"))?;
    let ctrl = if with_ctrl {
        let ctl = router.controller();
        let on_config = {
            let ctl = ctl.clone();
            std::sync::Arc::new(move |topo: &crate::ctrl::ClusterTopology| {
                if let Err(e) = ctl.update_backends(topo.epoch, &topo.backends) {
                    eprintln!("config push not applied: {e}");
                }
            }) as crate::ctrl::ConfigCallback
        };
        let on_death = std::sync::Arc::new(move |addr: &str| {
            ctl.trip_backend(addr);
        }) as crate::ctrl::DeathCallback;
        let ccfg = crate::ctrl::CtrlConfig {
            on_config: Some(on_config),
            on_death: Some(on_death),
            ..ctrl_cfg_from(
                opts,
                crate::ctrl::Role::Router,
                router.addr.to_string(),
                router.recorder(),
            )?
        };
        let seeds = ccfg.seeds.clone();
        let node =
            crate::ctrl::start(ccfg).map_err(|e| format!("cannot start control node: {e}"))?;
        println!(
            "control plane on http://{} — observer node {}, {}",
            node.addr,
            node.member_id(),
            if seeds.is_empty() {
                "bootstrapping a new cluster".to_string()
            } else {
                format!("joining via {}", seeds.join(", "))
            }
        );
        Some(node)
    } else {
        None
    };
    let flag = router.shutdown_flag();
    for sig in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
        signal_hook::flag::register(sig, std::sync::Arc::clone(&flag))
            .map_err(|e| format!("cannot install signal handler: {e}"))?;
    }
    println!(
        "hre-cluster routing on http://{} over {} — {} vnodes, hedge floor {} ms",
        router.addr,
        if with_ctrl {
            "control-plane-managed backends".to_string()
        } else {
            format!("{} backends", cfg.backends.len())
        },
        cfg.vnodes,
        cfg.hedge_min.as_millis()
    );
    println!(
        "POST /elect | GET /healthz | GET /metrics | GET /cluster | GET /trace/recent — \
         SIGTERM or ctrl-c drains"
    );
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let summary = router.run_until(&flag);
    if let Some(node) = ctrl {
        node.shutdown();
    }
    Ok(format!("drained cleanly\n{summary}"))
}

/// `hre trace`: fetch traces from a live daemon and render them.
///
/// Without `--id`, lists the most recent root spans (newest first) so
/// an id can be picked; with `--id`, renders that trace's span tree.
/// Pointing at a cluster router returns the merged view: the router's
/// own spans joined with every reachable backend's, `src`-tagged.
fn trace_cmd(opts: &Opts) -> Result<String, String> {
    use hre_runtime::trace::{fmt_dur_us, render_tree, TraceId};
    let addr = opts.get("addr").ok_or("--addr is required (a daemon or router address)")?;
    let mut c = crate::svc::Client::connect(addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match opts.get("id") {
        Some(id) => {
            let trace = TraceId::from_hex(id)
                .ok_or_else(|| format!("bad --id '{id}' (want 16 hex digits, nonzero)"))?;
            let resp = c
                .get(&format!("/trace/{}", trace.to_hex()))
                .map_err(|e| format!("trace fetch failed: {e}"))?;
            if resp.status == 404 {
                return Err(format!(
                    "trace {} not found on {addr} (evicted from the flight recorder, \
                     or never recorded there)",
                    trace.to_hex()
                ));
            }
            if resp.status != 200 {
                return Err(format!(
                    "trace fetch failed: HTTP {}: {}",
                    resp.status,
                    resp.body_text()
                ));
            }
            let spans = crate::svc::tracewire::spans_from_doc(&resp.body_text())?;
            Ok(format!("trace {} — {} spans\n{}", trace.to_hex(), spans.len(), render_tree(&spans)))
        }
        None => {
            let resp = c.get("/trace/recent").map_err(|e| format!("trace fetch failed: {e}"))?;
            if resp.status != 200 {
                return Err(format!(
                    "trace fetch failed: HTTP {}: {}",
                    resp.status,
                    resp.body_text()
                ));
            }
            let roots = crate::svc::tracewire::recent_from_doc(&resp.body_text())?;
            if roots.is_empty() {
                return Ok(format!(
                    "no recent traces on {addr} (tracing off, or no requests yet)\n"
                ));
            }
            let mut out = format!("{} recent trace(s) on {addr}, newest first:\n", roots.len());
            for r in &roots {
                let _ = writeln!(
                    out,
                    "  {}  {:>9}  {}{}",
                    r.trace.to_hex(),
                    fmt_dur_us(r.dur_us),
                    r.stage.as_str(),
                    if r.err { "  ERR" } else { "" }
                );
            }
            out.push_str("render one with: hre trace --addr ");
            let _ = writeln!(out, "{addr} --id <trace>");
            Ok(out)
        }
    }
}

/// Fetches and parses the `/ctrl` status document from a live node.
fn fetch_ctrl_doc(opts: &Opts) -> Result<crate::svc::Json, String> {
    let addr = opts
        .get("addr")
        .ok_or("--addr is required (a daemon, router, or control-plane address)")?;
    let mut c = crate::svc::Client::connect(addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let resp = c.get("/ctrl").map_err(|e| format!("status fetch failed: {e}"))?;
    if resp.status == 404 {
        return Err(format!("{addr} runs no control plane (start it with --ctrl/--join)"));
    }
    if resp.status != 200 {
        return Err(format!("status fetch failed: HTTP {}: {}", resp.status, resp.body_text()));
    }
    crate::svc::Json::parse(&resp.body_text()).map_err(|e| format!("malformed /ctrl document: {e}"))
}

/// `hre ctrl-status`: the control-plane view of a live node — identity,
/// epoch, coordinator, active config, and the full membership table.
fn ctrl_status_cmd(opts: &Opts) -> Result<String, String> {
    let doc = fetch_ctrl_doc(opts)?;
    let id = doc.get("id").and_then(crate::svc::Json::as_u64).ok_or("missing id")?;
    let role = doc.get("role").and_then(crate::svc::Json::as_str).unwrap_or("?");
    let epoch = doc.get("epoch").and_then(crate::svc::Json::as_u64).unwrap_or(0);
    let mut out = format!("node {id} ({role}) — epoch {epoch}\n");
    match doc.get("coordinator").and_then(crate::svc::Json::as_u64) {
        Some(c) => {
            let config_epoch =
                doc.get("config_epoch").and_then(crate::svc::Json::as_u64).unwrap_or(0);
            let me = if c == id { " (this node)" } else { "" };
            let _ = writeln!(out, "coordinator: {c}{me} — config epoch {config_epoch}");
            if let Some(backends) = doc.get("backends").and_then(crate::svc::Json::as_arr) {
                let list: Vec<&str> =
                    backends.iter().filter_map(crate::svc::Json::as_str).collect();
                let _ = writeln!(out, "backends ({}): {}", list.len(), list.join(", "));
            }
        }
        None => out.push_str("coordinator: none yet (no config accepted)\n"),
    }
    let members = doc.get("members").and_then(crate::svc::Json::as_arr).ok_or("missing members")?;
    let mut t = crate::analysis::Table::new(["member", "role", "status", "serve", "ctrl", "inc"]);
    for m in members {
        t.row([
            m.get("id").and_then(crate::svc::Json::as_u64).map_or("?".into(), |v| v.to_string()),
            m.get("role").and_then(crate::svc::Json::as_str).unwrap_or("?").to_string(),
            m.get("status").and_then(crate::svc::Json::as_str).unwrap_or("?").to_string(),
            m.get("serve_addr").and_then(crate::svc::Json::as_str).unwrap_or("?").to_string(),
            m.get("ctrl_addr").and_then(crate::svc::Json::as_str).unwrap_or("?").to_string(),
            m.get("incarnation")
                .and_then(crate::svc::Json::as_u64)
                .map_or("?".into(), |v| v.to_string()),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// `hre ctrl-ring`: the labeled unidirectional election ring a node
/// sees — live backends in ring order with their derived labels, the
/// successor arrows, and the coordinator marked.
fn ctrl_ring_cmd(opts: &Opts) -> Result<String, String> {
    let doc = fetch_ctrl_doc(opts)?;
    let order: Vec<u64> = doc
        .get("ring")
        .and_then(crate::svc::Json::as_arr)
        .map(|a| a.iter().filter_map(crate::svc::Json::as_u64).collect())
        .unwrap_or_default();
    let labels: Vec<u64> = doc
        .get("ring_labels")
        .and_then(crate::svc::Json::as_arr)
        .map(|a| a.iter().filter_map(crate::svc::Json::as_u64).collect())
        .unwrap_or_default();
    if order.is_empty() {
        return Ok("no election ring: no live backends in the view\n".to_string());
    }
    let coordinator = doc.get("coordinator").and_then(crate::svc::Json::as_u64);
    let mut out = format!(
        "labeled unidirectional ring — {} live backend(s), messages flow p0 -> p1 -> ... -> p0\n",
        order.len()
    );
    for (i, id) in order.iter().enumerate() {
        let label = labels.get(i).copied().unwrap_or(0);
        let mark = if Some(*id) == coordinator { "  <- coordinator" } else { "" };
        let _ = writeln!(out, "  p{i}: node {id}  [label {label:#018x}]{mark}");
    }
    if coordinator.is_none() {
        out.push_str("coordinator: none yet (election pending)\n");
    }
    Ok(out)
}

/// `hre bench-cluster`: closed-loop load against a router — an external
/// one (`--addr`) or an in-process cluster spun up for the measurement.
/// The workload cycles `--rings` distinct canonical rings of size `--n`,
/// rotating each request so the bytes differ but the cache entry does
/// not — the placement-sensitive access pattern E20 measures.
fn bench_cluster_cmd(opts: &Opts) -> Result<String, String> {
    let w = u64_opt(opts, "rings", 24)? as usize;
    let n = u64_opt(opts, "n", 64)?;
    if w == 0 || n < 2 {
        return Err("--rings must be >= 1 and --n >= 2".into());
    }
    let bases: Result<Vec<ElectRequest>, String> = (0..w)
        .map(|j| {
            let mut labels: Vec<u64> = (0..n).map(|i| i % 11).collect();
            labels[0] = 100 + j as u64;
            ElectRequest::new(labels, AlgoId::Ak, None)
        })
        .collect();
    let load = crate::cluster::ClusterLoadOptions {
        connections: u64_opt(opts, "connections", 8)? as usize,
        requests: u64_opt(opts, "requests", 2000)?,
        bases: bases?,
        rotate: !opts.contains_key("no-rotate"),
    };
    if opts.contains_key("churn") {
        if opts.contains_key("addr") {
            return Err("--churn runs in-process only (it must own the members it kills); \
                        drop --addr"
                .into());
        }
        return bench_cluster_churn_cmd(opts, load, w, n);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} requests over {} connections ({} rings of n={}, algo ak, {})",
        load.requests,
        load.connections,
        w,
        n,
        if load.rotate { "rotating" } else { "verbatim" }
    );
    let report = match opts.get("addr") {
        Some(addr) => {
            let _ = writeln!(out, "target: {addr}");
            crate::cluster::run_cluster_load(addr, &load)
        }
        None => {
            let nodes = u64_opt(opts, "nodes", 3)? as usize;
            let cfg = SvcConfig {
                cache_cap: u64_opt(opts, "cache-cap", 1024)? as usize,
                ..SvcConfig::default()
            };
            let backends: Vec<ServerHandle> = (0..nodes.max(1))
                .map(|_| crate::svc::start(cfg.clone()))
                .collect::<std::io::Result<_>>()
                .map_err(|e| format!("cannot start backends: {e}"))?;
            let router = crate::cluster::start(crate::cluster::ClusterConfig {
                backends: backends.iter().map(|b| b.addr.to_string()).collect(),
                ..Default::default()
            })
            .map_err(|e| format!("cannot start router: {e}"))?;
            let _ = writeln!(
                out,
                "target: in-process router on {} over {} backends (cache {} each)",
                router.addr,
                backends.len(),
                cfg.cache_cap
            );
            let r = crate::cluster::run_cluster_load(&router.addr.to_string(), &load);
            let summary = router.shutdown();
            for b in backends {
                b.shutdown();
            }
            let _ = write!(out, "{summary}");
            r
        }
    }
    .map_err(|e| format!("load generation failed: {e}"))?;
    out.push_str(&report.pretty());
    Ok(out)
}

/// Nearest-rank percentile over a sorted latency sample, in ms.
fn percentile_ms(sorted: &[std::time::Duration], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1000.0
}

/// `hre bench-cluster --churn`: the self-hosting churn bench. Spins up
/// an in-process cluster that elects its own coordinator (backends +
/// control nodes + a dynamic router fed only by config pushes), then —
/// while the load runs — repeatedly kills the current coordinator and
/// rejoins a fresh member, measuring the kill-to-reconfigured latency
/// of each re-election alongside the client-side request latency.
fn bench_cluster_churn_cmd(
    opts: &Opts,
    load: crate::cluster::ClusterLoadOptions,
    w: usize,
    n: u64,
) -> Result<String, String> {
    use crate::ctrl::testbed::{agreed_config, wait_until};
    use std::time::{Duration, Instant};

    let nodes = u64_opt(opts, "nodes", 3)? as usize;
    if nodes < 2 {
        return Err("--churn needs --nodes >= 2 (a kill must leave members to re-elect)".into());
    }
    let kills = u64_opt(opts, "kills", 2)? as usize;
    if kills == 0 {
        return Err("--kills must be >= 1 in --churn mode".into());
    }
    let cache_cap = u64_opt(opts, "cache-cap", 1024)? as usize;

    struct Member {
        svc: ServerHandle,
        ctrl: crate::ctrl::CtrlHandle,
    }
    let start_member = |seeds: Vec<String>| -> Result<Member, String> {
        let svc = crate::svc::start(SvcConfig { cache_cap, ..SvcConfig::default() })
            .map_err(|e| format!("cannot start backend: {e}"))?;
        let ctrl = crate::ctrl::start(crate::ctrl::CtrlConfig {
            serve_addr: svc.addr.to_string(),
            seeds,
            ..Default::default()
        })
        .map_err(|e| format!("cannot start control node: {e}"))?;
        Ok(Member { svc, ctrl })
    };

    let first = start_member(Vec::new())?;
    let seeds = vec![first.ctrl.addr.to_string()];
    let mut members = vec![first];
    for _ in 1..nodes {
        members.push(start_member(seeds.clone())?);
    }

    let router = crate::cluster::start(crate::cluster::ClusterConfig {
        dynamic: true,
        ..Default::default()
    })
    .map_err(|e| format!("cannot start router: {e}"))?;
    let ctl = router.controller();
    let on_config = {
        let ctl = ctl.clone();
        std::sync::Arc::new(move |topo: &crate::ctrl::ClusterTopology| {
            let _ = ctl.update_backends(topo.epoch, &topo.backends);
        }) as crate::ctrl::ConfigCallback
    };
    let on_death = std::sync::Arc::new(move |addr: &str| {
        ctl.trip_backend(addr);
    }) as crate::ctrl::DeathCallback;
    let router_ctrl = crate::ctrl::start(crate::ctrl::CtrlConfig {
        role: crate::ctrl::Role::Router,
        serve_addr: router.addr.to_string(),
        seeds,
        recorder: Some(router.recorder()),
        on_config: Some(on_config),
        on_death: Some(on_death),
        ..Default::default()
    })
    .map_err(|e| format!("cannot start router control node: {e}"))?;

    let boot = wait_until(Duration::from_secs(20), Duration::from_millis(20), || {
        let handles: Vec<&crate::ctrl::CtrlHandle> =
            members.iter().map(|m| &m.ctrl).chain([&router_ctrl]).collect();
        let c = agreed_config(&handles)?;
        (c.backends.len() == nodes && router.backends().len() == nodes).then_some(c)
    })
    .ok_or("the cluster did not elect a coordinator within 20 s")?;

    let requests = load.requests;
    let addr = router.addr.to_string();
    let loader = std::thread::spawn(move || crate::cluster::run_cluster_load(&addr, &load));

    let mut reelections: Vec<Duration> = Vec::new();
    let mut rejoins: Vec<Duration> = Vec::new();
    let mut epoch = boot.epoch;
    for i in 0..kills {
        // Trigger each kill on observed load progress, spaced across
        // the run, so every re-election happens under live traffic.
        let target = requests * (i as u64 + 1) / (kills as u64 + 1);
        let armed = Instant::now();
        while router.requests_seen() < target && armed.elapsed() < Duration::from_secs(60) {
            std::thread::sleep(Duration::from_micros(500));
        }
        let before = wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
            let handles: Vec<&crate::ctrl::CtrlHandle> =
                members.iter().map(|m| &m.ctrl).chain([&router_ctrl]).collect();
            agreed_config(&handles)
        })
        .ok_or_else(|| format!("no agreed coordinator before kill {}", i + 1))?;
        let vi = members
            .iter()
            .position(|m| m.ctrl.member_id() == before.coordinator)
            .ok_or("the coordinator is not one of our members")?;
        let victim = members.remove(vi);
        let t0 = Instant::now();
        victim.svc.shutdown();
        victim.ctrl.shutdown();
        let re = wait_until(Duration::from_secs(30), Duration::from_millis(5), || {
            let handles: Vec<&crate::ctrl::CtrlHandle> =
                members.iter().map(|m| &m.ctrl).chain([&router_ctrl]).collect();
            let c = agreed_config(&handles)?;
            (c.epoch > before.epoch
                && c.backends.len() == members.len()
                && router.epoch() == c.epoch)
                .then_some(c)
        })
        .ok_or_else(|| format!("re-election {} did not complete within 30 s", i + 1))?;
        reelections.push(t0.elapsed());
        epoch = re.epoch;

        // Rejoin a fresh member through a survivor, and wait for the
        // coordinator to fold it into the next config.
        let t1 = Instant::now();
        members.push(start_member(vec![members[0].ctrl.addr.to_string()])?);
        let rj = wait_until(Duration::from_secs(30), Duration::from_millis(5), || {
            let handles: Vec<&crate::ctrl::CtrlHandle> =
                members.iter().map(|m| &m.ctrl).chain([&router_ctrl]).collect();
            let c = agreed_config(&handles)?;
            (c.epoch > epoch && c.backends.len() == members.len() && router.epoch() == c.epoch)
                .then_some(c)
        })
        .ok_or_else(|| format!("rejoin {} did not converge within 30 s", i + 1))?;
        rejoins.push(t1.elapsed());
        epoch = rj.epoch;
    }

    let report = loader
        .join()
        .map_err(|_| "load thread panicked".to_string())?
        .map_err(|e| format!("load generation failed: {e}"))?;
    router_ctrl.shutdown();
    for m in members {
        m.ctrl.shutdown();
        m.svc.shutdown();
    }
    let summary = router.shutdown();

    reelections.sort();
    rejoins.sort();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "self-hosting churn: {nodes} nodes, {kills} coordinator kill(s) + rejoin(s) \
         under {requests} requests ({w} rings of n={n})",
    );
    let _ = writeln!(out, "epochs: bootstrap {} -> final {}", boot.epoch, epoch);
    let _ = writeln!(
        out,
        "re-election latency (kill -> every member and the router on the new epoch): \
         p50 {:.0} ms, p95 {:.0} ms",
        percentile_ms(&reelections, 0.50),
        percentile_ms(&reelections, 0.95),
    );
    let _ = writeln!(
        out,
        "rejoin convergence (join -> folded into the pushed config): \
         p50 {:.0} ms, p95 {:.0} ms",
        percentile_ms(&rejoins, 0.50),
        percentile_ms(&rejoins, 0.95),
    );
    let _ = write!(out, "{summary}");
    out.push_str(&report.pretty());
    let _ = writeln!(out, "client-visible failures across all kills: {}", report.failed);
    Ok(out)
}

/// Renders a byte count for humans (binary units).
fn fmt_bytes(bytes: u64) -> String {
    if bytes < 1024 {
        format!("{bytes} B")
    } else if bytes < 1024 * 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

/// `hre bench-core`: raw simulation-engine throughput, no sockets involved.
///
/// For each ring size the command builds one seeded exact-multiplicity-`k`
/// ring, then times a batch of complete elections (Ak and Bk under the
/// round-robin scheduler) fanned over the parallel sweep runner, and
/// reports elections per second, messages per second, and a peak-memory
/// proxy: `n·⌈space/8⌉` bytes of process state plus `16 B` per pooled
/// in-flight message slot bounded by `n` links at the peak single-link
/// backlog. `--threads` sets the sweep fan-out (default: all cores);
/// `--json` emits the table machine-readably instead.
fn bench_core_cmd(opts: &Opts) -> Result<String, String> {
    let sizes: Vec<usize> = match opts.get("sizes") {
        Some(s) => s
            .split(',')
            .map(|x| x.trim().parse::<usize>().map_err(|e| format!("bad --sizes: {e}")))
            .collect::<Result<_, _>>()?,
        None => vec![8, 32, 128, 512],
    };
    let k = u64_opt(opts, "k", 3)? as usize;
    if k < 2 {
        return Err("--k must be >= 2 (Bk requires it)".into());
    }
    if sizes.is_empty() || sizes.iter().any(|&n| n <= k) {
        return Err(format!("--sizes entries must all exceed --k ({k})"));
    }
    let threads = u64_opt(
        opts,
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
    )? as usize;
    if threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    let seed = u64_opt(opts, "seed", 9000)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let rings: Vec<(usize, RingLabeling)> =
        sizes.iter().map(|&n| (n, generate::random_exact_multiplicity(n, k, &mut rng))).collect();

    let mut table =
        Table::new(["n", "algo", "runs", "wall ms", "runs/s", "msgs/s", "peak mem (proxy)"]);
    let mut json_rows = Vec::new();
    for (n, ring) in &rings {
        // Bk's message count grows as k²n², so its batches shrink faster.
        for (algo, runs) in [("ak", (1 << 20) / (n * n)), ("bk", (1 << 18) / (k * k * n * n))] {
            let runs = runs.clamp(1, 64);
            let batch: Vec<usize> = (0..runs).collect();
            let t0 = std::time::Instant::now();
            let reps = crate::sim::sweep_map(&batch, threads, |_, _| {
                if algo == "ak" {
                    let r = run(
                        &Ak::new(k),
                        ring,
                        &mut RoundRobinSched::default(),
                        RunOptions::default(),
                    );
                    (r.clean(), r.leader, r.metrics)
                } else {
                    let r = run(
                        &Bk::new(k),
                        ring,
                        &mut RoundRobinSched::default(),
                        RunOptions::default(),
                    );
                    (r.clean(), r.leader, r.metrics)
                }
            });
            let wall = t0.elapsed().as_secs_f64();
            if reps.iter().any(|(clean, leader, _)| !clean || leader.is_none()) {
                return Err(format!("bench-core: {algo} run unclean on n={n} (engine bug)"));
            }
            let m = &reps[0].2;
            let total_msgs: u64 = reps.iter().map(|(_, _, m)| m.messages).sum();
            let runs_per_s = runs as f64 / wall;
            let msgs_per_s = total_msgs as f64 / wall;
            let rss = *n as u64 * m.peak_space_bits.div_ceil(8)
                + *n as u64 * m.peak_link_occupancy as u64 * 16;
            table.row([
                n.to_string(),
                algo.into(),
                runs.to_string(),
                format!("{:.2}", wall * 1e3),
                format!("{runs_per_s:.0}"),
                format!("{msgs_per_s:.0}"),
                fmt_bytes(rss),
            ]);
            json_rows.push(format!(
                "{{\"n\": {n}, \"algo\": \"{algo}\", \"runs\": {runs}, \
                 \"wall_ms\": {:.3}, \"runs_per_s\": {runs_per_s:.1}, \
                 \"msgs_per_s\": {msgs_per_s:.0}, \"rss_proxy_bytes\": {rss}}}",
                wall * 1e3
            ));
        }
    }
    if opts.contains_key("json") {
        return Ok(format!(
            "{{\n  \"command\": \"bench-core\",\n  \"k\": {k},\n  \"seed\": {seed},\n  \
             \"threads\": {threads},\n  \"rows\": [\n    {}\n  ]\n}}\n",
            json_rows.join(",\n    ")
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "engine throughput — complete elections, sim transport, round-robin \
         scheduler (k={k}, seed={seed}, threads={threads})"
    );
    out.push_str(&table.render());
    out.push_str(
        "peak mem (proxy) = n·⌈space/8⌉ process state + 16 B per pooled \
         in-flight message slot (n links × peak backlog)\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run_cli(list: &[&str]) -> Result<String, String> {
        let a = args(list);
        let (cmd, opts) = parse(&a).ok_or("parse error")?;
        dispatch(&cmd, &opts)
    }

    #[test]
    fn parse_splits_command_and_options() {
        let (cmd, opts) =
            parse(&args(&["elect", "--ring", "1,2,2", "--k", "2", "--phases"])).expect("parses");
        assert_eq!(cmd, "elect");
        assert_eq!(opts.get("ring").unwrap(), "1,2,2");
        assert_eq!(opts.get("k").unwrap(), "2");
        assert_eq!(opts.get("phases").unwrap(), "true");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse(&args(&[])).is_none());
        assert!(parse(&args(&["elect", "ring", "1,2"])).is_none()); // missing --
        assert!(parse(&args(&["elect", "--ring"])).is_none()); // missing value
    }

    #[test]
    fn classify_figure1() {
        let out = run_cli(&["classify", "--ring", "1,3,1,3,2,2,1,2"]).unwrap();
        assert!(out.contains("p0[1]*"), "{out}");
        assert!(out.contains("mlty=3"), "{out}");
        assert!(out.contains("U*=false"), "{out}");
    }

    #[test]
    fn elect_all_algorithms_on_suitable_rings() {
        for algo in ["ak", "ak-ref", "bk"] {
            let out = run_cli(&["elect", "--ring", "1,2,2", "--algo", algo, "--k", "2"]).unwrap();
            assert!(out.contains("elected p0"), "{algo}: {out}");
            assert!(out.contains("spec satisfied"), "{algo}: {out}");
        }
        for algo in ["cr", "peterson", "oracle-n"] {
            let out = run_cli(&["elect", "--ring", "4,1,3,2", "--algo", algo]).unwrap();
            assert!(out.contains("spec satisfied"), "{algo}: {out}");
        }
    }

    #[test]
    fn elect_over_threads_transport() {
        let out = run_cli(&[
            "elect",
            "--ring",
            "1,2,2",
            "--algo",
            "ak",
            "--k",
            "2",
            "--transport",
            "threads",
        ])
        .unwrap();
        assert!(out.contains("elected p0"), "{out}");
        assert!(out.contains("threads transport"), "{out}");
    }

    #[test]
    fn elect_over_tcp_transport() {
        let out = run_cli(&[
            "elect",
            "--ring",
            "1,2,2",
            "--algo",
            "ak",
            "--k",
            "2",
            "--transport",
            "tcp",
        ])
        .unwrap();
        assert!(out.contains("elected p0"), "{out}");
        assert!(out.contains("tcp transport"), "{out}");
        assert!(out.contains("wire:"), "{out}");
        assert!(out.contains("rtt:"), "{out}");
    }

    #[test]
    fn elect_over_tcp_with_stress_faults() {
        let out = run_cli(&[
            "elect",
            "--ring",
            "1,3,1,3,2,2,1,2",
            "--algo",
            "bk",
            "--k",
            "3",
            "--transport",
            "tcp",
            "--faults",
            "stress",
            "--fault-seed",
            "42",
        ])
        .unwrap();
        assert!(out.contains("elected p0"), "{out}");
        assert!(out.contains("faults injected"), "{out}");
        // The wire was hostile yet the spec held.
        assert!(out.contains("spec satisfied"), "{out}");
    }

    #[test]
    fn transport_rejects_sim_only_flags_and_unknowns() {
        let err = run_cli(&["elect", "--ring", "1,2,2", "--transport", "tcp", "--sched", "sync"])
            .unwrap_err();
        assert!(err.contains("--sched"), "{err}");
        let err =
            run_cli(&["elect", "--ring", "1,2,2", "--transport", "carrier-pigeon"]).unwrap_err();
        assert!(err.contains("unknown transport"), "{err}");
        let err = run_cli(&["elect", "--ring", "1,2,2", "--transport", "tcp", "--faults", "wat"])
            .unwrap_err();
        assert!(err.contains("unknown fault mix"), "{err}");
        let err = run_cli(&["elect", "--ring", "1,2,2", "--faults", "stress"]).unwrap_err();
        assert!(err.contains("--faults applies only to --transport tcp"), "{err}");
        let err =
            run_cli(&["elect", "--ring", "1,2,2", "--transport", "threads", "--fault-seed", "7"])
                .unwrap_err();
        assert!(err.contains("--fault-seed applies only to --transport tcp"), "{err}");
    }

    #[test]
    fn elect_reports_failures_as_errors() {
        // Chang-Roberts on homonyms: double election -> Err.
        let err = run_cli(&["elect", "--ring", "5,1,5,2", "--algo", "cr"]).unwrap_err();
        assert!(err.contains("did not satisfy"), "{err}");
    }

    #[test]
    fn elect_with_phases_and_diagram() {
        let out = run_cli(&[
            "elect",
            "--ring",
            "1,3,1,3,2,2,1,2",
            "--algo",
            "bk",
            "--k",
            "3",
            "--phases",
            "--diagram",
        ])
        .unwrap();
        assert!(out.contains("activity grid"), "{out}");
        assert!(out.contains("phases"), "{out}");
        assert!(out.contains("●p0(g=1)"), "{out}");
    }

    #[test]
    fn phases_rejected_for_non_bk() {
        let err = run_cli(&["elect", "--ring", "1,2,2", "--algo", "ak", "--phases"]).unwrap_err();
        assert!(err.contains("--phases applies"), "{err}");
    }

    #[test]
    fn generate_each_class() {
        for class in ["k1", "ustar", "exact", "a-kk"] {
            let out =
                run_cli(&["generate", "--n", "8", "--k", "3", "--class", class, "--seed", "5"])
                    .unwrap();
            assert!(out.contains("n=8"), "{class}: {out}");
        }
        assert!(run_cli(&["generate", "--n", "8", "--class", "bogus"]).is_err());
        assert!(run_cli(&["generate"]).is_err());
    }

    #[test]
    fn impossibility_produces_a_certificate() {
        let out = run_cli(&["impossibility", "--n", "3", "--k0", "1", "--seed", "5"]).unwrap();
        assert!(out.contains("Theorem 1 confirmed"), "{out}");
    }

    #[test]
    fn verify_model_checks_both_algorithms() {
        let out = run_cli(&["verify", "--ring", "1,2,2"]).unwrap();
        assert!(out.contains("verified=true"), "{out}");
        assert!(out.contains("Ak(k=2)"), "{out}");
    }

    #[test]
    fn unknown_command_and_scheduler_errors() {
        assert!(run_cli(&["frobnicate"]).is_err());
        assert!(run_cli(&["elect", "--ring", "1,2,2", "--sched", "wat"]).is_err());
        let out = run_cli(&["elect", "--ring", "1,2,2", "--sched", "random:9"]).unwrap();
        assert!(out.contains("spec satisfied"), "{out}");
        let out = run_cli(&["elect", "--ring", "1,2,2", "--sched", "starve:0"]).unwrap();
        assert!(out.contains("spec satisfied"), "{out}");
        let out = run_cli(&["elect", "--ring", "1,2,2", "--sched", "sync"]).unwrap();
        assert!(out.contains("spec satisfied"), "{out}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli(&["help"]).unwrap();
        assert!(out.contains("USAGE"), "{out}");
        assert!(out.contains("hre serve"), "{out}");
        assert!(out.contains("bench-svc"), "{out}");
        assert!(out.contains("cluster-route"), "{out}");
        assert!(out.contains("bench-cluster"), "{out}");
        assert!(out.contains("bench-core"), "{out}");
    }

    #[test]
    fn elect_json_emits_the_service_document() {
        let out =
            run_cli(&["elect", "--ring", "1,2,2", "--algo", "ak", "--k", "2", "--json"]).unwrap();
        assert!(out.starts_with(r#"{"algo":"ak","ring":[1,2,2],"n":3,"k":2,"leader":0"#), "{out}");
        assert!(!out.ends_with('\n'), "body must be the exact response bytes");
        // The explicit flags above are the defaults: same bytes without them.
        let out2 = run_cli(&["elect", "--ring", "1,2,2", "--json"]).unwrap();
        assert_eq!(out, out2);
        // sched rr is the daemon's scheduler, so it is accepted explicitly.
        let out3 = run_cli(&["elect", "--ring", "1,2,2", "--json", "--sched", "rr"]).unwrap();
        assert_eq!(out, out3);
    }

    #[test]
    fn elect_json_rejects_incompatible_flags() {
        for extra in
            [&["--transport", "tcp"][..], &["--sched", "sync"], &["--diagram"], &["--phases"]]
        {
            let mut cmd = vec!["elect", "--ring", "1,2,2", "--json"];
            cmd.extend_from_slice(extra);
            let err = run_cli(&cmd).unwrap_err();
            assert!(err.contains("--json") || err.contains("json"), "{extra:?}: {err}");
        }
        // Spec violations surface as errors, same as the plain path.
        let err = run_cli(&["elect", "--ring", "5,1,5,2", "--algo", "cr", "--json"]).unwrap_err();
        assert!(err.contains("did not satisfy"), "{err}");
    }

    #[test]
    fn bench_svc_runs_against_an_in_process_daemon() {
        let out = run_cli(&[
            "bench-svc",
            "--ring",
            "1,2,2",
            "--requests",
            "20",
            "--connections",
            "2",
            "--workers",
            "2",
        ])
        .unwrap();
        assert!(out.contains("in-process daemon"), "{out}");
        assert!(out.contains("20 ok"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("req/s"), "{out}");
    }

    #[test]
    fn serve_rejects_unbindable_address() {
        let err = run_cli(&["serve", "--addr", "definitely-not-an-address"]).unwrap_err();
        assert!(err.contains("cannot start daemon"), "{err}");
    }

    #[test]
    fn bench_cluster_runs_against_an_in_process_cluster() {
        let out = run_cli(&[
            "bench-cluster",
            "--rings",
            "3",
            "--n",
            "16",
            "--requests",
            "18",
            "--connections",
            "2",
            "--nodes",
            "2",
        ])
        .unwrap();
        assert!(out.contains("in-process router"), "{out}");
        assert!(out.contains("over 2 backends"), "{out}");
        assert!(out.contains("18 ok"), "{out}");
        assert!(out.contains("by backend:"), "{out}");
    }

    #[test]
    fn bench_core_reports_throughput() {
        let out =
            run_cli(&["bench-core", "--sizes", "8,12", "--threads", "2", "--seed", "7"]).unwrap();
        assert!(out.contains("runs/s"), "{out}");
        assert!(out.contains("msgs/s"), "{out}");
        assert!(out.contains("bk"), "{out}");
        assert!(out.contains("threads=2"), "{out}");
        assert!(out.contains("peak mem (proxy)"), "{out}");
    }

    #[test]
    fn bench_core_json_and_bad_flags() {
        let out = run_cli(&["bench-core", "--sizes", "8", "--json"]).unwrap();
        assert!(out.contains("\"command\": \"bench-core\""), "{out}");
        assert!(out.contains("\"algo\": \"ak\""), "{out}");
        assert!(out.contains("\"algo\": \"bk\""), "{out}");
        assert!(out.contains("\"msgs_per_s\""), "{out}");
        assert!(out.contains("\"rss_proxy_bytes\""), "{out}");
        assert!(run_cli(&["bench-core", "--sizes", "2"]).is_err()); // n <= k
        assert!(run_cli(&["bench-core", "--k", "1"]).is_err());
        assert!(run_cli(&["bench-core", "--threads", "0"]).is_err());
        assert!(run_cli(&["bench-core", "--sizes", "wat"]).is_err());
    }

    #[test]
    fn cluster_route_requires_backends() {
        let err = run_cli(&["cluster-route"]).unwrap_err();
        assert!(err.contains("--backends is required"), "{err}");
    }

    #[test]
    fn trace_lists_recent_and_renders_one_tree() {
        let handle = crate::svc::start(SvcConfig::default()).expect("daemon");
        let addr = handle.addr.to_string();
        let mut c =
            crate::svc::Client::connect(&addr, std::time::Duration::from_secs(5)).expect("connect");
        let resp = c.post_json("/elect", r#"{"ring":[1,3,1,3,2,2,1,2],"algo":"ak"}"#).expect("ok");
        assert_eq!(resp.status, 200);
        let id = resp.header("x-trace-id").expect("trace id").to_string();

        let listing = run_cli(&["trace", "--addr", &addr]).unwrap();
        assert!(listing.contains(&id), "{listing}");
        assert!(listing.contains("request"), "{listing}");

        let tree = run_cli(&["trace", "--addr", &addr, "--id", &id]).unwrap();
        assert!(tree.contains(&format!("trace {id}")), "{tree}");
        assert!(tree.contains("execute"), "{tree}");
        assert!(tree.contains("election"), "{tree}");
        handle.shutdown();
    }

    #[test]
    fn trace_rejects_bad_ids_and_requires_addr() {
        assert!(run_cli(&["trace"]).unwrap_err().contains("--addr is required"));
        let handle = crate::svc::start(SvcConfig::default()).expect("daemon");
        let addr = handle.addr.to_string();
        let err = run_cli(&["trace", "--addr", &addr, "--id", "wat"]).unwrap_err();
        assert!(err.contains("bad --id"), "{err}");
        let err = run_cli(&["trace", "--addr", &addr, "--id", "00000000000000aa"]).unwrap_err();
        assert!(err.contains("not found"), "{err}");
        handle.shutdown();
    }

    #[test]
    fn parse_accepts_ctrl_and_churn_bare_flags() {
        let (cmd, opts) = parse(&args(&["serve", "--ctrl", "--join", "127.0.0.1:9"])).unwrap();
        assert_eq!(cmd, "serve");
        assert_eq!(opts.get("ctrl").unwrap(), "true");
        assert_eq!(opts.get("join").unwrap(), "127.0.0.1:9");
        let (cmd, opts) = parse(&args(&["bench-cluster", "--churn", "--kills", "1"])).unwrap();
        assert_eq!(cmd, "bench-cluster");
        assert_eq!(opts.get("churn").unwrap(), "true");
        assert_eq!(opts.get("kills").unwrap(), "1");
    }

    #[test]
    fn ctrl_status_and_ring_render_a_live_node() {
        let node = crate::ctrl::start(crate::ctrl::CtrlConfig {
            serve_addr: "127.0.0.1:1".into(),
            ..Default::default()
        })
        .expect("ctrl node");
        // A single-member cluster self-coordinates; wait for it.
        crate::ctrl::testbed::wait_until(
            std::time::Duration::from_secs(10),
            std::time::Duration::from_millis(20),
            || node.config(),
        )
        .expect("self-coordination");
        let addr = node.addr.to_string();

        let status = run_cli(&["ctrl-status", "--addr", &addr]).unwrap();
        assert!(status.contains("(backend)"), "{status}");
        assert!(status.contains("(this node)"), "{status}");
        assert!(status.contains("alive"), "{status}");
        assert!(status.contains("127.0.0.1:1"), "{status}");

        let ring = run_cli(&["ctrl-ring", "--addr", &addr]).unwrap();
        assert!(ring.contains("p0: node"), "{ring}");
        assert!(ring.contains("<- coordinator"), "{ring}");
        node.shutdown();

        assert!(run_cli(&["ctrl-status"]).unwrap_err().contains("--addr is required"));
        let plain = crate::svc::start(SvcConfig::default()).expect("daemon");
        let err = run_cli(&["ctrl-status", "--addr", &plain.addr.to_string()]).unwrap_err();
        assert!(err.contains("runs no control plane"), "{err}");
        plain.shutdown();
    }

    #[test]
    fn bench_cluster_churn_measures_reelection_under_load() {
        let out = run_cli(&[
            "bench-cluster",
            "--churn",
            "--kills",
            "1",
            "--requests",
            "150",
            "--rings",
            "6",
            "--n",
            "32",
            "--connections",
            "4",
        ])
        .unwrap();
        assert!(out.contains("re-election latency"), "{out}");
        assert!(out.contains("rejoin convergence"), "{out}");
        assert!(out.contains("client-visible failures across all kills: 0"), "{out}");
        // One kill and one rejoin each advance the epoch past bootstrap.
        assert!(out.contains("epochs: bootstrap"), "{out}");
    }

    #[test]
    fn bench_cluster_churn_rejects_bad_combinations() {
        let err = run_cli(&["bench-cluster", "--churn", "--addr", "127.0.0.1:9"]).unwrap_err();
        assert!(err.contains("in-process only"), "{err}");
        let err = run_cli(&["bench-cluster", "--churn", "--nodes", "1"]).unwrap_err();
        assert!(err.contains("--nodes >= 2"), "{err}");
        let err = run_cli(&["bench-cluster", "--churn", "--kills", "0"]).unwrap_err();
        assert!(err.contains("--kills"), "{err}");
    }

    #[test]
    fn serve_flags_reach_the_service_config() {
        let mut opts = Opts::new();
        opts.insert("max-body".into(), "2048".into());
        opts.insert("trace-cap".into(), "128".into());
        opts.insert("slow-ms".into(), "0".into());
        let cfg = svc_config_from(&opts, "127.0.0.1:0").unwrap();
        assert_eq!(cfg.max_body, 2048);
        assert_eq!(cfg.trace_cap, 128);
        assert_eq!(cfg.slow_threshold, None);
        let cfg = svc_config_from(&Opts::new(), "127.0.0.1:0").unwrap();
        assert_eq!(cfg.max_body, crate::svc::DEFAULT_MAX_BODY);
        assert_eq!(cfg.trace_cap, hre_runtime::trace::DEFAULT_TRACE_CAP);
        assert_eq!(cfg.slow_threshold, Some(std::time::Duration::from_secs(1)));
    }
}
