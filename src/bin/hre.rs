//! `hre` — command-line front end; all logic lives (tested) in
//! [`homonym_rings::cli`].

use homonym_rings::cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, opts)) = cli::parse(&args) else {
        eprint!("{}", cli::USAGE);
        return ExitCode::FAILURE;
    };
    match cli::dispatch(&cmd, &opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
