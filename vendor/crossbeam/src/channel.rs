//! MPMC channels with the `crossbeam-channel` API shape.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sending on a channel with no remaining receivers; returns the message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error of a [`Sender::send_timeout`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full past the deadline; returns the message.
    Timeout(T),
    /// All receivers are gone; returns the message.
    Disconnected(T),
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Receiving from an empty channel with no remaining senders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error of a [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error of a [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; clonable (MPMC).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; clonable (MPMC).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded FIFO channel of capacity `cap` (min 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().expect("channel poisoned").senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().expect("channel poisoned").receivers += 1;
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocking send; errors only when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(msg);
                drop(inner);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            inner = self.chan.not_full.wait(inner).expect("channel poisoned");
        }
    }

    /// Send that gives up after `timeout` if the channel stays full.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(msg);
                drop(inner);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            let Some(left) =
                deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return Err(SendTimeoutError::Timeout(msg));
            };
            let (guard, _timed_out) =
                self.chan.not_full.wait_timeout(inner, left).expect("channel poisoned");
            inner = guard;
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; errors only when the channel is drained and every
    /// sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Receive that gives up after `timeout` if nothing arrives.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(left) =
                deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) =
                self.chan.not_empty.wait_timeout(inner, left).expect("channel poisoned");
            inner = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.chan.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.inner.lock().expect("channel poisoned").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_reports_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7u8), Err(SendError(7)));
        assert_eq!(
            tx.send_timeout(8u8, Duration::from_millis(1)),
            Err(SendTimeoutError::Disconnected(8))
        );
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        );
        let t = thread::spawn(move || tx.send(3));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(3));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let sender = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        sender.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5u8).unwrap();
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
