//! Offline vendored subset of the `crossbeam` channel API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of `crossbeam::channel` it uses: bounded and unbounded
//! MPMC channels with blocking, timeout, and disconnect semantics,
//! implemented on `std::sync::{Mutex, Condvar}`. The semantics match the
//! upstream contract that the runtimes rely on: FIFO per channel, a send
//! to a fully-disconnected channel errors and returns the message, a recv
//! on an empty channel whose senders are all gone reports disconnection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
