//! Offline vendored subset of the `signal-hook` flag API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the one slice of `signal-hook` the election service uses:
//! [`flag::register`], which arranges for a shared `AtomicBool` to flip
//! to `true` when a Unix signal (SIGTERM, SIGINT) arrives — the
//! graceful-shutdown trigger of `hre serve`.
//!
//! This is the only crate in the workspace that needs `unsafe`: signal
//! handlers must be installed through the C runtime, and the handler
//! body is restricted to async-signal-safe operations (a relaxed atomic
//! store and an atomic pointer load — no locks, no allocation).

#![warn(missing_docs)]

/// Signal numbers used by the service (Linux/x86-64 values, which match
/// every platform Rust's `std` supports for these two signals).
pub mod consts {
    /// Interactive interrupt (ctrl-c).
    pub const SIGINT: i32 = 2;
    /// Termination request (what `kill` and orchestrators send).
    pub const SIGTERM: i32 = 15;
}

/// Register an `AtomicBool` to be set when a signal arrives.
pub mod flag {
    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
    use std::sync::Arc;

    /// Highest signal number the registry covers (inclusive).
    const MAX_SIGNAL: usize = 32;

    /// One slot per signal: an `Arc<AtomicBool>` leaked into a raw
    /// pointer, so the handler reads it without touching locks or the
    /// allocator. `null` = not registered.
    static SLOTS: [AtomicPtr<AtomicBool>; MAX_SIGNAL + 1] =
        [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_SIGNAL + 1];

    extern "C" {
        /// ISO C `signal(2)`: on glibc this is the BSD variant — the
        /// handler stays installed and interrupted syscalls restart.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// `SIG_ERR` as returned by `signal(2)`.
    const SIG_ERR: usize = usize::MAX;

    extern "C" fn handler(signum: i32) {
        let idx = signum as usize;
        if idx <= MAX_SIGNAL {
            let ptr = SLOTS[idx].load(Ordering::Acquire);
            if !ptr.is_null() {
                // Async-signal-safe: one relaxed store into a flag whose
                // backing allocation is never freed (see `register`).
                unsafe { &*ptr }.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Arranges for `flag` to be set to `true` whenever `signum` is
    /// delivered. Mirrors `signal_hook::flag::register`; at most one
    /// flag per signal is supported (later registrations replace the
    /// target flag, never uninstall the handler). The `Arc` is leaked —
    /// registration is for the life of the process, as with the real
    /// crate's default behavior.
    pub fn register(signum: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
        let idx = signum as usize;
        if !(1..=MAX_SIGNAL).contains(&idx) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "signal out of range"));
        }
        let raw = Arc::into_raw(flag) as *mut AtomicBool;
        let prev = SLOTS[idx].swap(raw, Ordering::AcqRel);
        // A replaced slot's Arc stays leaked: the handler may still be
        // dereferencing it on another thread. Registrations are rare
        // (per-process, not per-request), so the leak is bounded.
        let _ = prev;
        let rc = unsafe { signal(signum, handler as *const () as usize) };
        if rc == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Test/introspection helper: `true` iff a flag is registered for
    /// `signum`.
    pub fn is_registered(signum: i32) -> bool {
        let idx = signum as usize;
        idx <= MAX_SIGNAL && !SLOTS[idx].load(Ordering::Acquire).is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn register_and_raise_sets_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        flag::register(consts::SIGTERM, Arc::clone(&flag)).expect("register SIGTERM");
        assert!(flag::is_registered(consts::SIGTERM));
        assert!(!flag.load(Ordering::Relaxed));
        // Deliver a real SIGTERM to ourselves through the installed
        // handler (std::process::id is our pid; kill(2) via /proc is not
        // portable, so use the C raise()).
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        let rc = unsafe { raise(consts::SIGTERM) };
        assert_eq!(rc, 0);
        // The handler runs synchronously on this thread before raise
        // returns (POSIX), but give a slow sanitizer a beat anyway.
        for _ in 0..100 {
            if flag.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(flag.load(Ordering::Relaxed), "SIGTERM did not set the flag");
    }

    #[test]
    fn rejects_out_of_range() {
        let flag = Arc::new(AtomicBool::new(false));
        assert!(flag::register(0, Arc::clone(&flag)).is_err());
        assert!(flag::register(99, flag).is_err());
    }
}
