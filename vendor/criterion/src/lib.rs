//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of `criterion` its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput` /
//! `bench_with_input` / `bench_function`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark is warmed up, then
//! timed over enough iterations to fill a small measurement budget; the
//! mean, min, and max per-iteration times are printed. There are no HTML
//! reports, no outlier analysis, and no baseline comparisons — the point
//! is that `cargo bench` runs everywhere and prints honest numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count that fills the
    /// measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until we know roughly how long one
        // iteration takes.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(50) && calib_iters < 1_000_000 {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        // Measurement: aim for ~200ms or 10 iterations, whichever is more.
        let budget = Duration::from_millis(200);
        let iters = if per_iter.is_zero() {
            10_000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(10, 10_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn report(group: Option<&str>, id: &str, throughput: Option<Throughput>, b: &Bencher) {
    let Some((total, iters)) = b.measured else {
        println!("warning: benchmark '{id}' never called Bencher::iter");
        return;
    };
    let mean = total / iters.max(1) as u32;
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            format!("  {:.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            format!("  {:.1} MiB/s", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{name:<50} time: {:>12}  ({iters} iters){rate}", fmt_duration(mean));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (accepted for API compatibility; the
    /// vendored harness sizes iterations by time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { measured: None };
        routine(&mut b, input);
        report(Some(&self.name), &id.id, self.throughput, &b);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { measured: None };
        routine(&mut b);
        report(Some(&self.name), &id.to_string(), self.throughput, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, name, throughput: None }
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { measured: None };
        routine(&mut b);
        report(None, &id.to_string(), None, &b);
        self
    }
}

/// Declares a group function invoking each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("test/group");
        g.sample_size(10);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7) * 6));
        g.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
