//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`], xoshiro256++ seeded via SplitMix64),
//! integer range sampling, `gen_bool`, and Fisher–Yates shuffling.
//! Everything is reproducible from an explicit `seed_from_u64` — the only
//! construction path the workspace uses; there is deliberately no
//! entropy-based constructor.
//!
//! Stream values differ from upstream `rand`'s `StdRng` (which is ChaCha12);
//! no test in this workspace depends on the exact stream, only on
//! determinism given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)`. Panics if the range is empty.
    fn sample_half_open<G: RngCore + ?Sized>(g: &mut G, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(g: &mut G, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift keeps the value in range; the bias is
                // < 2^-64 per draw, irrelevant for test workloads.
                let r = ((g.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T {
        T::sample_half_open(g, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return g.next_u64() as $t;
                }
                <$t>::sample_half_open(g, lo, hi.wrapping_add(1))
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the standard [0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state seeded by SplitMix64 (the construction xoshiro's authors
    /// recommend for seeding from a single word).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot
            // produce four consecutive zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((2800..4200).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng) == Some(&5));
    }
}
