//! The [`any`] entry point for "any value of this type" strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::RngCore;
use std::fmt::Debug;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_test("any", 0);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
        let _: bool = any::<bool>().generate(&mut rng);
        let _: usize = any::<usize>().generate(&mut rng);
    }
}
