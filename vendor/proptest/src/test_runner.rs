//! Case execution: config, RNG, and the driver the `proptest!` macro calls.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test (upstream default: 256).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case (produced by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The seeded generator handed to strategies.
///
/// Seeding is deterministic per (test name, case index), so a failing case
/// reproduces on rerun without any persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for one case of one named test.
    pub fn for_test(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Access to the underlying generator (for strategy implementations).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Runs `cases` generated inputs through `body`, panicking on the first
/// failure with the input's `Debug` form. Honors `PROPTEST_CASES`.
pub fn run_cases<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    for case in 0..cases {
        let mut rng = TestRng::for_test(test_name, case as u64);
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!(
                "proptest: test '{test_name}' failed at case {case}/{cases}\n\
                 input: {rendered}\n{e}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_value() {
        use crate::strategy::Strategy;
        let s = 0u64..u64::MAX;
        let a = s.generate(&mut TestRng::for_test("t", 3));
        let b = s.generate(&mut TestRng::for_test("t", 3));
        let c = s.generate(&mut TestRng::for_test("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_cases_runs_and_reports() {
        let mut count = 0u32;
        run_cases(&ProptestConfig::with_cases(17), "counting", &(0u8..10), |v| {
            count += 1;
            assert!(v < 10);
            Ok(())
        });
        assert!(count >= 1); // exact count depends on PROPTEST_CASES
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_input() {
        run_cases(&ProptestConfig::with_cases(50), "fails", &(0u8..10), |v| {
            if v >= 5 {
                Err(TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        });
    }
}
