//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of `proptest` its test suites use: the [`proptest!`]
//! macro, the `prop_assert*` family, [`strategy::Strategy`] with
//! `prop_map`, integer-range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberate for an offline test harness:
//!
//! * **No shrinking.** A failing case panics with the generated input's
//!   `Debug` form; inputs are reproducible because generation is seeded
//!   deterministically per test case index.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * Case count comes from the config (default 256) or the
//!   `PROPTEST_CASES` environment variable, like upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares a block of property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]`, then any
/// number of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test item of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ( $( $strat, )* );
            $crate::test_runner::run_cases(
                &__config,
                stringify!($name),
                &__strategy,
                |__values| {
                    let ( $( $pat, )* ) = __values;
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (with the
/// generated input attached) rather than unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), __l, format!($($fmt)*)
        );
    }};
}
