//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use rand::Rng;

/// Strategy for `Vec<T>` with element strategy `S` and a length range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, min..max)` — vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "empty length range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let mut rng = TestRng::for_test("vec", 0);
        let s = vec(0u8..4, 1..64);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..64).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }
}
