//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::Rng;
use std::fmt::Debug;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a seeded generator. `Debug` on the value is required so failing
/// cases can print their input.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Regenerates until `f` accepts (upstream `prop_filter`, sans
    /// rejection accounting). Panics after 10 000 straight rejections.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

/// A strategy producing exactly one value (upstream `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_map_filter_just() {
        let mut rng = TestRng::for_test("strategies", 0);
        let s = (0u8..4, 10usize..20).prop_map(|(a, b)| a as usize + b);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((10..24).contains(&v), "{v}");
        }
        let f = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(f.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
        let inc = 3i32..=5;
        for _ in 0..100 {
            assert!((3..=5).contains(&inc.generate(&mut rng)));
        }
    }
}
