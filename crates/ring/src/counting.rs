//! Closed-form counting of labelings, cross-checking the brute-force
//! enumeration — and giving the exhaustive tests an independent oracle for
//! "did we really enumerate them all?".
//!
//! * primitive (= asymmetric) words of length `n` over `a` letters:
//!   `P(n, a) = Σ_{d | n} μ(d) · a^{n/d}` (Möbius inversion);
//! * aperiodic necklaces (rotation classes of asymmetric labelings):
//!   `P(n, a) / n` (Moreau's formula) — one canonical ring each.

/// The Möbius function `μ(n)` for `n ≥ 1`.
pub fn moebius(n: u64) -> i64 {
    assert!(n >= 1);
    let mut n = n;
    let mut primes = 0;
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            n /= d;
            if n.is_multiple_of(d) {
                return 0; // squared factor
            }
            primes += 1;
        }
        d += 1;
    }
    if n > 1 {
        primes += 1;
    }
    if primes % 2 == 0 {
        1
    } else {
        -1
    }
}

/// Divisors of `n`, ascending.
pub fn divisors(n: u64) -> Vec<u64> {
    assert!(n >= 1);
    let mut out: Vec<u64> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
    out.sort_unstable();
    out
}

/// Number of **primitive** (asymmetric) words of length `n` over an
/// alphabet of `a` letters: `Σ_{d|n} μ(d)·a^{n/d}`.
pub fn primitive_word_count(n: u64, a: u64) -> u64 {
    assert!(n >= 1 && a >= 1);
    let total: i128 =
        divisors(n).into_iter().map(|d| moebius(d) as i128 * (a as i128).pow((n / d) as u32)).sum();
    assert!(total >= 0);
    total as u64
}

/// Number of aperiodic necklaces (asymmetric rings up to rotation) of
/// length `n` over `a` letters — Moreau's formula `P(n,a)/n`. Equals the
/// number of Lyndon words of that length and alphabet.
///
/// ```
/// use hre_ring::counting::aperiodic_necklace_count;
/// assert_eq!(aperiodic_necklace_count(6, 2), 9);  // 9 binary Lyndon words of length 6
/// assert_eq!(aperiodic_necklace_count(8, 2), 30);
/// ```
pub fn aperiodic_necklace_count(n: u64, a: u64) -> u64 {
    let p = primitive_word_count(n, a);
    debug_assert_eq!(p % n, 0, "P(n,a) is always divisible by n");
    p / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{asymmetric_labelings, canonical_asymmetric_labelings};

    #[test]
    fn moebius_classic_values() {
        let expect = [1i64, -1, -1, 0, -1, 1, -1, 0, 0, 1, -1, 0];
        for (i, &m) in expect.iter().enumerate() {
            assert_eq!(moebius(i as u64 + 1), m, "mu({})", i + 1);
        }
    }

    #[test]
    fn divisors_basic() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(7), vec![1, 7]);
        assert_eq!(divisors(1), vec![1]);
    }

    #[test]
    fn primitive_counts_match_brute_force() {
        for n in 1..=8u64 {
            for a in 1..=3u64 {
                let brute = if n == 1 {
                    a // single letters are primitive
                } else {
                    asymmetric_labelings(n as usize, a).len() as u64
                };
                assert_eq!(primitive_word_count(n, a), brute, "n={n} a={a}");
            }
        }
    }

    #[test]
    fn necklace_counts_match_canonical_enumeration() {
        for n in 2..=7u64 {
            for a in 2..=3u64 {
                assert_eq!(
                    aperiodic_necklace_count(n, a),
                    canonical_asymmetric_labelings(n as usize, a).len() as u64,
                    "n={n} a={a}"
                );
            }
        }
    }

    #[test]
    fn known_lyndon_counts() {
        // Binary Lyndon words: 2,1,2,3,6,9,18,30 for n=1..8.
        let expect = [2u64, 1, 2, 3, 6, 9, 18, 30];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(aperiodic_necklace_count(i as u64 + 1, 2), e, "n={}", i + 1);
        }
    }

    #[test]
    fn prime_length_special_case() {
        // For prime n: P(n,a) = a^n - a.
        for &n in &[2u64, 3, 5, 7, 11] {
            for a in 2..=4u64 {
                assert_eq!(primitive_word_count(n, a), a.pow(n as u32) - a);
            }
        }
    }
}
