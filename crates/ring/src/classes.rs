//! Class membership reporting for the paper's ring classes.
//!
//! The paper studies the classes `A` (asymmetric), `Kk` (every label occurs
//! at most `k` times) and `U*` (some label occurs exactly once), with
//! `K1 ⊆ U* ⊆ A`. [`classify`] computes the full membership picture of a
//! labeling at once.

use crate::RingLabeling;
use std::fmt;

/// Full class-membership report for one labeling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Number of processes.
    pub n: usize,
    /// Number of distinct labels `|L|`.
    pub distinct_labels: usize,
    /// Largest label multiplicity; the ring is in `Kk` iff `k ≥` this.
    pub max_multiplicity: usize,
    /// `R ∈ A`: asymmetric (primitive labeling).
    pub asymmetric: bool,
    /// `R ∈ U*`: at least one unique label.
    pub has_unique_label: bool,
    /// Index of the true leader if the ring is asymmetric.
    pub true_leader: Option<usize>,
    /// Bits per label (`b` in the paper's space bounds).
    pub label_bits: u32,
}

impl ClassReport {
    /// `R ∈ Kk`?
    pub fn in_kk(&self, k: usize) -> bool {
        self.max_multiplicity <= k
    }

    /// `R ∈ A ∩ Kk` — the class both algorithms solve, for this `k`?
    pub fn in_a_inter_kk(&self, k: usize) -> bool {
        self.asymmetric && self.in_kk(k)
    }

    /// `R ∈ U* ∩ Kk` — the class of the lower bound (Lemma 1)?
    pub fn in_ustar_inter_kk(&self, k: usize) -> bool {
        self.has_unique_label && self.in_kk(k)
    }

    /// `R ∈ K1`: fully identified ring.
    pub fn fully_identified(&self) -> bool {
        self.max_multiplicity <= 1
    }

    /// Smallest `k` such that `R ∈ Kk` (i.e. the actual multiplicity).
    pub fn minimal_k(&self) -> usize {
        self.max_multiplicity
    }
}

impl fmt::Display for ClassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} |L|={} mlty={} A={} U*={} leader={:?} b={}",
            self.n,
            self.distinct_labels,
            self.max_multiplicity,
            self.asymmetric,
            self.has_unique_label,
            self.true_leader,
            self.label_bits
        )
    }
}

/// Computes the [`ClassReport`] of a labeling.
pub fn classify(ring: &RingLabeling) -> ClassReport {
    ClassReport {
        n: ring.n(),
        distinct_labels: ring.multiplicity_map().len(),
        max_multiplicity: ring.max_multiplicity(),
        asymmetric: ring.is_asymmetric(),
        has_unique_label: ring.in_ustar(),
        true_leader: ring.true_leader(),
        label_bits: ring.label_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusion_chain_k1_ustar_a() {
        // On every enumerated small ring: K1 ⊆ U* ⊆ A.
        for n in 2..=7usize {
            for ring in crate::enumerate::all_labelings(n, 3) {
                let c = classify(&ring);
                if c.fully_identified() {
                    assert!(c.has_unique_label, "{ring:?}");
                }
                if c.has_unique_label {
                    assert!(c.asymmetric, "{ring:?}");
                }
            }
        }
    }

    #[test]
    fn figure1_report() {
        let r = RingLabeling::from_raw(&[1, 3, 1, 3, 2, 2, 1, 2]);
        let c = classify(&r);
        assert_eq!(c.n, 8);
        assert_eq!(c.distinct_labels, 3);
        assert_eq!(c.max_multiplicity, 3);
        assert!(c.asymmetric);
        assert!(!c.has_unique_label);
        assert_eq!(c.true_leader, Some(0));
        assert!(c.in_a_inter_kk(3));
        assert!(!c.in_a_inter_kk(2));
        assert!(!c.in_ustar_inter_kk(3));
        assert_eq!(c.minimal_k(), 3);
    }

    #[test]
    fn symmetric_ring_report() {
        let c = classify(&RingLabeling::from_raw(&[1, 2, 1, 2]));
        assert!(!c.asymmetric);
        assert!(!c.has_unique_label);
        assert_eq!(c.true_leader, None);
        assert!(!c.in_a_inter_kk(5));
    }

    #[test]
    fn display_is_informative() {
        let c = classify(&RingLabeling::from_raw(&[1, 2, 2]));
        let s = format!("{c}");
        assert!(s.contains("n=3"));
        assert!(s.contains("U*=true"));
    }
}
