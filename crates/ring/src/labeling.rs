//! The [`RingLabeling`] type and the paper's derived notions.

use hre_words::{is_lyndon, is_primitive, max_multiplicity, multiplicities, rotate_left, Label};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Why a labeling could not be constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingError {
    /// Fewer than two labels (the paper assumes `n ≥ 2`).
    TooShort,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::TooShort => write!(f, "a ring needs at least two processes"),
        }
    }
}

impl std::error::Error for RingError {}

/// A labeling of a unidirectional ring of `n ≥ 2` processes.
///
/// Index `i` is process `p(i)`; messages flow from `p(i)` to `p(i+1)`
/// (indices mod `n`), so `p(i)` *receives* from `p(i−1)`.
///
/// ```
/// use hre_ring::RingLabeling;
/// // The paper's Figure 1 ring.
/// let ring = RingLabeling::from_raw(&[1, 3, 1, 3, 2, 2, 1, 2]);
/// assert!(ring.is_asymmetric());
/// assert_eq!(ring.max_multiplicity(), 3); // in K3, not in K2
/// assert!(!ring.in_ustar());              // no unique label
/// assert_eq!(ring.true_leader(), Some(0)); // the Lyndon-word process
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RingLabeling {
    // Shared, immutable storage: cloning a labeling (the model checker
    // clones one per explored configuration) and handing windows of it to
    // processes (Ak's zero-copy prefix strings) are both O(1) refcount
    // bumps, never label copies. `Arc<[Label]>` compares and hashes by
    // contents, so the derived impls keep value semantics.
    labels: Arc<[Label]>,
}

impl RingLabeling {
    /// Creates a labeling. Panics if `labels.len() < 2` (the paper assumes
    /// `n ≥ 2`); see [`Self::try_new`] for the fallible form.
    pub fn new(labels: Vec<Label>) -> Self {
        Self::try_new(labels).expect("the paper assumes rings of n >= 2 processes")
    }

    /// Fallible constructor for untrusted input (e.g. the CLI).
    pub fn try_new(labels: Vec<Label>) -> Result<Self, RingError> {
        if labels.len() < 2 {
            return Err(RingError::TooShort);
        }
        Ok(RingLabeling { labels: labels.into() })
    }

    /// Creates a labeling from raw `u64` label values.
    pub fn from_raw(raw: &[u64]) -> Self {
        Self::new(raw.iter().copied().map(Label::new).collect())
    }

    /// Number of processes `n`.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Label of process `i` (`i` taken mod `n`).
    pub fn label(&self, i: usize) -> Label {
        self.labels[i % self.n()]
    }

    /// All labels, in process order `p0 … p(n−1)`.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// A shared handle to the label storage — O(1), no copy. Processes
    /// that need a long-lived view of the ring (e.g. `Ak`'s windowed
    /// prefix strings) hold this instead of cloning label vectors.
    pub fn labels_shared(&self) -> Arc<[Label]> {
        Arc::clone(&self.labels)
    }

    /// `b`: number of bits required to store any label of this ring
    /// (the paper's space bounds are stated in terms of `b`).
    pub fn label_bits(&self) -> u32 {
        self.labels.iter().map(|l| l.bits()).max().unwrap_or(1)
    }

    /// The prefix of length `m` of `LLabels(p(i))`: the labels starting at
    /// `p(i)` and continuing **counter-clockwise** (against message flow),
    /// i.e. `id(i), id(i−1), id(i−2), …` with indices mod `n`.
    ///
    /// This is exactly the sequence process `p(i)` observes in Algorithm
    /// `Ak`: its own label followed by the labels its predecessor relays.
    pub fn llabels(&self, i: usize, m: usize) -> Vec<Label> {
        let n = self.n();
        (0..m).map(|j| self.labels[(i + n - (j % n)) % n]).collect()
    }

    /// `LLabels(p(i))_n`: one full counter-clockwise turn starting at `p(i)`.
    pub fn llabels_n(&self, i: usize) -> Vec<Label> {
        self.llabels(i, self.n())
    }

    /// Multiplicity `mlty[ℓ]` of a label: how many processes carry it.
    pub fn multiplicity(&self, l: Label) -> usize {
        self.labels.iter().filter(|&&x| x == l).count()
    }

    /// Multiplicity of every label present.
    pub fn multiplicity_map(&self) -> BTreeMap<Label, usize> {
        multiplicities(&self.labels)
    }

    /// Largest multiplicity of any label. The ring is in class `Kk` iff
    /// this is ≤ `k`.
    pub fn max_multiplicity(&self) -> usize {
        max_multiplicity(&self.labels)
    }

    /// `R ∈ Kk`?
    pub fn in_kk(&self, k: usize) -> bool {
        self.max_multiplicity() <= k
    }

    /// `R ∈ U*`: does at least one label occur exactly once?
    pub fn in_ustar(&self) -> bool {
        self.multiplicity_map().values().any(|&c| c == 1)
    }

    /// `R ∈ A`: is the labeling asymmetric (no non-trivial rotational
    /// symmetry)? Equivalent to primitivity of the label sequence.
    pub fn is_asymmetric(&self) -> bool {
        is_primitive(&self.labels)
    }

    /// `R ∈ K1`: are all labels distinct?
    pub fn all_distinct(&self) -> bool {
        self.max_multiplicity() <= 1
    }

    /// Index of the **true leader**: the unique process `L` such that
    /// `LLabels(L)_n` is a Lyndon word. Defined only for asymmetric rings;
    /// returns `None` otherwise.
    pub fn true_leader(&self) -> Option<usize> {
        if !self.is_asymmetric() {
            return None;
        }
        let idx = (0..self.n()).find(|&i| is_lyndon(&self.llabels_n(i)));
        debug_assert!(idx.is_some(), "a primitive word has exactly one Lyndon rotation");
        idx
    }

    /// Label of the true leader (see [`Self::true_leader`]).
    pub fn true_leader_label(&self) -> Option<Label> {
        self.true_leader().map(|i| self.label(i))
    }

    /// The labeling rotated so that process `d` becomes process 0; the ring
    /// is the same network, re-indexed.
    pub fn rotated(&self, d: usize) -> RingLabeling {
        RingLabeling::new(rotate_left(&self.labels, d))
    }
}

impl fmt::Debug for RingLabeling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ring[")?;
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for RingLabeling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(raw: &[u64]) -> RingLabeling {
        RingLabeling::from_raw(raw)
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn rejects_singleton() {
        ring(&[1]);
    }

    #[test]
    fn try_new_is_fallible() {
        assert_eq!(RingLabeling::try_new(vec![Label::new(1)]).unwrap_err(), RingError::TooShort);
        assert!(RingLabeling::try_new(vec![Label::new(1), Label::new(2)]).is_ok());
        assert_eq!(format!("{}", RingError::TooShort), "a ring needs at least two processes");
    }

    #[test]
    fn basic_accessors() {
        let r = ring(&[1, 3, 1, 3, 2, 2, 1, 2]);
        assert_eq!(r.n(), 8);
        assert_eq!(r.label(0), Label::new(1));
        assert_eq!(r.label(9), Label::new(3)); // mod n
        assert_eq!(r.label_bits(), 2);
    }

    #[test]
    fn llabels_runs_counter_clockwise() {
        // Paper Section IV example: p0.id = p1.id = A(=10), p2.id = B(=11);
        // LLabels(p0) = A B A A B A …
        let r = ring(&[10, 10, 11]);
        let seq: Vec<u64> = r.llabels(0, 6).iter().map(|l| l.raw()).collect();
        assert_eq!(seq, vec![10, 11, 10, 10, 11, 10]);
    }

    #[test]
    fn llabels_n_is_one_turn() {
        let r = ring(&[1, 2, 3, 4]);
        let seq: Vec<u64> = r.llabels_n(2).iter().map(|l| l.raw()).collect();
        assert_eq!(seq, vec![3, 2, 1, 4]);
    }

    #[test]
    fn multiplicity_and_classes() {
        let r = ring(&[1, 3, 1, 3, 2, 2, 1, 2]); // Fig. 1 ring
        assert_eq!(r.multiplicity(Label::new(1)), 3);
        assert_eq!(r.multiplicity(Label::new(2)), 3);
        assert_eq!(r.multiplicity(Label::new(3)), 2);
        assert_eq!(r.multiplicity(Label::new(9)), 0);
        assert_eq!(r.max_multiplicity(), 3);
        assert!(r.in_kk(3));
        assert!(!r.in_kk(2));
        assert!(!r.in_ustar()); // no unique label in the Fig. 1 ring
        assert!(r.is_asymmetric());
        assert!(!r.all_distinct());
    }

    #[test]
    fn ring_122_classification() {
        // The paper's closing remark: ring (1,2,2) is solvable here.
        let r = ring(&[1, 2, 2]);
        assert!(r.is_asymmetric());
        assert!(r.in_kk(2));
        assert!(r.in_ustar()); // label 1 is unique
    }

    #[test]
    fn symmetric_ring_detected() {
        let r = ring(&[1, 2, 1, 2]);
        assert!(!r.is_asymmetric());
        assert_eq!(r.true_leader(), None);
    }

    #[test]
    fn figure1_true_leader_is_p0() {
        let r = ring(&[1, 3, 1, 3, 2, 2, 1, 2]);
        assert_eq!(r.true_leader(), Some(0));
        assert_eq!(r.true_leader_label(), Some(Label::new(1)));
    }

    #[test]
    fn true_leader_unique_and_lyndon() {
        let r = ring(&[5, 1, 4, 1, 3]);
        let l = r.true_leader().unwrap();
        assert!(is_lyndon(&r.llabels_n(l)));
        for i in 0..r.n() {
            if i != l {
                assert!(!is_lyndon(&r.llabels_n(i)));
            }
        }
    }

    #[test]
    fn rotation_preserves_true_leader_label() {
        let r = ring(&[7, 2, 9, 2, 5]);
        let label = r.true_leader_label().unwrap();
        for d in 0..r.n() {
            assert_eq!(r.rotated(d).true_leader_label(), Some(label));
        }
    }

    #[test]
    fn k1_ring_has_unique_labels_and_is_asymmetric() {
        let r = ring(&[4, 1, 3, 2]);
        assert!(r.all_distinct());
        assert!(r.in_ustar());
        assert!(r.is_asymmetric()); // K1 ⊆ U* ⊆ A
    }

    #[test]
    fn display_compact() {
        assert_eq!(format!("{}", ring(&[1, 2, 2])), "Ring[1,2,2]");
    }
}
