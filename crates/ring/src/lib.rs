//! # hre-ring — labeled unidirectional ring networks
//!
//! The network substrate of the IPDPS 2017 reproduction: a ring of `n ≥ 2`
//! processes `p0 … p(n−1)` where `p(i)` receives from `p(i−1)` and sends to
//! `p(i+1)` (indices mod `n`), each carrying a [`Label`](hre_words::Label)
//! that need not be unique ("homonym processes").
//!
//! This crate provides:
//!
//! * [`RingLabeling`] — the labeling itself, with the paper's derived
//!   notions: `LLabels(p)` sequences, multiplicity, asymmetry, the **true
//!   leader** (the process whose length-`n` counter-clockwise label sequence
//!   is a Lyndon word), and the bit size `b` of labels;
//! * class predicates for the paper's classes `A` (asymmetric), `Kk`
//!   (multiplicity ≤ k) and `U*` (≥ 1 unique label) — [`classes`];
//! * seeded random generators for each class, the Lemma 1 adversarial
//!   construction `R_{n,k}`, and the named rings from the paper
//!   ([`generate`], [`catalog`]);
//! * exhaustive enumeration of small labelings for brute-force testing
//!   ([`enumerate`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod classes;
pub mod counting;
pub mod enumerate;
pub mod generate;
mod labeling;

pub use classes::{classify, ClassReport};
pub use labeling::{RingError, RingLabeling};
