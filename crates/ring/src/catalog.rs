//! Named rings from the paper, used by tests, examples, and the
//! figure-reproduction experiments.

use crate::RingLabeling;

/// The ring of **Figure 1**: 8 processes, labels
/// `p0..p7 = 1,3,1,3,2,2,1,2`, `k = 3`; the paper walks `Bk` through four
/// phases and elects `p0`.
pub fn figure1_ring() -> RingLabeling {
    RingLabeling::from_raw(&[1, 3, 1, 3, 2, 2, 1, 2])
}

/// `k` for the Figure 1 walk-through.
pub const FIGURE1_K: usize = 3;

/// Index of the process Figure 1 elects.
pub const FIGURE1_LEADER: usize = 0;

/// The ring of the paper's closing remark in Section I: three processes
/// with labels `1, 2, 2` — solvable by `Ak`/`Bk` (with `k = 2`) although it
/// is out of reach for the models of Dobrev–Pelc and Delporte et al.
pub fn ring_122() -> RingLabeling {
    RingLabeling::from_raw(&[1, 2, 2])
}

/// The Section IV example: three processes with `p0.id = p1.id = A` and
/// `p2.id = B` (encoded `A = 10`, `B = 11`), for which
/// `LLabels(p0) = A B A A B A …`.
pub fn section4_aab_ring() -> RingLabeling {
    RingLabeling::from_raw(&[10, 10, 11])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_ring_matches_paper_classification() {
        let r = figure1_ring();
        assert_eq!(r.n(), 8);
        assert!(r.is_asymmetric());
        assert!(r.in_kk(FIGURE1_K));
        assert_eq!(r.max_multiplicity(), 3);
        assert_eq!(r.true_leader(), Some(FIGURE1_LEADER));
    }

    #[test]
    fn ring_122_is_in_a_inter_k2() {
        let r = ring_122();
        assert!(r.is_asymmetric());
        assert!(r.in_kk(2));
        assert!(r.in_ustar());
        // the true leader is the unique process labeled 1
        assert_eq!(r.true_leader(), Some(0));
    }

    #[test]
    fn section4_llabels_example() {
        let r = section4_aab_ring();
        let seq: Vec<u64> = r.llabels(0, 6).iter().map(|l| l.raw()).collect();
        assert_eq!(seq, vec![10, 11, 10, 10, 11, 10]); // A B A A B A
    }
}
