//! Exhaustive enumeration of small labelings, for brute-force validation.
//!
//! The correctness tests run the algorithms on **every** labeling of small
//! rings (all asymmetric labelings of `n ≤ 7` over small alphabets), not
//! just sampled ones; this module produces those families.

use crate::RingLabeling;

/// Iterator over **all** labelings of length `n` over the alphabet
/// `{0, …, alphabet−1}` (as raw label values). There are `alphabet^n` of
/// them; keep `n`/`alphabet` small.
pub fn all_labelings(n: usize, alphabet: u64) -> impl Iterator<Item = RingLabeling> {
    assert!(n >= 2);
    assert!(alphabet >= 1);
    let total = (alphabet as u128).pow(n as u32);
    (0..total).map(move |mut code| {
        let mut raw = Vec::with_capacity(n);
        for _ in 0..n {
            raw.push((code % alphabet as u128) as u64);
            code /= alphabet as u128;
        }
        RingLabeling::from_raw(&raw)
    })
}

/// All **asymmetric** labelings of length `n` over `{0, …, alphabet−1}`.
pub fn asymmetric_labelings(n: usize, alphabet: u64) -> Vec<RingLabeling> {
    all_labelings(n, alphabet).filter(|r| r.is_asymmetric()).collect()
}

/// All asymmetric labelings in `Kk` of length `n` over `{0, …, alphabet−1}`
/// — the class `A ∩ Kk` restricted to this finite family.
pub fn a_inter_kk_labelings(n: usize, alphabet: u64, k: usize) -> Vec<RingLabeling> {
    all_labelings(n, alphabet).filter(|r| r.is_asymmetric() && r.in_kk(k)).collect()
}

/// One canonical representative per rotation class (necklace): labelings
/// whose label vector is the lexicographically least among its rotations.
/// Running an algorithm on one representative per class covers all rings up
/// to re-indexing.
pub fn canonical_asymmetric_labelings(n: usize, alphabet: u64) -> Vec<RingLabeling> {
    all_labelings(n, alphabet)
        .filter(|r| r.is_asymmetric() && hre_words::least_rotation(r.labels()) == 0)
        .collect()
}

/// Fast canonical enumeration: the canonical representative of each
/// asymmetric rotation class is exactly a **Lyndon word** (a primitive
/// word equal to its least rotation), so Duval's generation algorithm
/// produces them directly in `O(1)` amortized per ring — no `a^n` filter
/// pass. Equivalent to [`canonical_asymmetric_labelings`] (tested), but
/// usable at sizes where the brute-force filter is hopeless.
pub fn canonical_asymmetric_labelings_fast(n: usize, alphabet: u8) -> Vec<RingLabeling> {
    assert!(n >= 2);
    hre_words::lyndon_words_of_length(n, alphabet)
        .into_iter()
        .map(|w| RingLabeling::from_raw(&w.iter().map(|&x| x as u64).collect::<Vec<_>>()))
        .collect()
}

/// All permutations of `{0, …, n−1}` as `K1` labelings (fully identified
/// rings). `n!` of them; keep `n ≤ 7`.
pub fn all_k1_labelings(n: usize) -> Vec<RingLabeling> {
    assert!((2..=9).contains(&n), "n! blows up");
    let mut out = Vec::new();
    let mut perm: Vec<u64> = (0..n as u64).collect();
    heap_permutations(&mut perm, n, &mut out);
    out
}

fn heap_permutations(perm: &mut Vec<u64>, k: usize, out: &mut Vec<RingLabeling>) {
    if k == 1 {
        out.push(RingLabeling::from_raw(perm));
        return;
    }
    for i in 0..k {
        heap_permutations(perm, k - 1, out);
        if k.is_multiple_of(2) {
            perm.swap(i, k - 1);
        } else {
            perm.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        assert_eq!(all_labelings(2, 2).count(), 4);
        assert_eq!(all_labelings(3, 3).count(), 27);
        assert_eq!(all_labelings(4, 2).count(), 16);
    }

    #[test]
    fn asymmetric_counts_small() {
        // Binary strings of length 2: 00,01,10,11 -> asymmetric: 01,10.
        assert_eq!(asymmetric_labelings(2, 2).len(), 2);
        // Binary length 3: all but 000 and 111 are primitive: 6.
        assert_eq!(asymmetric_labelings(3, 2).len(), 6);
        // Binary length 4: 16 - (0000,1111,0101,1010) = 12.
        assert_eq!(asymmetric_labelings(4, 2).len(), 12);
    }

    #[test]
    fn canonical_representatives_partition_rotation_classes() {
        // Number of canonical asymmetric labelings x n = number of
        // asymmetric labelings (each class has exactly n distinct rotations).
        for n in 2..=6usize {
            for a in 2..=3u64 {
                let all = asymmetric_labelings(n, a).len();
                let canon = canonical_asymmetric_labelings(n, a).len();
                assert_eq!(canon * n, all, "n={n} a={a}");
            }
        }
    }

    #[test]
    fn canonical_representative_starts_at_true_leader() {
        // The least rotation is the Lyndon rotation of the *clockwise*
        // vector; independent check: every canonical labeling is asymmetric
        // and has a well-defined true leader.
        for r in canonical_asymmetric_labelings(5, 2) {
            assert!(r.true_leader().is_some());
        }
    }

    #[test]
    fn fast_canonical_enumeration_matches_filter_enumeration() {
        for n in 2..=7usize {
            for a in 2..=3u8 {
                let mut slow = canonical_asymmetric_labelings(n, a as u64);
                let mut fast = canonical_asymmetric_labelings_fast(n, a);
                let key = |r: &RingLabeling| r.labels().iter().map(|l| l.raw()).collect::<Vec<_>>();
                slow.sort_by_key(|r| key(r));
                fast.sort_by_key(|r| key(r));
                assert_eq!(slow, fast, "n={n} a={a}");
            }
        }
    }

    #[test]
    fn fast_enumeration_counts_match_moreau_formula() {
        for n in 2..=12usize {
            for a in 2..=3u8 {
                assert_eq!(
                    canonical_asymmetric_labelings_fast(n, a).len() as u64,
                    crate::counting::aperiodic_necklace_count(n as u64, a as u64),
                    "n={n} a={a}"
                );
            }
        }
    }

    #[test]
    fn k1_enumeration_is_all_permutations() {
        let rings = all_k1_labelings(4);
        assert_eq!(rings.len(), 24);
        for r in &rings {
            assert!(r.all_distinct());
        }
        // all distinct labelings
        let mut raws: Vec<Vec<u64>> =
            rings.iter().map(|r| r.labels().iter().map(|l| l.raw()).collect()).collect();
        raws.sort();
        raws.dedup();
        assert_eq!(raws.len(), 24);
    }

    #[test]
    fn a_inter_kk_respects_both_constraints() {
        for r in a_inter_kk_labelings(5, 3, 2) {
            assert!(r.is_asymmetric());
            assert!(r.in_kk(2));
        }
        // k = n imposes nothing beyond asymmetry
        assert_eq!(a_inter_kk_labelings(4, 2, 4).len(), asymmetric_labelings(4, 2).len());
    }
}
