//! Seeded random generators for each ring class, plus the paper's
//! adversarial constructions.
//!
//! All generators take an explicit `Rng`, so experiments are reproducible
//! from a printed seed.

use crate::RingLabeling;
use hre_words::Label;
use rand::seq::SliceRandom;
use rand::Rng;

/// A random fully-identified ring (`K1`): labels are a random permutation
/// of `n` distinct values drawn from `[0, 4n)`.
pub fn random_k1<R: Rng>(n: usize, rng: &mut R) -> RingLabeling {
    assert!(n >= 2);
    let mut pool: Vec<u64> = (0..4 * n as u64).collect();
    pool.shuffle(rng);
    pool.truncate(n);
    RingLabeling::from_raw(&pool)
}

/// A random asymmetric ring in `Kk` over an alphabet of `alphabet` labels,
/// by rejection sampling. Panics if the parameters make the class empty or
/// astronomically unlikely (`alphabet ≥ 2` and `alphabet · k ≥ n` required).
pub fn random_a_inter_kk<R: Rng>(n: usize, k: usize, alphabet: u64, rng: &mut R) -> RingLabeling {
    assert!(n >= 2);
    assert!(k >= 1);
    assert!(alphabet >= 2, "one-letter rings are never asymmetric for n >= 2");
    assert!(
        (alphabet as usize).saturating_mul(k) >= n,
        "no labeling of n={n} with multiplicity <= {k} over {alphabet} labels"
    );
    for _ in 0..100_000 {
        let raw: Vec<u64> = (0..n).map(|_| rng.gen_range(0..alphabet)).collect();
        let ring = RingLabeling::from_raw(&raw);
        if ring.is_asymmetric() && ring.in_kk(k) {
            return ring;
        }
    }
    panic!("rejection sampling failed for n={n} k={k} alphabet={alphabet}");
}

/// A random asymmetric ring whose maximum multiplicity is **exactly** `k`
/// (tightest member of `Kk`): `k` copies of one label plus distinct others,
/// shuffled until asymmetric. Requires `k < n` or (`k == n` impossible since
/// a constant ring is symmetric for `n ≥ 2`).
pub fn random_exact_multiplicity<R: Rng>(n: usize, k: usize, rng: &mut R) -> RingLabeling {
    assert!(n >= 2);
    assert!(k >= 1 && k < n, "k copies of one label in an asymmetric ring needs k < n");
    for _ in 0..100_000 {
        let mut raw: Vec<u64> = vec![0; k];
        raw.extend(1..=(n - k) as u64);
        raw.shuffle(rng);
        let ring = RingLabeling::from_raw(&raw);
        if ring.is_asymmetric() && ring.max_multiplicity() == k {
            return ring;
        }
    }
    panic!("could not build exact-multiplicity ring n={n} k={k}");
}

/// A random ring in `U* ∩ Kk`: exactly one guaranteed-unique label plus
/// homonym groups of size ≤ `k`.
pub fn random_ustar_inter_kk<R: Rng>(n: usize, k: usize, rng: &mut R) -> RingLabeling {
    assert!(n >= 2);
    assert!(k >= 1);
    for _ in 0..100_000 {
        // Label 0 is reserved unique; the other n-1 positions get labels
        // from {1, ..} each used at most k times.
        let mut raw = vec![0u64];
        let mut counts: Vec<usize> = Vec::new();
        for _ in 1..n {
            // pick an existing group with spare capacity or a fresh one
            let fresh = counts.is_empty() || rng.gen_bool(0.35);
            if fresh {
                counts.push(1);
                raw.push(counts.len() as u64);
            } else {
                let gi = rng.gen_range(0..counts.len());
                if counts[gi] < k {
                    counts[gi] += 1;
                    raw.push((gi + 1) as u64);
                } else {
                    counts.push(1);
                    raw.push(counts.len() as u64);
                }
            }
        }
        raw.shuffle(rng);
        let ring = RingLabeling::from_raw(&raw);
        if ring.in_ustar() && ring.in_kk(k) {
            debug_assert!(ring.is_asymmetric()); // U* ⊆ A
            return ring;
        }
    }
    panic!("could not build U* ∩ Kk ring n={n} k={k}");
}

/// A symmetric ring: the word `base` repeated `times ≥ 2` times. These are
/// the rings on which leader election is impossible for any algorithm.
pub fn symmetric_ring(base: &[u64], times: usize) -> RingLabeling {
    assert!(!base.is_empty());
    assert!(times >= 2, "a single copy need not be symmetric");
    let mut raw = Vec::with_capacity(base.len() * times);
    for _ in 0..times {
        raw.extend_from_slice(base);
    }
    RingLabeling::from_raw(&raw)
}

/// A **near-symmetric** ring: the word `base` repeated `times` times, with
/// the final label replaced by a fresh one. Asymmetric (the defect breaks
/// every rotation), but maximally confusable with a symmetric ring — the
/// hardest family for period detection, and the family where `BoundedN`'s
/// refusal region is widest.
pub fn near_symmetric_ring(base: &[u64], times: usize) -> RingLabeling {
    assert!(!base.is_empty());
    assert!(times >= 2);
    assert!(base.len() * times >= 2);
    let mut raw = Vec::with_capacity(base.len() * times);
    for _ in 0..times {
        raw.extend_from_slice(base);
    }
    let fresh = raw.iter().copied().max().unwrap() + 1;
    *raw.last_mut().unwrap() = fresh;
    let ring = RingLabeling::from_raw(&raw);
    debug_assert!(ring.is_asymmetric());
    ring
}

/// The **Lemma 1 construction** `R_{n,k}`: given a `K1` ring with labels
/// `l0 … l(n−1)`, builds the ring of `kn + 1` processes whose labels are the
/// sequence `l0 … l(n−1)` repeated `k` times, followed by a single fresh
/// label `X` not among the `li`.
///
/// `R_{n,k} ∈ U* ∩ Kk`, and its synchronous execution is indistinguishable
/// from the base ring's for processes that have not yet heard from `X` —
/// the engine of the paper's lower bound and impossibility proofs.
pub fn lemma1_ring(base: &RingLabeling, k: usize) -> RingLabeling {
    assert!(k >= 1);
    assert!(base.all_distinct(), "Lemma 1 starts from a K1 ring");
    let fresh = base.labels().iter().map(|l| l.raw()).max().unwrap() + 1;
    let mut labels: Vec<Label> = Vec::with_capacity(base.n() * k + 1);
    for _ in 0..k {
        labels.extend_from_slice(base.labels());
    }
    labels.push(Label::new(fresh));
    RingLabeling::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_k1_is_k1() {
        let mut r = rng(1);
        for n in 2..30 {
            let ring = random_k1(n, &mut r);
            assert_eq!(ring.n(), n);
            assert!(ring.all_distinct());
            assert!(ring.is_asymmetric());
        }
    }

    #[test]
    fn random_a_inter_kk_respects_class() {
        let mut r = rng(2);
        for &(n, k, a) in &[(5usize, 2usize, 3u64), (8, 3, 3), (12, 4, 4), (20, 5, 6)] {
            for _ in 0..20 {
                let ring = random_a_inter_kk(n, k, a, &mut r);
                assert_eq!(ring.n(), n);
                assert!(ring.is_asymmetric());
                assert!(ring.in_kk(k));
            }
        }
    }

    #[test]
    fn exact_multiplicity_is_tight() {
        let mut r = rng(3);
        for &(n, k) in &[(5usize, 2usize), (9, 3), (12, 5), (16, 8)] {
            let ring = random_exact_multiplicity(n, k, &mut r);
            assert_eq!(ring.max_multiplicity(), k);
            assert!(ring.is_asymmetric());
        }
    }

    #[test]
    fn ustar_generator_always_has_unique_label() {
        let mut r = rng(4);
        for &(n, k) in &[(4usize, 2usize), (7, 3), (15, 4), (25, 2)] {
            for _ in 0..10 {
                let ring = random_ustar_inter_kk(n, k, &mut r);
                assert_eq!(ring.n(), n);
                assert!(ring.in_ustar());
                assert!(ring.in_kk(k));
                assert!(ring.is_asymmetric());
            }
        }
    }

    #[test]
    fn symmetric_ring_is_symmetric() {
        let ring = symmetric_ring(&[1, 2, 3], 2);
        assert_eq!(ring.n(), 6);
        assert!(!ring.is_asymmetric());
        assert!(symmetric_ring(&[7], 4).max_multiplicity() == 4);
    }

    #[test]
    fn near_symmetric_is_asymmetric_with_one_defect() {
        for base in [&[1u64, 2][..], &[1, 2, 3][..], &[5, 5, 7][..]] {
            for times in 2..=4usize {
                let ring = near_symmetric_ring(base, times);
                assert!(ring.is_asymmetric(), "{ring:?}");
                assert_eq!(ring.n(), base.len() * times);
                // the fresh defect label occurs exactly once
                let fresh = ring.labels().iter().max().unwrap();
                assert_eq!(ring.multiplicity(*fresh), 1, "{ring:?}");
                assert!(ring.in_ustar());
            }
        }
    }

    #[test]
    fn lemma1_ring_structure() {
        let mut r = rng(5);
        let base = random_k1(4, &mut r);
        let big = lemma1_ring(&base, 3);
        assert_eq!(big.n(), 13);
        assert!(big.in_ustar());
        assert!(big.in_kk(3));
        assert!(big.is_asymmetric());
        // the fresh label occurs exactly once, every base label k times
        let fresh = big.label(big.n() - 1);
        assert_eq!(big.multiplicity(fresh), 1);
        for l in base.labels() {
            assert_eq!(big.multiplicity(*l), 3);
        }
        // prefix structure: position j carries base label j mod n
        for j in 0..12 {
            assert_eq!(big.label(j), base.label(j % 4));
        }
    }

    #[test]
    fn lemma1_rejects_non_k1_base() {
        let base = RingLabeling::from_raw(&[1, 1, 2]);
        let result = std::panic::catch_unwind(|| lemma1_ring(&base, 2));
        assert!(result.is_err());
    }

    #[test]
    fn generators_are_deterministic_from_seed() {
        let a = random_a_inter_kk(10, 3, 4, &mut rng(42));
        let b = random_a_inter_kk(10, 3, 4, &mut rng(42));
        assert_eq!(a, b);
    }
}
