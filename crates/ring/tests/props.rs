//! Property tests for ring-level facts, including the paper's Lemma 5 and
//! Lemma 6 — the combinatorial heart of Algorithm `Ak`.

use hre_ring::{classify, generate, RingLabeling};
use hre_words::{has_label_with_count, lyndon_rotation, srp, srp_len};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_asymmetric_ring() -> impl Strategy<Value = RingLabeling> {
    (2usize..12, 2u64..5, any::<u64>()).prop_map(|(n, alphabet, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::random_a_inter_kk(n, n, alphabet, &mut rng)
    })
}

proptest! {
    /// Lemma 5: for an asymmetric ring and any m >= 2n,
    /// |srp(LLabels(p)_m)| = n, for every process p.
    #[test]
    fn lemma5_srp_length_is_n(ring in arb_asymmetric_ring(), extra in 0usize..10) {
        let n = ring.n();
        let m = 2 * n + extra;
        for i in 0..n {
            let seq = ring.llabels(i, m);
            prop_assert_eq!(srp_len(&seq), n, "ring={:?} i={}", ring, i);
        }
    }

    /// Lemma 6: if LLabels(p)_m contains 2k+1 copies of some label (k = the
    /// ring's actual max multiplicity bound), the ring is fully determined:
    /// srp gives exactly LLabels(p)_n, hence n and the whole labeling.
    #[test]
    fn lemma6_ring_fully_determined(ring in arb_asymmetric_ring()) {
        let n = ring.n();
        let k = ring.max_multiplicity();
        for i in 0..n {
            // find the smallest m at which some label reaches 2k+1 copies
            let mut m = 1;
            loop {
                let seq = ring.llabels(i, m);
                if has_label_with_count(&seq, 2 * k + 1) {
                    prop_assert_eq!(srp(&seq), &ring.llabels_n(i)[..]);
                    break;
                }
                m += 1;
                prop_assert!(m <= (2 * k + 1) * n, "termination bound exceeded");
            }
        }
    }

    /// The proof of Lemma 6's first step: at most k copies of any label in a
    /// window of length n, hence at most 2k in length 2n.
    #[test]
    fn window_occurrence_bound(ring in arb_asymmetric_ring(), start in 0usize..12) {
        let n = ring.n();
        let k = ring.max_multiplicity();
        let w1 = ring.llabels(start % n, n);
        let w2 = ring.llabels(start % n, 2 * n);
        for l in ring.labels() {
            prop_assert!(hre_words::occurrences(&w1, l) <= k);
            prop_assert!(hre_words::occurrences(&w2, l) <= 2 * k);
        }
    }

    /// True-leader characterization: L's full-turn sequence is the Lyndon
    /// rotation of every other process's full-turn sequence.
    #[test]
    fn true_leader_is_lyndon_rotation_of_all(ring in arb_asymmetric_ring()) {
        let leader = ring.true_leader().unwrap();
        let lw = ring.llabels_n(leader);
        for i in 0..ring.n() {
            prop_assert_eq!(lyndon_rotation(&ring.llabels_n(i)), lw.clone());
        }
    }

    /// The true leader is invariant under re-indexing (rotation) of the ring.
    #[test]
    fn true_leader_label_rotation_invariant(ring in arb_asymmetric_ring(), d in 0usize..12) {
        let rot = ring.rotated(d);
        prop_assert_eq!(rot.true_leader_label(), ring.true_leader_label());
        // and the leader is the same physical process
        let n = ring.n();
        let l = ring.true_leader().unwrap();
        prop_assert_eq!(rot.true_leader().unwrap(), (l + n - (d % n)) % n);
    }

    /// classify() is consistent with the individual predicates.
    #[test]
    fn classify_consistent(ring in arb_asymmetric_ring()) {
        let c = classify(&ring);
        prop_assert_eq!(c.n, ring.n());
        prop_assert_eq!(c.asymmetric, ring.is_asymmetric());
        prop_assert_eq!(c.has_unique_label, ring.in_ustar());
        prop_assert_eq!(c.max_multiplicity, ring.max_multiplicity());
        prop_assert_eq!(c.true_leader, ring.true_leader());
        prop_assert!(c.in_kk(c.max_multiplicity));
        if c.max_multiplicity > 1 {
            prop_assert!(!c.in_kk(c.max_multiplicity - 1));
        }
    }

    /// The Lemma 1 construction always lands in U* ∩ Kk with the right size.
    #[test]
    fn lemma1_construction_class(n in 2usize..8, k in 1usize..5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generate::random_k1(n, &mut rng);
        let big = generate::lemma1_ring(&base, k);
        let c = classify(&big);
        prop_assert_eq!(c.n, k * n + 1);
        prop_assert!(c.in_ustar_inter_kk(k));
    }
}

/// Exhaustive (non-proptest) check of Lemma 5 on every asymmetric binary
/// and ternary labeling of length ≤ 6.
#[test]
fn lemma5_exhaustive_small() {
    for n in 2..=6usize {
        for alphabet in 2..=3u64 {
            for ring in hre_ring::enumerate::asymmetric_labelings(n, alphabet) {
                for i in 0..n {
                    assert_eq!(srp_len(&ring.llabels(i, 2 * n)), n, "{ring:?}");
                    assert_eq!(srp_len(&ring.llabels(i, 3 * n + 1)), n, "{ring:?}");
                }
            }
        }
    }
}

/// On symmetric rings srp of a 2n-window is a *proper divisor* period — the
/// reason the true leader is undefined there.
#[test]
fn symmetric_rings_srp_shorter_than_n() {
    for base in [&[1u64, 2][..], &[1, 2, 3][..], &[1, 1, 2][..]] {
        for times in 2..=3usize {
            let ring = generate::symmetric_ring(base, times);
            let n = ring.n();
            let p = srp_len(&ring.llabels(0, 2 * n));
            assert!(p < n);
            assert_eq!(n % p, 0);
        }
    }
}
