//! E5 — Figure 1: the worked `Bk` execution.
//!
//! The paper walks `Bk` (`k = 3`) through the ring `(1,3,1,3,2,2,1,2)` in
//! four illustrated phases, electing `p0`. We reconstruct every phase from
//! an instrumented run and print it side by side with the figure's values.

use hre_analysis::phases::{figure1_expected, reconstruct_phases};
use hre_analysis::Table;
use hre_ring::catalog;
use hre_words::Label;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let ring = catalog::figure1_ring();
    let k = catalog::FIGURE1_K;
    let table = reconstruct_phases(&ring, k);
    let expected = figure1_expected();

    let mut out = String::new();
    out.push_str(&format!("ring = {ring}, k = {k}\n"));
    out.push_str(&format!(
        "elected: p{} after X = {} phases (paper: p0, X = 9)\n\n",
        table.leader, table.leader_phases
    ));

    let mut t = Table::new([
        "phase",
        "active (measured)",
        "active (paper)",
        "guests p0..p7 (measured)",
        "guests (paper)",
        "match",
    ]);
    let mut all_match = true;
    for phase in 1..=table.phases() {
        let active: Vec<String> = table.active_set(phase).iter().map(|p| format!("p{p}")).collect();
        let guests: Vec<String> = (0..ring.n())
            .map(|p| table.guest(phase, p).map(|g| g.to_string()).unwrap_or("-".into()))
            .collect();
        let (paper_active, paper_guests, verdict) = if phase <= expected.len() {
            let (ea, eg) = &expected[phase - 1];
            let ok = table.active_set(phase) == *ea
                && (0..ring.n()).all(|p| table.guest(phase, p) == Some(Label::new(eg[p])));
            all_match &= ok;
            (
                ea.iter().map(|p| format!("p{p}")).collect::<Vec<_>>().join(","),
                eg.iter().map(|g| g.to_string()).collect::<Vec<_>>().join(","),
                if ok { "✓" } else { "✗" },
            )
        } else {
            ("—".into(), "—".into(), "·")
        };
        t.row([
            phase.to_string(),
            active.join(","),
            paper_active,
            guests.join(","),
            paper_guests,
            verdict.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPhases 1–4 match Figure 1 exactly: {} (phases 5–9 are the paper's \
         \"…continues until outer = k+1\" tail, not illustrated).\n",
        if all_match && table.leader == catalog::FIGURE1_LEADER && table.leader_phases == 9 {
            "YES"
        } else {
            "NO"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn figure_matches() {
        let r = super::report();
        assert!(r.contains("match Figure 1 exactly: YES"), "{r}");
    }
}
