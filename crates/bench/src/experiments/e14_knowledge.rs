//! E14 — what knowledge buys what (§I, the "perhaps surprisingly"
//! remark, quantified).
//!
//! The paper observes that knowing the multiplicity bound `k` (plus the
//! ring's orientation) lets `Ak`/`Bk` solve rings that are *unsolvable*
//! in models where processes instead know `n` or bounds `m ≤ n ≤ M`
//! (Dobrev–Pelc \[4\], Delporte et al. \[9\]). We make that concrete:
//!
//! For each asymmetric ring we run `Ak(k)` (always succeeds) against
//! `BoundedN(m, M)` — our \[4\]-style comparator that must *refuse* whenever
//! some ring consistent with its observations is symmetric, i.e. whenever
//! `M ≥ 2s` for the ring's primitive root length `s = n`. The table sweeps
//! bound tightness and reports the refusal frontier: `BoundedN` flips from
//! "elects" to "impossible" exactly when `M` crosses `2n`, while `Ak` is
//! oblivious to it.

use hre_analysis::Table;
use hre_baselines::{BnProc, BoundedN};
use hre_core::Ak;
use hre_ring::{catalog, generate, RingLabeling};
use hre_sim::{run, Network, RoundRobinSched, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 1414;

/// Outcome of one BoundedN run, decided by direct network inspection
/// (refusal is a *decision*, not a spec-clean election).
fn bounded_n_outcome(ring: &RingLabeling, m: usize, big_m: usize) -> &'static str {
    let algo = BoundedN::new(m, big_m);
    let mut net: Network<BnProc> = Network::new(&algo, ring);
    let mut guard = 0u64;
    while let Some(&i) = net.enabled_set().first() {
        net.fire(i);
        guard += 1;
        assert!(guard < 50_000_000);
    }
    let impossible = (0..ring.n()).all(|i| net.process(i).declared_impossible());
    let leaders: Vec<usize> = (0..ring.n()).filter(|&i| net.election(i).is_leader).collect();
    let all_halted = (0..ring.n()).all(|i| net.election(i).halted);
    match (impossible, leaders.len(), all_halted) {
        (true, 0, true) => "refuses (impossible)",
        (false, 1, true) => "elects",
        _ => "BROKEN",
    }
}

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n\n"));
    let mut rng = StdRng::seed_from_u64(SEED);

    let mut t = Table::new(["ring", "n", "k", "Ak(k)", "bounds [m,M]", "BoundedN", "M < 2n?"]);
    let mut frontier_ok = true;

    let mut rings: Vec<RingLabeling> = vec![catalog::ring_122(), catalog::figure1_ring()];
    rings.push(generate::random_a_inter_kk(6, 2, 4, &mut rng));
    rings.push(generate::random_a_inter_kk(10, 3, 5, &mut rng));

    for ring in &rings {
        let n = ring.n();
        let k = ring.max_multiplicity().max(1);
        let ak = run(&Ak::new(k), ring, &mut RoundRobinSched::default(), RunOptions::default());
        let ak_out = if ak.clean() { "elects" } else { "fails" };

        // three bound regimes: tight, boundary, loose
        let regimes = [
            (n.saturating_sub(1).max(2), 2 * n - 1), // M < 2n: must elect
            (n.saturating_sub(1).max(2), 2 * n),     // M = 2n: must refuse
            (2.max(n / 2), 3 * n),                   // loose: must refuse
        ];
        for (m, big_m) in regimes {
            let (m, big_m) = (m.min(n), big_m.max(n));
            let outcome = bounded_n_outcome(ring, m, big_m);
            let tight = big_m < 2 * n;
            frontier_ok &=
                (tight && outcome == "elects") || (!tight && outcome == "refuses (impossible)");
            t.row([
                format!("{ring}"),
                n.to_string(),
                k.to_string(),
                ak_out.to_string(),
                format!("[{m},{big_m}]"),
                outcome.to_string(),
                tight.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nRefusal frontier at exactly M = 2n while Ak (knowing k) elects \
         everywhere: {}\n\
         This quantifies the paper's remark: knowledge of k and orientation \
         strictly beats bounds on n on these rings (e.g. ring (1,2,2) with \
         any bounds allowing M ≥ 6).\n",
        if frontier_ok { "CONFIRMED" } else { "NOT CONFIRMED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn knowledge_frontier_confirmed() {
        let r = super::report();
        assert!(r.contains("elects everywhere: CONFIRMED"), "{r}");
    }
}
