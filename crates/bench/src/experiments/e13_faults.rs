//! E13 — ablation of the model's assumptions (§II): reliable, FIFO,
//! exactly-once links.
//!
//! The paper's proofs use all three properties (e.g. `p.string` is a
//! prefix of `LLabels(p)` only if nothing is lost, duplicated, or
//! reordered; `Bk`'s phase barrier is built on FIFO). This experiment
//! removes each assumption with deterministic link faults and reports what
//! actually goes wrong: silent non-election, livelock, or deadlock. A
//! benign plan is included as the control (always clean) — so the
//! assumptions are load-bearing, not decorative.
//!
//! Occasionally a sparse fault is tolerated by luck (the lost token wasn't
//! needed for any decision); the table makes that visible too — the claim
//! is "no guarantee without the assumptions", not "every fault is fatal".

use hre_analysis::Table;
use hre_core::{Ak, Bk};
use hre_net::{run_tcp, FaultPolicy, NetOptions};
use hre_ring::{catalog, generate};
use hre_sim::{run, run_faulty, FaultPlan, LinkFault, RoundRobinSched, RunOptions, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const SEED: u64 = 13_131;

fn verdict_str<M>(rep: &hre_sim::RunReport<M>, benign: bool) -> String {
    if rep.clean() {
        return if benign { "clean".into() } else { "clean (fault tolerated by luck)".into() };
    }
    match rep.verdict {
        Verdict::Completed => "completed but spec violated".into(),
        Verdict::QuiescentNotHalted => "quiescent, nobody elected".into(),
        Verdict::Deadlock => "deadlock".into(),
        Verdict::ActionLimit => "livelock (action budget exhausted)".into(),
        Verdict::StoppedOnViolation => "spec violation".into(),
    }
}

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n\n"));
    let opts = RunOptions { max_actions: 300_000, ..Default::default() };

    let mut rng = StdRng::seed_from_u64(SEED);
    let rings = vec![
        ("figure-1 ring", catalog::figure1_ring()),
        ("random ring", generate::random_a_inter_kk(10, 3, 4, &mut rng)),
    ];
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("none (control)", FaultPlan::none()),
        ("drop every 5th msg", FaultPlan::single(LinkFault::DropEveryNth(5))),
        ("drop every 17th msg", FaultPlan::single(LinkFault::DropEveryNth(17))),
        ("duplicate every 5th", FaultPlan::single(LinkFault::DuplicateEveryNth(5))),
        ("reorder every 7th", FaultPlan::single(LinkFault::SwapEveryNth(7))),
    ];

    let mut t = Table::new(["ring", "link fault", "Ak outcome", "Bk outcome"]);
    let mut controls_clean = true;
    let mut each_fault_broke_something = vec![false; plans.len()];

    for (ring_name, ring) in &rings {
        let k = ring.max_multiplicity().max(2);
        for (pi, (fault_name, plan)) in plans.iter().enumerate() {
            let ak =
                run_faulty(&Ak::new(k), ring, &mut RoundRobinSched::default(), opts, plan.clone());
            let bk =
                run_faulty(&Bk::new(k), ring, &mut RoundRobinSched::default(), opts, plan.clone());
            if plan.is_benign() {
                controls_clean &= ak.clean() && bk.clean();
            } else {
                each_fault_broke_something[pi] |= !ak.clean() || !bk.clean();
            }
            t.row([
                ring_name.to_string(),
                fault_name.to_string(),
                verdict_str(&ak, plan.is_benign()),
                verdict_str(&bk, plan.is_benign()),
            ]);
        }
    }
    out.push_str(&t.render());

    let all_faults_broke = each_fault_broke_something.iter().skip(1).all(|&b| b);
    out.push_str(&format!(
        "\nControls (no faults) clean: {}; every fault class broke at least \
         one run: {} — the reliability / exactly-once / FIFO assumptions of \
         §II are necessary.\n",
        if controls_clean { "YES" } else { "NO" },
        if all_faults_broke { "YES" } else { "NO" }
    ));

    // Second half of the ablation: the very fault classes that break the
    // bare model are harmless once the transport layer (hre-net) recovers
    // the link assumptions — sequence numbers, retransmission, and
    // duplicate suppression turn every class back into a clean election.
    out.push_str("\n### Transport-level recovery (hre-net over TCP)\n\n");
    let ring = catalog::figure1_ring();
    let k = ring.max_multiplicity().max(2);
    let sim = run(&Ak::new(k), &ring, &mut RoundRobinSched::default(), RunOptions::default());
    let wire_faults: Vec<(&str, FaultPolicy)> = vec![
        ("drop 20 % of frames", FaultPolicy { drop: 0.20, ..FaultPolicy::NONE }),
        ("duplicate 10 %", FaultPolicy { duplicate: 0.10, ..FaultPolicy::NONE }),
        ("reorder 10 %", FaultPolicy { reorder: 0.10, ..FaultPolicy::NONE }),
        (
            "delay 10 % up to 5 ms",
            FaultPolicy { delay: 0.10, max_delay: Duration::from_millis(5), ..FaultPolicy::NONE },
        ),
        (
            "one connection reset per link",
            FaultPolicy { reset_after: Some(2), ..FaultPolicy::NONE },
        ),
        ("all of the above", FaultPolicy::stress()),
    ];
    let mut t = Table::new([
        "wire fault",
        "Ak outcome",
        "retries",
        "reconnects",
        "dups dropped",
        "faults injected",
    ]);
    let mut all_recovered = true;
    for (name, policy) in wire_faults {
        let rep = run_tcp(
            &Ak::new(k),
            &ring,
            NetOptions { faults: policy, fault_seed: SEED, ..NetOptions::default() },
        );
        let ok = rep.clean() && rep.leader() == sim.leader && rep.messages == sim.metrics.messages;
        all_recovered &= ok;
        let w = &rep.net.total;
        t.row([
            name.to_string(),
            if ok { "clean, same leader & msg count".into() } else { "NOT RECOVERED".to_string() },
            w.frames_retried.to_string(),
            w.reconnects.to_string(),
            w.dup_frames_rx.to_string(),
            w.faults_injected.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nRetransmission + reassembly turned every fault class back into a \
         clean run: {} — the assumptions are necessary at the model layer \
         and sufficient to re-establish end-to-end.\n",
        if all_recovered { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn assumptions_are_necessary() {
        let r = super::report();
        assert!(r.contains("Controls (no faults) clean: YES"), "{r}");
        assert!(r.contains("broke at least one run: YES"), "{r}");
        assert!(r.contains("back into a clean run: YES"), "{r}");
    }
}
