//! E12 — Lemmas 5–6: the combinatorics `Ak` stands on.
//!
//! * **Lemma 5**: for an asymmetric ring and any `m ≥ 2n`,
//!   `|srp(LLabels(p)_m)| = n` for every process `p`.
//! * **Lemma 6**: a prefix with `2k+1` copies of some label fully
//!   determines the ring (its `srp` *is* `LLabels(p)_n`).
//!
//! Checked exhaustively over every asymmetric labeling of `n ≤ 7` over a
//! ternary alphabet — every process, every prefix length — plus a
//! tightness probe. Interestingly, Fine–Wilf shows `m ≥ 2n − 2` already
//! suffices (the paper's `2n` is safely conservative), and the probe
//! exhibits counterexamples at `m = 2n − 3`, so `2n − 2` is the exact
//! threshold.

use hre_analysis::Table;
use hre_ring::enumerate::asymmetric_labelings;
use hre_words::{has_label_with_count, srp, srp_len};

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    let mut t = Table::new(["n", "rings", "lemma5 checks", "lemma6 checks", "violations"]);
    let mut total_violations = 0usize;

    for n in 2..=7usize {
        let rings = asymmetric_labelings(n, 3);
        let mut l5 = 0usize;
        let mut l6 = 0usize;
        let mut violations = 0usize;
        for ring in &rings {
            let k = ring.max_multiplicity();
            for p in 0..n {
                // Lemma 5 at m = 2n and m = 3n+1.
                for m in [2 * n, 3 * n + 1] {
                    l5 += 1;
                    if srp_len(&ring.llabels(p, m)) != n {
                        violations += 1;
                    }
                }
                // Lemma 6 at the first threshold crossing.
                let mut m = 1;
                loop {
                    let seq = ring.llabels(p, m);
                    if has_label_with_count(&seq, 2 * k + 1) {
                        l6 += 1;
                        if srp(&seq) != &ring.llabels_n(p)[..] {
                            violations += 1;
                        }
                        break;
                    }
                    m += 1;
                }
            }
        }
        total_violations += violations;
        t.row([
            n.to_string(),
            rings.len().to_string(),
            l5.to_string(),
            l6.to_string(),
            violations.to_string(),
        ]);
    }
    out.push_str(&t.render());

    // Tightness: by Fine–Wilf, every window of length 2n−2 of an
    // asymmetric ring already has srp = n (we verify), while at 2n−3
    // counterexamples exist (we exhibit one, e.g. ring 0,0,1,0).
    let mut fw_ok = true;
    for n in 2..=6usize {
        for ring in asymmetric_labelings(n, 3) {
            for p in 0..n {
                if 2 * n >= 3 && srp_len(&ring.llabels(p, 2 * n - 2)) != n {
                    fw_ok = false;
                }
            }
        }
    }
    let mut tight_example = None;
    'outer: for n in 4..=6usize {
        for ring in asymmetric_labelings(n, 3) {
            for p in 0..n {
                if srp_len(&ring.llabels(p, 2 * n - 3)) != n {
                    tight_example = Some((ring.clone(), p, n));
                    break 'outer;
                }
            }
        }
    }
    out.push_str(&format!(
        "\nFine–Wilf refinement: every (2n−2)-window already has srp = n: {}\n",
        if fw_ok { "YES (the paper's 2n is safely conservative)" } else { "NO" }
    ));
    match &tight_example {
        Some((ring, p, n)) => out.push_str(&format!(
            "Threshold is exact: on {ring} at p{p}, the (2n−3)-prefix has srp \
             length {} ≠ n = {n} — below 2n−2 the lemma fails.\n",
            srp_len(&ring.llabels(*p, 2 * n - 3))
        )),
        None => out.push_str("No 2n−3 counterexample found (unexpected).\n"),
    }
    out.push_str(&format!(
        "\nLemmas 5 and 6 hold on every check: {}\n",
        if total_violations == 0 { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn lemmas_hold_and_bound_is_tight() {
        let r = super::report();
        assert!(r.contains("every check: YES"), "{r}");
        assert!(r.contains("safely conservative"), "{r}");
        assert!(r.contains("Threshold is exact"), "{r}");
    }
}
