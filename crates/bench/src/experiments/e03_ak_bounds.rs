//! E3 — Theorem 2: Algorithm `Ak` (Table 1).
//!
//! Paper claims, for any ring of `A ∩ Kk`:
//! * time ≤ `(2k+2)·n` time units,
//! * messages ≤ `n²(2k+1) + n`,
//! * space ≤ `(2k+1)·n·b + 2b + 3` bits per process,
//! * the *true leader* (Lyndon-word process) is elected.
//!
//! We sweep `n × k` over rings of exact multiplicity `k` and report
//! measured vs bound. Ratios well under 1.0 are expected — the bounds are
//! worst-case over all rings of the class, while the tightest instances
//! (all labels distinct, `M = 1`) max out the time bound.

use crate::measure_ak;
use hre_analysis::Table;
use hre_ring::generate::{near_symmetric_ring, random_exact_multiplicity, random_k1};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 42;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n\n"));
    let mut table = Table::new([
        "n",
        "k",
        "b",
        "time",
        "≤ (2k+2)n",
        "msgs",
        "≤ n²(2k+1)+n",
        "space(b)",
        "≤ bound",
        "ok",
    ]);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut all_ok = true;

    // Rings come out of the seeded rng serially (so the catalog matches the
    // historical report byte for byte); the measurements fan out over the
    // sweep runner and merge back in enumeration order.
    let grid = [
        (8usize, 2usize),
        (8, 4),
        (16, 2),
        (16, 4),
        (32, 2),
        (32, 4),
        (32, 8),
        (64, 4),
        (64, 8),
        (128, 4),
    ];
    let rings: Vec<_> =
        grid.iter().map(|&(n, k)| (n, k, random_exact_multiplicity(n, k, &mut rng))).collect();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let measured = hre_sim::sweep_map(&rings, threads, |_, (_, k, ring)| measure_ak(ring, *k));
    for ((n, k, ring), m) in rings.iter().zip(measured) {
        let (n, k) = (*n, *k);
        let b = ring.label_bits() as u64;
        let (n64, k64) = (n as u64, k as u64);
        let tb = (2 * k64 + 2) * n64;
        let mb = n64 * n64 * (2 * k64 + 1) + n64;
        let sb = (2 * k64 + 1) * n64 * b + 2 * b + 3;
        let ok = m.time_units <= tb && m.messages <= mb && m.peak_space_bits <= sb;
        all_ok &= ok;
        table.row([
            n.to_string(),
            k.to_string(),
            b.to_string(),
            m.time_units.to_string(),
            tb.to_string(),
            m.messages.to_string(),
            mb.to_string(),
            m.peak_space_bits.to_string(),
            sb.to_string(),
            if ok { "✓".into() } else { "✗".to_string() },
        ]);
    }
    out.push_str(&table.render());

    // K1 rings (M = 1) are the worst case of the time analysis: the
    // execution really needs ~(2k+1)n time before the leader can decide.
    out.push_str("\nWorst-case family (K1 rings, M = 1): time approaches the bound.\n");
    let mut t2 = Table::new(["n", "k", "time", "(2k+2)n", "time/(2k+2)n"]);
    for &(n, k) in &[(8usize, 2usize), (16, 3), (32, 4)] {
        let ring = random_k1(n, &mut rng);
        let m = measure_ak(&ring, k);
        let tb = (2 * k as u64 + 2) * n as u64;
        t2.row([
            n.to_string(),
            k.to_string(),
            m.time_units.to_string(),
            tb.to_string(),
            format!("{:.2}", m.time_units as f64 / tb as f64),
        ]);
    }
    out.push_str(&t2.render());

    // Near-symmetric rings ((1,2) repeated, one defect) maximize the
    // multiplicity k = n/2 and hence Ak's string growth: the space column
    // is the stress case of the (2k+1)nb bound.
    out.push_str("\nStress family (near-symmetric rings, k = multiplicity = n/2):\n");
    let mut t3 = Table::new(["n", "k", "time", "msgs", "space(b)", "≤ (2k+1)nb+2b+3", "ok"]);
    for &half in &[4usize, 8, 12] {
        let ring = near_symmetric_ring(&[1, 2], half);
        let n = ring.n();
        let k = ring.max_multiplicity();
        let b = ring.label_bits() as u64;
        let m = measure_ak(&ring, k);
        let sb = (2 * k as u64 + 1) * n as u64 * b + 2 * b + 3;
        let ok = m.peak_space_bits <= sb;
        all_ok &= ok;
        t3.row([
            n.to_string(),
            k.to_string(),
            m.time_units.to_string(),
            m.messages.to_string(),
            m.peak_space_bits.to_string(),
            sb.to_string(),
            if ok { "✓".into() } else { "✗".to_string() },
        ]);
    }
    out.push_str(&t3.render());
    out.push_str(&format!(
        "\nAll sweeps within every Theorem 2 bound: {}\n",
        if all_ok { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_bounds_hold() {
        let r = super::report();
        assert!(r.contains("within every Theorem 2 bound: YES"), "{r}");
    }
}
