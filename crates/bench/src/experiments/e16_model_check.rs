//! E16 — exhaustive model checking of small instances.
//!
//! The schedulers sample fair executions; here we instead enumerate
//! **every** reachable configuration (all interleavings) of `Ak` and `Bk`
//! on every canonical asymmetric ring of small size and verify, over the
//! whole state space:
//!
//! * at most one leader in every reachable configuration (spec cond. 1);
//! * `isLeader`/`done` never revoked along any edge (cond. 1/3);
//! * no reachable deadlock (Lemmas 11–12 — now exhaustive, not sampled);
//! * **confluence**: exactly one terminal configuration, all-halted — the
//!   diamond property behind every scheduler-agreement test, proved by
//!   enumeration on these instances.

use hre_analysis::Table;
use hre_core::{Ak, Bk};
use hre_ring::enumerate::canonical_asymmetric_labelings_fast;
use hre_sim::explore;

const BUDGET: u64 = 3_000_000;

/// Runs the experiment and renders its report (rings up to `n = 5`).
pub fn report() -> String {
    report_up_to(5)
}

/// The experiment body, parameterized by the largest ring size (the unit
/// test uses 4 to stay fast in debug builds; the binary uses 5).
pub fn report_up_to(max_n: usize) -> String {
    let mut out = String::new();
    let mut t = Table::new([
        "n",
        "rings",
        "algo",
        "total configs",
        "max configs/ring",
        "terminal/ring",
        "verified",
    ]);
    let mut all_verified = true;

    for n in 2..=max_n {
        let rings = canonical_asymmetric_labelings_fast(n, 3);
        for algo_name in ["Ak", "Bk"] {
            let mut total = 0u64;
            let mut max_configs = 0u64;
            let mut ok = true;
            let mut one_terminal = true;
            for ring in &rings {
                let k = ring.max_multiplicity().max(if algo_name == "Bk" { 2 } else { 1 });
                let rep = if algo_name == "Ak" {
                    explore(&Ak::new(k), ring, BUDGET)
                } else {
                    explore(&Bk::new(k), ring, BUDGET)
                };
                total += rep.configurations;
                max_configs = max_configs.max(rep.configurations);
                ok &= rep.verified();
                one_terminal &= rep.terminal_configurations == 1;
            }
            all_verified &= ok;
            t.row([
                n.to_string(),
                rings.len().to_string(),
                algo_name.to_string(),
                total.to_string(),
                max_configs.to_string(),
                if one_terminal { "1 (confluent)".into() } else { "≠1".to_string() },
                ok.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nEvery reachable configuration of every canonical asymmetric ring \
         (n ≤ {max_n}, ternary alphabet) is safe, deadlock-free, and confluent: {}\n\
         (This upgrades the scheduler-sampling evidence of E10 to an \
         exhaustive proof on these instances.)\n",
        if all_verified { "VERIFIED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn exhaustive_verification_passes() {
        // n <= 4 in the unit test (debug builds); the binary goes to 5.
        let r = super::report_up_to(4);
        assert!(r.contains("confluent: VERIFIED"), "{r}");
    }
}
