//! E22 — engine performance: zero-copy messages, pooled links, and the
//! parallel sweep runner, measured against the frozen pre-optimization
//! engine ([`hre_sim::baseline`]).
//!
//! Three claims, three checks:
//!
//! 1. **Correctness is untouched.** On the exhaustive catalog of
//!    asymmetric rings (n ≤ 5, alphabet ≤ 3), the optimized engine
//!    running the optimized `Ak` produces *byte-identical* outcomes —
//!    leader, per-process received/sent message streams, message and time
//!    totals — to the frozen baseline engine running the paper-literal
//!    `AkReference` oracle. Both engines keep their enabled lists sorted
//!    ascending, so deterministic schedulers make the same decisions and
//!    traces are comparable step for step.
//! 2. **Single-thread speedup.** The E17 scale workload (rings of exact
//!    multiplicity 3 from the E17 seed) runs ≥ 3× faster on the new
//!    engine (≥ 1.5× gates the CI quick mode); outcomes must agree
//!    exactly at every size.
//! 3. **Parallel scaling.** The sweep runner fans a ring catalog across
//!    threads; reports must be identical at every thread count (hard
//!    assertion), and on multi-core hosts 4 threads must beat 1 by ≥ 2×
//!    wall-clock (skipped, and said so, on single-core hosts).
//!
//! The machine-readable result is written to `BENCH_e22.json` at the repo
//! root by the `exp_perf` binary.

use hre_analysis::Table;
use hre_core::{Ak, AkReference, Bk};
use hre_ring::generate::random_exact_multiplicity;
use hre_ring::{enumerate, RingLabeling};
use hre_sim::baseline::run_baseline;
use hre_sim::{run, sweep_map, RoundRobinSched, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// E17's seed: the speedup is measured on the same ring family E17 sweeps.
const E17_SEED: u64 = 1717;
/// Seed for the parallel-scaling catalog.
const SWEEP_SEED: u64 = 2222;

/// Everything the run produced: the human report, the machine-readable
/// JSON (the contents of `BENCH_e22.json`), and the gate verdict.
pub struct E22Outcome {
    /// Rendered report (tables + gate lines).
    pub report: String,
    /// JSON document for `BENCH_e22.json`.
    pub json: String,
    /// Every gate passed.
    pub ok: bool,
}

/// A run's observable outcome, flattened for exact comparison. Streams are
/// rendered through `Debug`, so equality is byte equality.
fn outcome_key<M: std::fmt::Debug + Clone>(rep: &hre_sim::RunReport<M>, n: usize) -> String {
    let t = rep.trace.as_ref().expect("recorded run");
    let streams: Vec<String> =
        (0..n).map(|p| format!("r{:?}s{:?}", t.received_stream(p), t.sent_stream(p))).collect();
    format!(
        "leader={:?} msgs={} time={} wire={} space={} {}",
        rep.leader,
        rep.metrics.messages,
        rep.metrics.time_units,
        rep.metrics.wire_bits,
        rep.metrics.peak_space_bits,
        streams.join("|")
    )
}

/// Wall-clock of the best of `reps` invocations, in milliseconds.
fn best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// Runs the experiment. `quick` shrinks the workload (and relaxes the
/// speedup gate to the CI threshold of 1.5×) for fast iteration.
pub fn run_e22(quick: bool) -> E22Outcome {
    let mut out = String::new();
    let mut ok = true;
    let threads_avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    let opts = RunOptions::default();
    let rec = RunOptions { record_trace: true, ..RunOptions::default() };

    // ── 1. Oracle agreement on the exhaustive small-ring catalog ─────────
    let catalog: Vec<RingLabeling> =
        (2..=5usize).flat_map(|n| enumerate::asymmetric_labelings(n, 3)).collect();
    let divergences: usize = sweep_map(&catalog, threads_avail, |_, ring| {
        let k = ring.max_multiplicity().max(1);
        let oracle = run_baseline(&AkReference::new(k), ring, &mut RoundRobinSched::default(), rec);
        let fast = run(&Ak::new(k), ring, &mut RoundRobinSched::default(), rec);
        usize::from(
            outcome_key(&oracle, ring.n()) != outcome_key(&fast, ring.n())
                || !oracle.clean()
                || !fast.clean(),
        )
    })
    .into_iter()
    .sum();
    ok &= divergences == 0;
    out.push_str(&format!(
        "### Oracle agreement\n\nOptimized engine + optimized Ak vs frozen baseline engine + \
         paper-literal AkReference,\nexhaustive asymmetric catalog n ≤ 5, alphabet ≤ 3: \
         {} rings, {} divergence(s)\n(byte-identical leader, metrics, and per-process \
         message streams required).\n\n",
        catalog.len(),
        divergences
    ));

    // ── 2. Single-thread speedup on the E17 workload ─────────────────────
    let mut rng = StdRng::seed_from_u64(E17_SEED);
    let sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256, 512] };
    let max_gen = *sizes.last().unwrap();
    let mut all_sizes = vec![64usize];
    while *all_sizes.last().unwrap() * 2 <= max_gen {
        let next = all_sizes.last().unwrap() * 2;
        all_sizes.push(next);
    }
    let rings: Vec<(usize, RingLabeling)> =
        all_sizes.iter().map(|&n| (n, random_exact_multiplicity(n, 3, &mut rng))).collect();

    let mut t = Table::new(["n", "algo", "baseline ms", "optimized ms", "speedup", "agree"]);
    let mut speedups = Vec::new();
    let mut rows_json = Vec::new();
    for (n, ring) in rings.iter().filter(|(n, _)| sizes.contains(n)) {
        for (algo, cap) in [("Ak", usize::MAX), ("Bk", 256)] {
            if *n > cap {
                continue;
            }
            let reps = if *n >= 256 { 1 } else { 2 };
            let (old_ms, old_rep, new_ms, new_rep) = if algo == "Ak" {
                let (o_ms, o) = best_ms(reps, || {
                    run_baseline(&Ak::new(3), ring, &mut RoundRobinSched::default(), opts)
                });
                let (n_ms, r) =
                    best_ms(reps, || run(&Ak::new(3), ring, &mut RoundRobinSched::default(), opts));
                (o_ms, (o.leader, o.metrics), n_ms, (r.leader, r.metrics))
            } else {
                let (o_ms, o) = best_ms(reps, || {
                    run_baseline(&Bk::new(3), ring, &mut RoundRobinSched::default(), opts)
                });
                let (n_ms, r) =
                    best_ms(reps, || run(&Bk::new(3), ring, &mut RoundRobinSched::default(), opts));
                (o_ms, (o.leader, o.metrics), n_ms, (r.leader, r.metrics))
            };
            let agree = old_rep == new_rep;
            ok &= agree;
            let speedup = old_ms / new_ms;
            if algo == "Ak" {
                speedups.push(speedup);
            }
            t.row([
                n.to_string(),
                algo.into(),
                format!("{old_ms:.2}"),
                format!("{new_ms:.2}"),
                format!("{speedup:.1}x"),
                if agree { "✓".into() } else { "✗".to_string() },
            ]);
            rows_json.push(format!(
                "{{\"n\":{n},\"algo\":\"{algo}\",\"baseline_ms\":{old_ms:.3},\
                 \"optimized_ms\":{new_ms:.3},\"speedup\":{speedup:.2},\"agree\":{agree}}}"
            ));
        }
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let gate = if quick { 1.5 } else { 3.0 };
    let speed_ok = geomean >= gate;
    ok &= speed_ok;
    out.push_str(&format!(
        "### Single-thread speedup (E17 workload, seed {E17_SEED}, round-robin)\n\n{}\n\
         Ak geometric-mean speedup: {geomean:.1}x (gate: ≥ {gate}x — {})\n\n",
        t.render(),
        if speed_ok { "PASS" } else { "FAIL" }
    ));

    // ── 3. Parallel sweep scaling + thread-count invariance ──────────────
    let mut rng = StdRng::seed_from_u64(SWEEP_SEED);
    let (count, n_sweep) = if quick { (8, 64) } else { (16, 128) };
    let sweep_rings: Vec<RingLabeling> =
        (0..count).map(|_| random_exact_multiplicity(n_sweep, 3, &mut rng)).collect();
    let digest = |threads: usize| {
        sweep_map(&sweep_rings, threads, |_, ring| {
            let rep = run(&Ak::new(3), ring, &mut RoundRobinSched::default(), opts);
            (rep.leader, rep.metrics)
        })
    };
    let (ms1, d1) = best_ms(1, || digest(1));
    let (ms4, d4) = best_ms(1, || digest(4));
    let invariant = d1 == d4;
    ok &= invariant;
    let scaling = ms1 / ms4;
    let scaling_gate = if threads_avail >= 4 {
        let pass = scaling >= 2.0;
        ok &= pass;
        if pass {
            "PASS".to_string()
        } else {
            "FAIL".to_string()
        }
    } else {
        format!("SKIPPED ({threads_avail} core(s) available)")
    };
    out.push_str(&format!(
        "### Parallel sweep ({count} rings, n = {n_sweep}, Ak)\n\n\
         threads=1: {ms1:.1} ms; threads=4: {ms4:.1} ms; scaling {scaling:.2}x \
         (gate: ≥ 2x at ≥ 4 cores — {scaling_gate})\n\
         thread-count invariance (identical reports at 1 and 4 threads): {}\n\n\
         overall: {}\n",
        if invariant { "HOLDS" } else { "VIOLATED" },
        if ok { "PASS" } else { "FAIL" }
    ));

    let json = format!(
        "{{\n  \"experiment\": \"E22\",\n  \"quick\": {quick},\n  \"cores\": {threads_avail},\n  \
         \"oracle\": {{\"rings_checked\": {}, \"divergences\": {divergences}}},\n  \
         \"single_thread\": [\n    {}\n  ],\n  \"ak_geomean_speedup\": {geomean:.2},\n  \
         \"speedup_gate\": {gate},\n  \"parallel\": {{\"rings\": {count}, \"n\": {n_sweep}, \
         \"wall_ms_1t\": {ms1:.3}, \"wall_ms_4t\": {ms4:.3}, \"scaling\": {scaling:.2}, \
         \"invariant\": {invariant}, \"scaling_gate\": \"{scaling_gate}\"}},\n  \
         \"ok\": {ok}\n}}\n",
        catalog.len(),
        rows_json.join(",\n    "),
    );
    E22Outcome { report: out, json, ok }
}

/// Registry entry point: the full (non-quick) report.
pub fn report() -> String {
    run_e22(false).report
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_passes_all_gates() {
        let o = super::run_e22(true);
        assert!(o.ok, "{}", o.report);
        assert!(o.report.contains("0 divergence(s)"), "{}", o.report);
        assert!(o.json.contains("\"ok\": true"), "{}", o.json);
    }
}
