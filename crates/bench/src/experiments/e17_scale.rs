//! E17 — scale: the implementation at ring sizes far beyond the proof
//! walk-throughs, confirming the asymptotic *shapes* (not just the bounds)
//! of Theorems 2 and 4.
//!
//! * `Ak` time grows linearly in `n` at fixed `k` (slope `≈ 2k+1` time
//!   units per process) and messages quadratically;
//! * `Bk` time grows quadratically;
//! * the measured growth *exponents* are estimated from successive
//!   doublings: `log2(cost(2n)/cost(n))` should sit near 1 for linear and
//!   near 2 for quadratic quantities.

use crate::{measure_ak, measure_bk};
use hre_analysis::Table;
use hre_ring::generate::random_exact_multiplicity;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 1717;

/// Runs the experiment and renders its report. `max_n` lets the unit test
/// stay small in debug builds; the binary uses 512.
pub fn report_up_to(max_n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}; k = 3; rings of exact multiplicity k\n\n"));
    let mut rng = StdRng::seed_from_u64(SEED);

    let mut sizes = vec![64usize];
    while *sizes.last().unwrap() * 2 <= max_n {
        let next = sizes.last().unwrap() * 2;
        sizes.push(next);
    }

    // Rings are generated serially from the seeded rng (so the catalog is
    // byte-identical to the historical serial report), then measured on
    // the parallel sweep runner and merged back in enumeration order.
    let rings: Vec<(usize, hre_ring::RingLabeling)> =
        sizes.iter().map(|&n| (n, random_exact_multiplicity(n, 3, &mut rng))).collect();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let measured = hre_sim::sweep_map(&rings, threads, |_, (n, ring)| {
        let a = measure_ak(ring, 3);
        // Bk is Θ(k²n²); cap it to keep the harness quick.
        let b = (*n <= max_n.min(256)).then(|| measure_bk(ring, 3));
        (a, b)
    });

    let mut t = Table::new(["n", "Ak time", "Ak msgs", "Bk time", "Bk msgs"]);
    let mut ak_time = Vec::new();
    let mut ak_msgs = Vec::new();
    let mut bk_time = Vec::new();
    for (&n, (a, b)) in sizes.iter().zip(&measured) {
        let (bt, bm) = match b {
            Some(b) => (b.time_units.to_string(), b.messages.to_string()),
            None => ("—".into(), "—".into()),
        };
        if let Some(b) = b {
            bk_time.push(b.time_units as f64);
        }
        ak_time.push(a.time_units as f64);
        ak_msgs.push(a.messages as f64);
        t.row([n.to_string(), a.time_units.to_string(), a.messages.to_string(), bt, bm]);
    }
    out.push_str(&t.render());

    let exponent = |v: &[f64]| -> Vec<f64> { v.windows(2).map(|w| (w[1] / w[0]).log2()).collect() };
    let fmt = |v: Vec<f64>| v.iter().map(|e| format!("{e:.2}")).collect::<Vec<_>>().join(", ");
    let ak_t_exp = exponent(&ak_time);
    let ak_m_exp = exponent(&ak_msgs);
    let bk_t_exp = exponent(&bk_time);
    let shapes_ok = ak_t_exp.iter().all(|&e| (e - 1.0).abs() < 0.25)
        && ak_m_exp.iter().all(|&e| (e - 2.0).abs() < 0.25)
        && bk_t_exp.iter().all(|&e| (e - 2.0).abs() < 0.35);
    out.push_str(&format!(
        "\ndoubling exponents — Ak time: [{}] (expect ≈1); Ak msgs: [{}] \
         (expect ≈2); Bk time: [{}] (expect ≈2)\nasymptotic shapes: {}\n",
        fmt(ak_t_exp),
        fmt(ak_m_exp),
        fmt(bk_t_exp),
        if shapes_ok { "CONFIRMED" } else { "CHECK" }
    ));
    out
}

/// The binary entry point (`n` up to 512).
pub fn report() -> String {
    report_up_to(512)
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_confirmed_at_reduced_scale() {
        let r = super::report_up_to(256);
        assert!(r.contains("asymptotic shapes: CONFIRMED"), "{r}");
    }
}
