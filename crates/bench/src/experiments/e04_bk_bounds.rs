//! E4 — Theorems 3–4: Algorithm `Bk` (Table 2).
//!
//! Paper claims, for any ring of `A ∩ Kk` (`k ≥ 2`):
//! * the true leader is elected, every process halts, no deadlocks
//!   (Lemmas 11–12);
//! * time `O(k²n²)` — the proof's constants give ≤ `(k+1)²n²`;
//! * messages `O(k²n²)`;
//! * space **exactly** `2⌈log k⌉ + 3b + 5` bits per process, independent of
//!   `n`;
//! * the number of phases is `X = min{x : LLabels(L)_x contains L.id
//!   (k+1) times} ≤ (k+1)n`.

use crate::measure_bk;
use hre_analysis::reconstruct_phases;
use hre_analysis::Table;
use hre_ring::generate::random_exact_multiplicity;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 4242;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n\n"));
    let mut table = Table::new([
        "n",
        "k",
        "b",
        "phases X",
        "≤ (k+1)n",
        "time",
        "≤ (k+1)²n²",
        "msgs",
        "≤ 4(k+1)²n²",
        "space(b)",
        "= 2⌈log k⌉+3b+5",
        "ok",
    ]);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut all_ok = true;

    // Serial ring generation (stable catalog), parallel measurement via
    // the sweep runner, enumeration-order merge.
    let grid = [(6usize, 2usize), (8, 2), (8, 4), (16, 2), (16, 4), (24, 3), (32, 4), (48, 4)];
    let rings: Vec<_> =
        grid.iter().map(|&(n, k)| (n, k, random_exact_multiplicity(n, k, &mut rng))).collect();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let measured = hre_sim::sweep_map(&rings, threads, |_, (_, k, ring)| {
        (measure_bk(ring, *k), reconstruct_phases(ring, *k).leader_phases)
    });
    for ((n, k, ring), (m, phases)) in rings.iter().zip(measured) {
        let (n, k) = (*n, *k);
        let b = ring.label_bits() as u64;
        let (n64, k64) = (n as u64, k as u64);
        let xb = (k64 + 1) * n64;
        let tb = (k64 + 1) * (k64 + 1) * n64 * n64;
        let mb = 4 * tb;
        let log_k = ((k64 - 1).max(1).ilog2() + 1) as u64;
        let sb = 2 * log_k + 3 * b + 5;
        let ok = phases <= xb && m.time_units <= tb && m.messages <= mb && m.peak_space_bits == sb;
        all_ok &= ok;
        table.row([
            n.to_string(),
            k.to_string(),
            b.to_string(),
            phases.to_string(),
            xb.to_string(),
            m.time_units.to_string(),
            tb.to_string(),
            m.messages.to_string(),
            mb.to_string(),
            m.peak_space_bits.to_string(),
            sb.to_string(),
            if ok { "✓".into() } else { "✗".to_string() },
        ]);
    }
    out.push_str(&table.render());

    // Per-phase message accounting on the Figure 1 ring — the proof's
    // internal claims: O(kn²) for phase 1, O(kn) for each later phase.
    let ring = hre_ring::catalog::figure1_ring();
    let ptable = reconstruct_phases(&ring, 3);
    let mut t2 = Table::new(["phase", "messages received", "bound"]);
    let (n64, k64) = (ring.n() as u64, 3u64);
    let mut phases_ok = true;
    for (i, &m) in ptable.messages_per_phase.iter().enumerate() {
        let bound = if i == 0 { 2 * (k64 + 1) * n64 * n64 } else { 4 * (k64 + 1) * n64 };
        phases_ok &= m <= bound;
        t2.row([
            (i + 1).to_string(),
            m.to_string(),
            format!("≤ {bound} ({})", if i == 0 { "O(kn²)" } else { "O(kn)" }),
        ]);
    }
    out.push_str(&format!(
        "\nPer-phase messages on the Figure 1 ring (proof-internal claims):\n{}",
        t2.render()
    ));
    all_ok &= phases_ok;

    out.push_str(&format!(
        "\nAll sweeps within the Theorem 3–4 envelope, space matching the \
         formula exactly: {}\n",
        if all_ok { "YES" } else { "NO" }
    ));
    out.push_str(
        "\nNote: Bk's space column is constant in n for fixed k and b — the \
         whole point of the trade-off (compare E3's space column).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_bounds_hold() {
        let r = super::report();
        assert!(r.contains("formula exactly: YES"), "{r}");
    }
}
