//! E8 — the related-work comparison axis (§I): what does extra knowledge
//! buy?
//!
//! On `K1` rings (where everything applies) we compare:
//! * **Chang–Roberts** and **Peterson** — classic algorithms that *require*
//!   unique labels;
//! * **OracleN** — Lyndon-word election knowing `n`;
//! * **Ak / Bk** — the paper's algorithms knowing only `k` (= 1, so `Bk`
//!   runs with its minimum legal `k = 2`).
//!
//! The shape to observe: unique labels let CR/Peterson elect in `O(n)`
//! time; the homonym-capable algorithms pay for generality with larger
//! message counts; `Ak`'s costs scale with its `k` parameter even when the
//! ring is actually `K1`.

use hre_analysis::Table;
use hre_baselines::{BoundedN, ChangRoberts, OracleN, Peterson};
use hre_ring::generate::random_k1;
use hre_sim::{run, RoundRobinSched, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 808;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}; all runs on the same K1 rings\n\n"));
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut t = Table::new([
        "n",
        "algorithm",
        "knowledge",
        "messages",
        "wire bits",
        "time",
        "space (bits)",
    ]);
    let mut shape_ok = true;

    for &n in &[8usize, 16, 32, 64] {
        let ring = random_k1(n, &mut rng);
        let mut add = |name: &str, knowledge: &str, m: hre_sim::RunMetrics| {
            t.row([
                n.to_string(),
                name.to_string(),
                knowledge.to_string(),
                m.messages.to_string(),
                m.wire_bits.to_string(),
                m.time_units.to_string(),
                m.peak_space_bits.to_string(),
            ]);
            m
        };
        let cr = run(&ChangRoberts, &ring, &mut RoundRobinSched::default(), RunOptions::default());
        assert!(cr.clean());
        let cr = add("ChangRoberts", "unique labels", cr.metrics);
        let pe = run(&Peterson, &ring, &mut RoundRobinSched::default(), RunOptions::default());
        assert!(pe.clean());
        let pe = add("Peterson", "unique labels", pe.metrics);
        let on =
            run(&OracleN::new(n), &ring, &mut RoundRobinSched::default(), RunOptions::default());
        assert!(on.clean());
        let on = add("OracleN", "n", on.metrics);
        let bn = run(
            &BoundedN::new((n - 1).max(2), 2 * n - 1),
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions::default(),
        );
        assert!(bn.clean());
        add("BoundedN", "m ≤ n ≤ M < 2m", bn.metrics);
        let ak = crate::measure_ak(&ring, 1);
        let ak = add("Ak(k=1)", "k", ak);
        let bk = crate::measure_bk(&ring, 2);
        let bk = add("Bk(k=2)", "k", bk);

        // Shape: Peterson ≤ CR worst-case-ish in messages at larger n;
        // time: CR/Peterson/OracleN are O(n); Bk slowest.
        shape_ok &= on.time_units <= ak.time_units;
        shape_ok &= ak.time_units < bk.time_units;
        shape_ok &= pe.messages <= 4 * (n as u64) * ((n as u64).ilog2() as u64 + 2);
        let _ = cr;
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nShape check (OracleN ≤ Ak ≤ Bk in time; Peterson O(n log n) in \
         messages): {}\n\
         Note: winners differ by design — CR/Peterson elect extremum labels, \
         Ak/Bk/OracleN elect the Lyndon-word process.\n",
        if shape_ok { "CONFIRMED" } else { "NOT CONFIRMED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_confirmed() {
        let r = super::report();
        assert!(r.contains("messages): CONFIRMED"), "{r}");
    }
}
