//! E7 — the abstract's headline: "two algorithms, which achieve the
//! classical trade-off between time and space".
//!
//! Same rings, both algorithms, growing `n` (fixed `k`) and growing `k`
//! (fixed `n`): `Ak` wins time (`Θ(kn)` vs `Bk`'s `Θ(k·X·n)`-ish growth),
//! `Bk` wins space (constant labels vs `Θ(kn)` labels).

use hre_analysis::tradeoff::tradeoff_pair;
use hre_analysis::Table;
use hre_ring::generate::random_exact_multiplicity;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 777;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n"));
    let mut rng = StdRng::seed_from_u64(SEED);

    out.push_str("\nGrowing n (k = 3):\n");
    let mut t1 = Table::new([
        "n",
        "Ak time",
        "Bk time",
        "Bk/Ak time",
        "Ak space(b)",
        "Bk space(b)",
        "Ak/Bk space",
    ]);
    let mut ak_time_prev = 0.0f64;
    for &n in &[9usize, 18, 36, 72] {
        let ring = random_exact_multiplicity(n, 3, &mut rng);
        let [ak, bk] = tradeoff_pair(&ring, 3);
        t1.row([
            n.to_string(),
            ak.time_units.to_string(),
            bk.time_units.to_string(),
            format!("{:.1}x", bk.time_units as f64 / ak.time_units as f64),
            ak.space_bits.to_string(),
            bk.space_bits.to_string(),
            format!("{:.1}x", ak.space_bits as f64 / bk.space_bits as f64),
        ]);
        ak_time_prev = ak.time_units as f64;
    }
    let _ = ak_time_prev;
    out.push_str(&t1.render());

    out.push_str("\nGrowing k (n = 24):\n");
    let mut t2 = Table::new([
        "k",
        "Ak time",
        "Bk time",
        "Bk/Ak time",
        "Ak space(b)",
        "Bk space(b)",
        "Ak/Bk space",
    ]);
    for &k in &[2usize, 3, 4, 6, 8] {
        let ring = random_exact_multiplicity(24, k, &mut rng);
        let [ak, bk] = tradeoff_pair(&ring, k);
        t2.row([
            k.to_string(),
            ak.time_units.to_string(),
            bk.time_units.to_string(),
            format!("{:.1}x", bk.time_units as f64 / ak.time_units as f64),
            ak.space_bits.to_string(),
            bk.space_bits.to_string(),
            format!("{:.1}x", ak.space_bits as f64 / bk.space_bits as f64),
        ]);
    }
    out.push_str(&t2.render());

    // Shape assertions for the summary line.
    let ring_small = random_exact_multiplicity(12, 3, &mut rng);
    let ring_large = random_exact_multiplicity(48, 3, &mut rng);
    let [ak_s, bk_s] = tradeoff_pair(&ring_small, 3);
    let [ak_l, bk_l] = tradeoff_pair(&ring_large, 3);
    let shape_ok = ak_s.time_units <= bk_s.time_units
        && ak_l.time_units <= bk_l.time_units
        && bk_s.space_bits < ak_s.space_bits
        && bk_l.space_bits < ak_l.space_bits
        // Bk's time disadvantage *widens* with n (quadratic vs linear):
        && (bk_l.time_units as f64 / ak_l.time_units as f64)
            > (bk_s.time_units as f64 / ak_s.time_units as f64)
        // Ak's space disadvantage widens with n (linear vs constant):
        && (ak_l.space_bits as f64 / bk_l.space_bits as f64)
            > (ak_s.space_bits as f64 / bk_s.space_bits as f64);
    out.push_str(&format!(
        "\nTrade-off shape (Ak faster everywhere, Bk smaller everywhere, both \
         gaps widening with n): {}\n",
        if shape_ok { "CONFIRMED" } else { "NOT CONFIRMED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tradeoff_confirmed() {
        let r = super::report();
        assert!(r.contains("widening with n): CONFIRMED"), "{r}");
    }
}
