//! E18 — the socket-substrate substitution check: the same process code
//! on the **discrete-event simulator**, on **threads + channels**, and on
//! **real TCP sockets** produces identical elections and identical
//! logical message counts — and the TCP substrate keeps doing so when
//! the wire drops, duplicates, reorders, delays, and resets, because the
//! transport recovers the model's reliable FIFO exactly-once links in
//! software.
//!
//! Leader and total message count are schedule-invariant for `Ak`/`Bk`,
//! so all three substrates must match bit-for-bit; the transport columns
//! show what the recovery cost on the wire.

use hre_analysis::Table;
use hre_core::{Ak, Bk};
use hre_net::{run_tcp, FaultPolicy, NetOptions};
use hre_ring::generate::random_exact_multiplicity;
use hre_runtime::{run_threaded, ThreadedOptions};
use hre_sim::{run, RoundRobinSched, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 18_181;

/// Runs one algorithm on all three substrates; returns whether leader
/// and message count agree bit-for-bit, plus the rendered table row.
fn three_substrates<A>(
    algo: &A,
    ring: &hre_ring::RingLabeling,
    name: &str,
    n: usize,
    k: usize,
) -> (bool, [String; 10])
where
    A: hre_sim::Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as hre_sim::ProcessBehavior>::Msg: hre_net::WireMessage + Clone + std::fmt::Debug,
{
    let sim = run(algo, ring, &mut RoundRobinSched::default(), RunOptions::default());
    let thr = run_threaded(algo, ring, ThreadedOptions::default());
    let tcp = run_tcp(algo, ring, NetOptions::default());
    assert!(sim.clean() && thr.clean() && tcp.clean());
    let agree = sim.leader == thr.leader()
        && sim.leader == tcp.leader()
        && sim.metrics.messages == thr.messages
        && sim.metrics.messages == tcp.messages;
    let w = &tcp.net.total;
    let row = [
        name.to_string(),
        n.to_string(),
        k.to_string(),
        format!("p{}", tcp.leader().unwrap()),
        tcp.messages.to_string(),
        format!("{:.1?}", thr.wall),
        format!("{:.1?}", tcp.wall),
        format!("{}(+{})", w.frames_sent, w.frames_retried),
        w.bytes_on_wire.to_string(),
        w.rtt_mean().map_or("—".into(), |m| format!("{m:.0?}")),
    ];
    (agree, row)
}

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n\n### Clean wire: three substrates, one outcome\n\n"));
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut t = Table::new([
        "algo",
        "n",
        "k",
        "leader",
        "msgs",
        "thr wall",
        "tcp wall",
        "frames(+retry)",
        "bytes",
        "rtt mean",
    ]);
    let mut all_agree = true;

    for &(n, k) in &[(8usize, 2usize), (12, 3), (16, 4)] {
        let ring = random_exact_multiplicity(n, k, &mut rng);
        for bk in [false, true] {
            let (agree, row) = if bk {
                three_substrates(&Bk::new(k), &ring, "Bk", n, k)
            } else {
                three_substrates(&Ak::new(k), &ring, "Ak", n, k)
            };
            all_agree &= agree;
            t.row(row);
        }
    }
    out.push_str(&t.render());

    out.push_str("\n### Hostile wire: the stress fault mix changes nothing but the cost\n\n");
    let mut t = Table::new([
        "algo",
        "leader",
        "msgs",
        "retries",
        "reconnects",
        "dups dropped",
        "faults injected",
        "clean",
    ]);
    let mut recovered = true;
    let ring = random_exact_multiplicity(10, 2, &mut rng);
    let sim = run(&Ak::new(2), &ring, &mut RoundRobinSched::default(), RunOptions::default());
    let sim_bk = run(&Bk::new(2), &ring, &mut RoundRobinSched::default(), RunOptions::default());
    for bk in [false, true] {
        let opts =
            NetOptions { faults: FaultPolicy::stress(), fault_seed: SEED, ..NetOptions::default() };
        let (tcp, ref_leader, ref_msgs) = if bk {
            (run_tcp(&Bk::new(2), &ring, opts), sim_bk.leader, sim_bk.metrics.messages)
        } else {
            (run_tcp(&Ak::new(2), &ring, opts), sim.leader, sim.metrics.messages)
        };
        let ok = tcp.clean() && tcp.leader() == ref_leader && tcp.messages == ref_msgs;
        recovered &= ok;
        let w = &tcp.net.total;
        t.row([
            if bk { "Bk".into() } else { "Ak".to_string() },
            format!("p{}", tcp.leader().unwrap()),
            tcp.messages.to_string(),
            w.frames_retried.to_string(),
            w.reconnects.to_string(),
            w.dup_frames_rx.to_string(),
            w.faults_injected.to_string(),
            if ok { "✓".into() } else { "✗".to_string() },
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&format!(
        "\nSimulator, channel runtime, and TCP runtime agree on every ring: {}\n\
         Recovery over the faulty wire preserved outcome and message count: {}\n",
        if all_agree { "YES" } else { "NO" },
        if recovered { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn substrates_agree_and_recovery_holds() {
        let r = super::report();
        assert!(r.contains("agree on every ring: YES"), "{r}");
        assert!(r.contains("preserved outcome and message count: YES"), "{r}");
    }
}
