//! E11 — the substitution check for the reproduction's substrate: the
//! same process code on **real OS threads + crossbeam channels** produces
//! exactly the outcomes the discrete-event simulator predicts.
//!
//! For each ring we run `Ak` and `Bk` both ways and compare leader and
//! total message count (both are schedule-invariant, so they must match
//! bit-for-bit); wall-clock time is reported for scale.

use hre_analysis::Table;
use hre_core::{Ak, Bk};
use hre_ring::generate::random_exact_multiplicity;
use hre_runtime::{run_threaded, ThreadedOptions};
use hre_sim::{run, RoundRobinSched, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 1_111;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n\n"));
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut t = Table::new([
        "algo",
        "n",
        "k",
        "leader sim",
        "leader thr",
        "msgs sim",
        "msgs thr",
        "agree",
        "thr wall",
    ]);
    let mut all_agree = true;

    for &(n, k) in &[(8usize, 2usize), (16, 4), (32, 4), (64, 8)] {
        let ring = random_exact_multiplicity(n, k, &mut rng);

        let sim = run(&Ak::new(k), &ring, &mut RoundRobinSched::default(), RunOptions::default());
        assert!(sim.clean());
        let thr = run_threaded(&Ak::new(k), &ring, ThreadedOptions::default());
        assert!(thr.clean());
        let agree = sim.leader == thr.leader() && sim.metrics.messages == thr.messages;
        all_agree &= agree;
        t.row([
            "Ak".to_string(),
            n.to_string(),
            k.to_string(),
            format!("p{}", sim.leader.unwrap()),
            format!("p{}", thr.leader().unwrap()),
            sim.metrics.messages.to_string(),
            thr.messages.to_string(),
            if agree { "✓".into() } else { "✗".to_string() },
            format!("{:.1?}", thr.wall),
        ]);

        let sim = run(&Bk::new(k), &ring, &mut RoundRobinSched::default(), RunOptions::default());
        assert!(sim.clean());
        let thr = run_threaded(&Bk::new(k), &ring, ThreadedOptions::default());
        assert!(thr.clean());
        let agree = sim.leader == thr.leader() && sim.metrics.messages == thr.messages;
        all_agree &= agree;
        t.row([
            "Bk".to_string(),
            n.to_string(),
            k.to_string(),
            format!("p{}", sim.leader.unwrap()),
            format!("p{}", thr.leader().unwrap()),
            sim.metrics.messages.to_string(),
            thr.messages.to_string(),
            if agree { "✓".into() } else { "✗".to_string() },
            format!("{:.1?}", thr.wall),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nSimulator and threaded runtime agree on every ring: {}\n",
        if all_agree { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn runtimes_agree() {
        let r = super::report();
        assert!(r.contains("agree on every ring: YES"), "{r}");
    }
}
