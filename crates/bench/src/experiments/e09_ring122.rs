//! E9 — the paper's closing remark (§I): the ring `(1,2,2)`.
//!
//! "There are labeled rings (e.g., a ring of three processes with labels
//! 1, 2, and 2) for which we can solve process-terminating leader
//! election, whereas it cannot be solved in the model of \[4\], \[9\]."
//!
//! We verify: the ring is in `A ∩ K2` (so `Ak`/`Bk` with `k = 2` solve
//! it), it is *not* fully identified (so Chang–Roberts / Peterson
//! misbehave), and we sweep the whole family of 3-rings over two labels to
//! map exactly which are solvable.

use hre_analysis::Table;
use hre_baselines::ChangRoberts;
use hre_core::{Ak, Bk};
use hre_ring::{catalog, classify, enumerate};
use hre_sim::{run, RoundRobinSched, RunOptions};

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    let ring = catalog::ring_122();
    let c = classify(&ring);
    out.push_str(&format!("ring (1,2,2): {c}\n\n"));

    let ak = run(&Ak::new(2), &ring, &mut RoundRobinSched::default(), RunOptions::default());
    let bk = run(&Bk::new(2), &ring, &mut RoundRobinSched::default(), RunOptions::default());
    let cr = run(&ChangRoberts, &ring, &mut RoundRobinSched::default(), RunOptions::default());
    out.push_str(&format!(
        "Ak(k=2): clean={} leader={:?}   Bk(k=2): clean={} leader={:?}   \
         ChangRoberts (needs unique labels): clean={}\n",
        ak.clean(),
        ak.leader,
        bk.clean(),
        bk.leader,
        cr.clean(),
    ));

    // Map the whole n=3 landscape over labels {1,2}.
    out.push_str("\nAll 3-process labelings over {1,2}:\n");
    let mut t = Table::new(["labeling", "asymmetric", "U*", "Ak(k=2) clean", "elects true leader"]);
    let mut solvable = 0;
    for r in enumerate::all_labelings(3, 2) {
        let cls = classify(&r);
        let (clean, correct) = if cls.asymmetric {
            let rep = run(&Ak::new(2), &r, &mut RoundRobinSched::default(), RunOptions::default());
            (rep.clean(), rep.leader == cls.true_leader)
        } else {
            let rep = run(
                &Ak::new(2),
                &r,
                &mut RoundRobinSched::default(),
                RunOptions { max_actions: 50_000, ..Default::default() },
            );
            (rep.clean(), false)
        };
        if clean {
            solvable += 1;
        }
        t.row([
            format!("{r}"),
            cls.asymmetric.to_string(),
            cls.has_unique_label.to_string(),
            clean.to_string(),
            if cls.asymmetric { correct.to_string() } else { "n/a".into() },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nsolvable labelings: {solvable} / 8 — exactly the asymmetric ones \
         (symmetric rings are impossible for any algorithm, and Ak correctly \
         never claims success there).\n\
         The remark holds: (1,2,2) is solved with knowledge of k and \
         orientation only: {}\n",
        if ak.clean() && bk.clean() && ak.leader == Some(0) && bk.leader == Some(0) && !cr.clean() {
            "CONFIRMED"
        } else {
            "NOT CONFIRMED"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn remark_confirmed() {
        let r = super::report();
        assert!(r.contains("orientation only: CONFIRMED"), "{r}");
        assert!(r.contains("solvable labelings: 6 / 8"), "{r}");
    }
}
