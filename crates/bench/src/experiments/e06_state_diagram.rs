//! E6 — Figure 2: `Bk`'s state diagram, checked against thousands of
//! observed transitions.
//!
//! We run `Bk` across rings × schedulers, record every
//! `(state, action, state')` transition, assert the observed set is a
//! subset of Figure 2's edges, and print the transition census (the
//! figure, with measured edge frequencies).

use hre_analysis::state_diagram::{check_figure2_conformance, DiagramReport, ALLOWED_TRANSITIONS};
use hre_analysis::Table;
use hre_ring::{catalog, generate};
use hre_sim::{RandomSched, RoundRobinSched, SyncSched};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 31337;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut merged = DiagramReport::default();
    let mut runs = 0usize;

    // The paper's ring, under many schedulers.
    let fig = catalog::figure1_ring();
    merged.merge(check_figure2_conformance(&fig, 3, &mut SyncSched));
    merged.merge(check_figure2_conformance(&fig, 3, &mut RoundRobinSched::default()));
    runs += 2;
    for seed in 0..20 {
        merged.merge(check_figure2_conformance(&fig, 3, &mut RandomSched::new(seed)));
        runs += 1;
    }
    // Random rings.
    for _ in 0..15 {
        let ring = generate::random_a_inter_kk(10, 3, 4, &mut rng);
        let k = ring.max_multiplicity().max(2);
        merged.merge(check_figure2_conformance(&ring, k, &mut RoundRobinSched::default()));
        runs += 1;
    }

    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}; {runs} clean runs analyzed\n\n"));
    let mut t = Table::new(["from", "action", "to", "times observed"]);
    for ((from, action, to), count) in &merged.counts {
        t.row([from.clone(), action.clone(), to.clone(), count.to_string()]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ndistinct edges observed: {} / {} allowed by Figure 2\n",
        merged.distinct_edges(),
        ALLOWED_TRANSITIONS.len()
    ));
    out.push_str(&format!(
        "transitions outside Figure 2: {} — conformance: {}\n",
        merged.violations.len(),
        if merged.conforms() && merged.distinct_edges() == ALLOWED_TRANSITIONS.len() {
            "YES (and every edge exercised)"
        } else if merged.conforms() {
            "YES"
        } else {
            "NO"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn conforms_with_full_coverage() {
        let r = super::report();
        assert!(r.contains("conformance: YES (and every edge exercised)"), "{r}");
    }
}
