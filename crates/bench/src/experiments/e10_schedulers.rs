//! E10 — model robustness (§II): fair asynchronous executions.
//!
//! The specification quantifies over *every* fair execution. We run both
//! algorithms under the synchronous, round-robin, 100 seeded-random, and 3
//! adversarial schedulers and report: zero specification violations, zero
//! deadlocks, and full confluence (identical leader / messages / time on
//! every schedule).

use hre_analysis::Table;
use hre_core::{Ak, Bk};
use hre_ring::generate;
use hre_sim::{
    run, AdversarialSched, Adversary, RandomSched, RoundRobinSched, RunOptions, Scheduler,
    SyncSched,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 60_601;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut rng = StdRng::seed_from_u64(SEED);
    let ring = generate::random_a_inter_kk(12, 3, 4, &mut rng);
    let k = ring.max_multiplicity().max(2);
    let victim = ring.true_leader().unwrap();

    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}; ring = {ring}; k = {k}\n\n"));

    let mut t =
        Table::new(["algo", "schedules", "clean", "deadlocks", "distinct (leader,msgs,time)"]);
    let mut all_good = true;
    for algo_name in ["Ak", "Bk"] {
        let mut clean = 0usize;
        let mut deadlocks = 0usize;
        let mut outcomes: Vec<(Option<usize>, u64, u64)> = Vec::new();
        let mut total = 0usize;

        let mut scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(SyncSched),
            Box::new(RoundRobinSched::default()),
            Box::new(AdversarialSched { strategy: Adversary::LowestFirst }),
            Box::new(AdversarialSched { strategy: Adversary::HighestFirst }),
            Box::new(AdversarialSched { strategy: Adversary::Starve(victim) }),
        ];
        for seed in 0..100 {
            scheds.push(Box::new(RandomSched::new(seed)));
        }
        for mut sched in scheds {
            total += 1;
            let rep = if algo_name == "Ak" {
                let r = run(&Ak::new(k), &ring, &mut sched, RunOptions::default());
                (r.clean(), r.verdict, r.leader, r.metrics.messages, r.metrics.time_units)
            } else {
                let r = run(&Bk::new(k), &ring, &mut sched, RunOptions::default());
                (r.clean(), r.verdict, r.leader, r.metrics.messages, r.metrics.time_units)
            };
            if rep.0 {
                clean += 1;
            }
            if rep.1 == hre_sim::Verdict::Deadlock {
                deadlocks += 1;
            }
            let key = (rep.2, rep.3, rep.4);
            if !outcomes.contains(&key) {
                outcomes.push(key);
            }
        }
        all_good &= clean == total && deadlocks == 0 && outcomes.len() == 1;
        t.row([
            algo_name.to_string(),
            total.to_string(),
            clean.to_string(),
            deadlocks.to_string(),
            outcomes.len().to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n105/105 schedules clean, 0 deadlocks, 1 distinct outcome per \
         algorithm (confluence): {}\n",
        if all_good { "CONFIRMED" } else { "CHECK TABLE" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn robustness_confirmed() {
        let r = super::report();
        assert!(r.contains("(confluence): CONFIRMED"), "{r}");
    }
}
