//! One module per experiment; each exposes `report() -> String`.

pub mod e01_lower_bound;
pub mod e02_impossibility;
pub mod e03_ak_bounds;
pub mod e04_bk_bounds;
pub mod e05_figure1;
pub mod e06_state_diagram;
pub mod e07_tradeoff;
pub mod e08_baselines;
pub mod e09_ring122;
pub mod e10_schedulers;
pub mod e11_runtime;
pub mod e12_words;
pub mod e13_faults;
pub mod e14_knowledge;
pub mod e15_distribution;
pub mod e16_model_check;
pub mod e17_scale;
pub mod e18_net;
pub mod e19_svc;
pub mod e20_cluster;
pub mod e21_trace;
pub mod e22_perf;
pub mod e23_ctrl;

/// Runs every experiment in order and concatenates the reports — the body
/// of `EXPERIMENTS.md`.
pub fn reproduce_all() -> String {
    let mut out = String::new();
    for (name, f) in all() {
        out.push_str(&format!("\n\n## {name}\n\n"));
        out.push_str(&f());
    }
    out
}

/// A registry entry: experiment title plus its report runner.
pub type Experiment = (&'static str, fn() -> String);

/// The experiment registry: `(title, runner)` in presentation order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("E1 — Lemma 1 / Cor. 2/4: Ω(kn) synchronous lower bound", e01_lower_bound::report),
        ("E2 — Theorem 1 / Cor. 3: impossibility for U* (and A)", e02_impossibility::report),
        ("E3 — Theorem 2: Algorithm Ak (Table 1) bounds", e03_ak_bounds::report),
        ("E4 — Theorems 3–4: Algorithm Bk (Table 2) bounds", e04_bk_bounds::report),
        ("E5 — Figure 1: Bk phase-by-phase on the paper's ring", e05_figure1::report),
        ("E6 — Figure 2: Bk state-diagram conformance", e06_state_diagram::report),
        ("E7 — Abstract: the Ak/Bk time-space trade-off", e07_tradeoff::report),
        ("E8 — §I: baseline comparison on identified rings", e08_baselines::report),
        ("E9 — §I closing remark: the ring (1,2,2)", e09_ring122::report),
        ("E10 — §II model: scheduler robustness / confluence", e10_schedulers::report),
        ("E11 — threaded runtime agreement (substitution check)", e11_runtime::report),
        ("E12 — Lemmas 5–6: word-combinatorics foundations", e12_words::report),
        ("E13 — ablation: the model's link assumptions are necessary", e13_faults::report),
        (
            "E14 — knowledge comparison: bounds on n vs the multiplicity bound k",
            e14_knowledge::report,
        ),
        (
            "E15 — cost distributions: slack of the worst-case bounds on random rings",
            e15_distribution::report,
        ),
        (
            "E16 — exhaustive model checking: safety, deadlock-freedom, confluence",
            e16_model_check::report,
        ),
        ("E17 — scale: asymptotic shapes at n up to 512", e17_scale::report),
        ("E18 — TCP socket runtime agreement and fault recovery", e18_net::report),
        (
            "E19 — election-as-a-service agreement and canonical-rotation cache speedup",
            e19_svc::report,
        ),
        (
            "E20 — cluster scaling by rotation-affinity sharding and kill transparency",
            e20_cluster::report,
        ),
        (
            "E21 — end-to-end tracing: recorder overhead and the failover span tree",
            e21_trace::report,
        ),
        (
            "E22 — engine performance: zero-copy messages, pooled links, parallel sweep",
            e22_perf::report,
        ),
        (
            "E23 — self-hosting control plane: coordinator kill, re-election, fencing",
            e23_ctrl::report,
        ),
    ]
}
