//! E21 — end-to-end request tracing: the flight recorder's overhead on
//! the serving path, and a demonstration trace of a failed-over request.
//!
//! Two claims. First, **tracing is cheap enough to leave on**: the
//! recorder's lock-free fixed-capacity ring buffer adds a handful of
//! atomic writes per request, so the p50 of a bench-svc load with the
//! recorder at its default capacity must sit within 5 % of the same
//! load with tracing off (capacity 0). Both configurations still mint
//! trace ids — the delta isolates *recording*, not id generation.
//!
//! Second, **one trace id yields one connected tree across daemons**: a
//! request forced to fail over (its home backend killed) is traced
//! through the router — hash, breaker check, both attempts as sibling
//! spans with the dead one marked ERR, the failover event — and down
//! through the surviving backend's queue/cache/execute spans to the
//! core election hook, all merged by `GET /trace/<id>` on the router.

use hre_analysis::Table;
use hre_cluster::{start as start_router, ClusterConfig};
use hre_runtime::trace::{is_connected_tree, render_tree, Stage, TraceId, DEFAULT_TRACE_CAP};
use hre_svc::{
    run_load, start as start_svc, tracewire, AlgoId, Client, ElectRequest, LoadOptions, SvcConfig,
};
use std::time::Duration;

/// One load run against a fresh daemon with the given recorder
/// capacity; returns the p50 in µs.
fn p50_with(trace_cap: usize, requests: u64) -> u64 {
    let cfg = SvcConfig {
        workers: 2,
        trace_cap,
        // The slow-request log renders trees to stderr; keep it out of
        // the measurement on both sides.
        slow_threshold: None,
        ..SvcConfig::default()
    };
    let handle = start_svc(cfg).expect("daemon");
    let labels: Vec<u64> = (0..64u64).map(|i| i % 7).collect();
    let base = ElectRequest::new(labels, AlgoId::Ak, None).expect("request");
    let opts = LoadOptions { connections: 4, requests, base, rotate: true };
    let rep = run_load(&handle.addr.to_string(), &opts).expect("load run");
    handle.shutdown();
    rep.percentile_us(50.0).expect("latencies recorded")
}

/// Interleaved best-of-`rounds` p50s: `(off, on)` in µs. Min-of-N damps
/// scheduler noise — extra rounds can only tighten both numbers.
pub fn overhead(requests: u64, rounds: usize) -> (u64, u64) {
    let mut off = u64::MAX;
    let mut on = u64::MAX;
    for _ in 0..rounds.max(1) {
        off = off.min(p50_with(0, requests));
        on = on.min(p50_with(DEFAULT_TRACE_CAP, requests));
    }
    (off, on)
}

/// The demonstration: two backends behind a router, the request's home
/// backend killed, one client-chosen trace id. Returns the merged spans
/// and the rendered tree.
pub fn failover_demo() -> (Vec<hre_runtime::trace::SpanRecord>, String) {
    let backends: Vec<_> = (0..2)
        .map(|_| start_svc(SvcConfig { workers: 2, ..SvcConfig::default() }).expect("backend"))
        .collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.to_string()).collect();
    let router = start_router(ClusterConfig {
        backends: addrs.clone(),
        // Breaker effectively off: the in-request failover path is the
        // one being demonstrated.
        failure_threshold: 1000,
        health_interval: Duration::from_secs(30),
        timeout: Duration::from_millis(800),
        hedge_min: Duration::from_secs(10),
        ..Default::default()
    })
    .expect("router");

    // A ring homed on backend 0, which then dies.
    let labels = (0..64u64)
        .map(|salt| {
            let mut l = vec![1, 3, 1, 3, 2, 2, 1, 2];
            l[0] = salt + 1;
            l
        })
        .find(|l| router.primary_backend(l) == addrs[0])
        .expect("some ring homes on backend 0");
    let mut it = backends.into_iter();
    it.next().expect("victim").shutdown();
    let survivors: Vec<_> = it.collect();

    let trace = TraceId(0x00e2_1000_0000_0001);
    let nums: Vec<String> = labels.iter().map(u64::to_string).collect();
    let body = format!(r#"{{"ring":[{}],"algo":"ak"}}"#, nums.join(","));
    let mut c = Client::connect(&router.addr.to_string(), Duration::from_secs(5)).expect("client");
    let resp = c
        .request_with_headers(
            "POST",
            "/elect",
            &[("x-trace-id", &trace.to_hex())],
            Some(body.as_bytes()),
        )
        .expect("traced elect");
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    let doc = c.get(&format!("/trace/{}", trace.to_hex())).expect("trace fetch");
    assert_eq!(doc.status, 200, "{}", doc.body_text());
    let spans = tracewire::spans_from_doc(&doc.body_text()).expect("trace doc");
    let tree = render_tree(&spans);

    router.shutdown();
    for b in survivors {
        b.shutdown();
    }
    (spans, tree)
}

/// Full-size report (the `EXPERIMENTS.md` entry).
pub fn report() -> String {
    report_sized(false)
}

/// CI-sized report: smaller load, looser acceptance on the noisy box.
pub fn report_quick() -> String {
    report_sized(true)
}

fn report_sized(quick: bool) -> String {
    let (requests, rounds, max_ratio) = if quick { (400, 2, 1.5) } else { (3000, 3, 1.05) };
    let mut out = String::new();
    out.push_str(&format!(
        "### Recorder overhead on the serving path ({requests} requests x {rounds} rounds, \
         best-of p50)\n\nSame daemon, same load (n = 64 ring, algo Ak, rotating), recorder \
         capacity 0 vs {DEFAULT_TRACE_CAP}.\n\n"
    ));
    // Min-of-N is monotone: if the first estimate is over threshold,
    // more rounds can only refine it, so retry before concluding.
    let (mut off, mut on) = overhead(requests, rounds);
    for _ in 0..3 {
        if (on as f64) <= (off as f64) * max_ratio {
            break;
        }
        let (o2, n2) = overhead(requests, 1);
        off = off.min(o2);
        on = on.min(n2);
    }
    let ratio = on as f64 / off.max(1) as f64;
    let mut t = Table::new(["recorder", "p50 µs"]);
    t.row(["off (cap 0)".into(), off.to_string()]);
    t.row([format!("on (cap {DEFAULT_TRACE_CAP})"), on.to_string()]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\np50 overhead: {:+.1}% (acceptance threshold: < {:.0}%{})\n",
        (ratio - 1.0) * 100.0,
        (max_ratio - 1.0) * 100.0,
        if quick { ", quick mode" } else { "" }
    ));
    assert!(
        ratio <= max_ratio,
        "tracing overhead too high: p50 {on} µs traced vs {off} µs untraced"
    );

    out.push_str(
        "\n### One trace id, one tree: a failed-over request end to end\n\n\
         The request's home backend is killed first, so the router's first\n\
         attempt dies on the wire and the failover attempt answers. Both\n\
         attempts are sibling spans under the router's root; the surviving\n\
         backend's spans (queue wait, cache probe, execution, the core\n\
         election hook) hang off the winning attempt via the propagated\n\
         x-trace-id / x-parent-span headers. Merged by GET /trace/<id>:\n\n",
    );
    let (spans, tree) = failover_demo();
    assert!(is_connected_tree(&spans), "spans must form one connected tree:\n{tree}");
    let attempts = spans.iter().filter(|s| s.stage == Stage::Attempt).count();
    let errs = spans.iter().filter(|s| s.stage == Stage::Attempt && s.err).count();
    assert_eq!((attempts, errs), (2, 1), "two sibling attempts, one dead:\n{tree}");
    assert!(spans.iter().any(|s| s.stage == Stage::Election), "core hook span missing:\n{tree}");
    out.push_str("```\n");
    out.push_str(&tree);
    out.push_str("```\n");
    out.push_str(&format!(
        "\n{} spans, {} sources, one connected tree (acceptance: connected, \
         2 sibling attempts, 1 ERR, election span present)\n",
        spans.len(),
        spans.iter().map(|s| s.src.as_str()).collect::<std::collections::BTreeSet<_>>().len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized overhead check: tracing must not blow up the
    /// p50 (the tight 5 % bound is release-build territory; here the
    /// guard is against gross regressions like a lock on the hot path).
    #[test]
    fn tracing_overhead_is_modest_in_debug() {
        let (off, on) = overhead(300, 2);
        assert!(
            (on as f64) <= (off as f64) * 2.0,
            "traced p50 {on} µs vs untraced {off} µs — recorder cost exploded"
        );
    }

    /// The demonstration trace parses, connects, and shows the failover
    /// shape: two sibling attempts (one ERR) and the core's election
    /// span, across both processes.
    #[test]
    fn failover_demo_is_one_connected_tree_with_sibling_attempts() {
        let (spans, tree) = failover_demo();
        assert!(is_connected_tree(&spans), "{tree}");
        let root = spans.iter().find(|s| s.root && s.src == "cluster").expect("router root");
        let attempts: Vec<_> = spans.iter().filter(|s| s.stage == Stage::Attempt).collect();
        assert_eq!(attempts.len(), 2, "{tree}");
        assert!(attempts.iter().all(|a| a.parent == root.id), "siblings under the root: {tree}");
        assert_eq!(attempts.iter().filter(|a| a.err).count(), 1, "{tree}");
        for stage in [Stage::Failover, Stage::QueueWait, Stage::Execute, Stage::Election] {
            assert!(spans.iter().any(|s| s.stage == stage), "missing {stage:?}: {tree}");
        }
    }
}
