//! E20 — horizontal scaling by rotation-affinity sharding, and failure
//! transparency under a backend kill.
//!
//! On this repo's reference hardware (a single core) a cluster cannot
//! scale by CPU parallelism, so E20 measures the scaling axis that
//! remains — and that the router's consistent-hash placement is built
//! for: **aggregate cache capacity**. The workload cycles W distinct
//! canonical rings, every request a fresh rotation (distinct bytes on
//! the wire, one cache entry per ring). One backend with an LRU of
//! capacity C < W thrashes — cyclic access over W keys is LRU's
//! adversarial case, hit rate ≈ 0, every request a full election. Three
//! backends split the W rings ≈ W/3 apiece by canonical-rotation
//! affinity; W/3 < C, so after one warm-up pass every request is a
//! cache hit. Same machine, same total cache configuration per node —
//! the speedup is pure placement.
//!
//! The chaos phase then kills one of the three backends mid-load and
//! requires **zero client-visible failures**: in-flight requests fail
//! over on the transport error, later ones are routed around the corpse
//! once its breaker opens.

use hre_analysis::Table;
use hre_cluster::{
    run_cluster_load, start as start_router, ClusterConfig, ClusterLoadOptions, ClusterLoadReport,
    RouterSummary,
};
use hre_svc::{start as start_svc, AlgoId, ElectRequest, ServerHandle, SvcConfig};
use std::time::Duration;

/// W structurally distinct canonical rings: the heavy-homonymy base
/// `i mod 11` (primitive for the lengths used here), salted in one
/// position so each ring is its own canonical class and cache entry.
fn bases(w: usize, n: u64) -> Vec<ElectRequest> {
    (0..w)
        .map(|j| {
            let mut labels: Vec<u64> = (0..n).map(|i| i % 11).collect();
            labels[0] = 100 + j as u64;
            ElectRequest::new(labels, AlgoId::Ak, None).expect("valid ring")
        })
        .collect()
}

/// Backend config for the capacity experiment: a single-shard LRU so
/// the capacity bound is exact, sized to hold less than the workload.
fn backend_cfg(cache_cap: usize) -> SvcConfig {
    SvcConfig {
        workers: 2,
        cache_cap,
        cache_shards: 1,
        deadline: Duration::from_secs(60),
        ..SvcConfig::default()
    }
}

/// Starts `nodes` backends and a router over them (hedging effectively
/// off: this experiment measures placement, not tail latency).
fn cluster(nodes: usize, cache_cap: usize) -> (Vec<ServerHandle>, hre_cluster::RouterHandle) {
    let backends: Vec<ServerHandle> =
        (0..nodes).map(|_| start_svc(backend_cfg(cache_cap)).expect("backend")).collect();
    let router = start_router(ClusterConfig {
        backends: backends.iter().map(|b| b.addr.to_string()).collect(),
        hedge_min: Duration::from_secs(10),
        health_interval: Duration::from_millis(100),
        timeout: Duration::from_secs(60),
        deadline: Duration::from_secs(60),
        ..Default::default()
    })
    .expect("router");
    (backends, router)
}

/// One load run against an N-node cluster; returns what the clients saw
/// and what the router counted.
pub fn measure(
    nodes: usize,
    cache_cap: usize,
    w: usize,
    n: u64,
    requests: u64,
) -> (ClusterLoadReport, RouterSummary) {
    let (backends, router) = cluster(nodes, cache_cap);
    let opts = ClusterLoadOptions { connections: 4, requests, bases: bases(w, n), rotate: true };
    let report = run_cluster_load(&router.addr.to_string(), &opts).expect("load run");
    let summary = router.shutdown();
    for b in backends {
        b.shutdown();
    }
    (report, summary)
}

/// The chaos run: 3 nodes, kill one mid-load; returns the client view.
pub fn chaos(w: usize, n: u64, requests: u64) -> (ClusterLoadReport, RouterSummary) {
    let (mut backends, router) = cluster(3, 64);
    let addr = router.addr.to_string();
    let work = bases(w, n);
    // Kill a backend that actually owns part of the workload: with random
    // ports the consistent-hash ring occasionally places zero of the W
    // rings on a given node, and killing an idle node is (correctly)
    // invisible without exercising failover.
    let victim_addr = router.primary_backend(&work[0].labels).to_string();
    let victim =
        backends.iter().position(|b| b.addr.to_string() == victim_addr).expect("victim is ours");
    let opts = ClusterLoadOptions { connections: 4, requests, bases: work, rotate: true };
    let load = std::thread::spawn(move || run_cluster_load(&addr, &opts).expect("load run"));
    // Take the backend down mid-flight: trigger on observed progress (an
    // eighth of the requests proxied) rather than a wall-clock sleep,
    // which the optimized election engine finishes ahead of.
    let armed = std::time::Instant::now();
    while router.requests_seen() < requests / 8 && armed.elapsed() < Duration::from_secs(30) {
        std::thread::sleep(Duration::from_micros(200));
    }
    backends.remove(victim).shutdown();
    let report = load.join().expect("load thread");
    let summary = router.shutdown();
    for b in backends {
        b.shutdown();
    }
    (report, summary)
}

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(
        "### Aggregate cache capacity: W = 48 canonical rings, per-node LRU cap 32\n\n\
         Every request is a fresh rotation of one of 48 rings (n = 128, algo Ak).\n\
         Cyclic access over 48 keys against a 32-entry LRU is the adversarial\n\
         pattern — one node thrashes. Three nodes hold ~16 rings each by\n\
         rotation-affinity placement, so the working set fits and the cluster\n\
         serves hits. Single core: the speedup is cache capacity, not CPU.\n\n",
    );

    const W: usize = 48;
    const N: u64 = 128;
    const CAP: usize = 32;
    let (cold, _) = measure(1, CAP, W, N, 192);
    let (warm, warm_sum) = measure(3, CAP, W, N, 384);

    let mut t = Table::new(["nodes", "requests", "hit rate", "req/s", "p50 µs", "p99 µs"]);
    for (nodes, rep) in [("1", &cold), ("3", &warm)] {
        t.row([
            nodes.to_string(),
            (rep.ok + rep.failed).to_string(),
            format!("{:.0}%", rep.hit_rate() * 100.0),
            format!("{:.0}", rep.throughput()),
            rep.percentile_us(50.0).map_or("—".into(), |v| v.to_string()),
            rep.percentile_us(99.0).map_or("—".into(), |v| v.to_string()),
        ]);
    }
    out.push_str(&t.render());
    let speedup = warm.throughput() / cold.throughput();
    out.push_str(&format!(
        "\naggregate throughput, 3 nodes vs 1: {speedup:.1}x \
         (acceptance threshold: >= 2x)\n"
    ));
    let spread: Vec<String> =
        warm_sum.backends.iter().map(|b| format!("{} -> {}", b.addr, b.requests)).collect();
    out.push_str(&format!("placement spread over 3 nodes: {}\n", spread.join(" | ")));

    out.push_str(
        "\n### Chaos: kill one of three backends mid-load\n\n\
         The victim goes down with requests in flight. Transport errors fail\n\
         over to the next ring position; once the breaker opens the corpse is\n\
         routed around up front; the prober's half-open probes keep checking\n\
         for a revival. The client must see none of it.\n\n",
    );
    let (chaos_rep, chaos_sum) = chaos(24, N, 240);
    let mut t = Table::new(["requests", "ok", "failed", "errors", "failovers", "breaker opens"]);
    t.row([
        (chaos_rep.ok + chaos_rep.failed).to_string(),
        chaos_rep.ok.to_string(),
        chaos_rep.failed.to_string(),
        chaos_rep.errors.to_string(),
        chaos_sum.backends.iter().map(|b| b.failovers).sum::<u64>().to_string(),
        chaos_sum.backends.iter().map(|b| b.breaker_opens).sum::<u64>().to_string(),
    ]);
    out.push_str(&t.render());
    assert_eq!(chaos_rep.failed, 0, "a backend kill leaked to a client");
    out.push_str(&format!(
        "\nclient-visible failures during the kill: {} (acceptance threshold: 0)\n",
        chaos_rep.failed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized version of the capacity experiment: 3 nodes
    /// must beat 1 node on the same thrashing workload, via hit rate.
    #[test]
    fn three_nodes_outscale_one_via_cache_capacity() {
        let (cold, _) = measure(1, 16, 24, 96, 72);
        let (warm, _) = measure(3, 16, 24, 96, 144);
        assert!(cold.failed == 0 && warm.failed == 0, "{} / {}", cold.pretty(), warm.pretty());
        assert!(
            warm.hit_rate() > cold.hit_rate() + 0.3,
            "sharding must lift the hit rate: 1-node {:.2} vs 3-node {:.2}",
            cold.hit_rate(),
            warm.hit_rate()
        );
        assert!(
            warm.throughput() > cold.throughput() * 1.2,
            "3 nodes must outscale 1: {:.0} vs {:.0} req/s",
            warm.throughput(),
            cold.throughput()
        );
    }

    /// Debug-build-sized chaos phase: killing a backend mid-load must
    /// be invisible to clients.
    #[test]
    fn backend_kill_is_invisible_to_clients() {
        let (rep, sum) = chaos(8, 64, 384);
        assert_eq!(rep.failed, 0, "{}", rep.pretty());
        assert_eq!(rep.errors, 0, "{}", rep.pretty());
        assert_eq!(rep.ok, 384, "{}", rep.pretty());
        assert!(
            sum.backends.iter().map(|b| b.failovers).sum::<u64>() >= 1,
            "the kill must actually have been routed around: {sum}"
        );
    }
}
