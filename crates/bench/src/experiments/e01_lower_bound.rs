//! E1 — Lemma 1 / Corollaries 2 and 4: the `Ω(kn)` lower bound.
//!
//! Paper claim: any leader-election algorithm for `U* ∩ Kk` (so also for
//! `A ∩ Kk`) takes ≥ `1 + (k−2)n` steps in its synchronous execution on
//! every `K1` ring. We measure `Ak` and `Bk` (both correct for those
//! classes) over an `n × k` grid and display measured steps next to the
//! bound; we also validate the proof's replication property (*) on the
//! `R_{n,k}` construction.

use hre_analysis::lower_bound::{lower_bound_sweep, verify_replication_property};
use hre_analysis::Table;
use hre_ring::generate::random_k1;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xC0FFEE;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED:#x}\n\n"));

    let rows = lower_bound_sweep(&[4, 8, 16, 32], &[2, 3, 4, 6], SEED);
    let mut table =
        Table::new(["algo", "n", "k", "bound 1+(k-2)n", "measured steps", "ratio", "ok"]);
    let mut all_ok = true;
    for r in &rows {
        all_ok &= r.respects_bound && r.clean;
        table.row([
            r.algorithm.clone(),
            r.n.to_string(),
            r.k.to_string(),
            r.bound.to_string(),
            r.measured_steps.to_string(),
            format!("{:.2}", r.measured_steps as f64 / r.bound as f64),
            if r.respects_bound && r.clean { "✓".into() } else { "✗".to_string() },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nAll runs clean and ≥ the Lemma 1 bound: {}\n",
        if all_ok { "YES" } else { "NO" }
    ));

    // Replication property (*) on the adversarial construction.
    let mut rng = StdRng::seed_from_u64(SEED);
    let base = random_k1(4, &mut rng);
    let checked = verify_replication_property(&base, 3);
    out.push_str(&format!(
        "\nProof property (*): on R_(4,3) built from {base}, replica event \
         streams matched the base ring's on {checked} (process, step)-prefix \
         entries — indistinguishability confirmed.\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_confirms_bound() {
        let r = super::report();
        assert!(r.contains("All runs clean and ≥ the Lemma 1 bound: YES"), "{r}");
        assert!(!r.contains("✗"));
    }
}
