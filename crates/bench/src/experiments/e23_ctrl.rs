//! E23 — the self-hosting control plane: kill the coordinator under
//! E20-style load.
//!
//! Three `hre-svc` backends each run a control-plane node; a dynamic
//! router (started with **zero** static backends) runs an observer
//! node whose config callback is its only topology source. The
//! backends gossip a membership view, order it into a labeled
//! unidirectional ring, and elect a coordinator with the unmodified
//! `Ak` engine over real `hre-net` TCP links; the coordinator pushes
//! the epoch-stamped backend list to every member, which is what makes
//! the router routable at all.
//!
//! The chaos phase kills the *coordinator* — data plane and control
//! plane together, the worst single-node loss — mid-load, and gates on:
//!
//! 1. the survivors re-elect (real `Ak`, real TCP, higher epoch)
//!    within the latency budget;
//! 2. **zero client-visible request failures** across the kill;
//! 3. a config push stamped with the dead coordinator's epoch is
//!    rejected (`409`) by the members — fencing, not trust.

use hre_analysis::Table;
use hre_cluster::{
    run_cluster_load, start as start_router, ClusterConfig, ClusterLoadOptions, ClusterLoadReport,
    RouterSummary,
};
use hre_ctrl::testbed::{agreed_config, wait_for_agreement, wait_until};
use hre_ctrl::{start as start_ctrl, ClusterTopology, CtrlConfig, CtrlHandle, Role};
use hre_svc::{start as start_svc, AlgoId, Client, ElectRequest, ServerHandle, SvcConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The latency budget for a full failover: detect the dead coordinator
/// (missed heartbeats), re-run `Ak` over TCP, and converge every
/// survivor on the new epoch's config. Debug builds on a loaded single
/// core stay well inside this.
pub const REELECTION_BUDGET: Duration = Duration::from_secs(10);

/// W structurally distinct canonical rings (same shape as E20).
fn bases(w: usize, n: u64) -> Vec<ElectRequest> {
    (0..w)
        .map(|j| {
            let mut labels: Vec<u64> = (0..n).map(|i| i % 11).collect();
            labels[0] = 100 + j as u64;
            ElectRequest::new(labels, AlgoId::Ak, None).expect("valid ring")
        })
        .collect()
}

/// What the coordinator-kill run produced.
#[derive(Debug)]
pub struct ChurnOutcome {
    /// The client-side view of the load run across the kill.
    pub load: ClusterLoadReport,
    /// The router's drain-time counters.
    pub summary: RouterSummary,
    /// The epoch of the config the coordinator owned before dying.
    pub old_epoch: u64,
    /// The epoch the survivors re-elected at.
    pub new_epoch: u64,
    /// Kill-to-agreement latency: coordinator down to every survivor
    /// (and the router) holding the new config.
    pub reelection: Duration,
    /// HTTP status a stale-epoch config push received after failover.
    pub stale_status: u16,
}

/// One backend: a data-plane daemon plus its control-plane node.
struct Member {
    svc: ServerHandle,
    ctrl: CtrlHandle,
}

fn start_member(seeds: Vec<String>) -> Member {
    let svc = start_svc(SvcConfig {
        workers: 2,
        cache_cap: 64,
        deadline: Duration::from_secs(60),
        ..SvcConfig::default()
    })
    .expect("backend daemon");
    let ctrl = start_ctrl(CtrlConfig {
        role: Role::Backend,
        serve_addr: svc.addr.to_string(),
        seeds,
        ..CtrlConfig::default()
    })
    .expect("backend ctrl node");
    Member { svc, ctrl }
}

/// The full scenario: bootstrap a self-configuring cluster, load it,
/// kill the coordinator (svc + ctrl together), and measure the
/// re-election the survivors run.
pub fn coordinator_kill(w: usize, n: u64, requests: u64) -> ChurnOutcome {
    // --- three backends; the first seeds the other two.
    let first = start_member(Vec::new());
    let seeds = vec![first.ctrl.addr.to_string()];
    let mut members = vec![first, start_member(seeds.clone()), start_member(seeds.clone())];

    // --- a dynamic router: no static backends, config pushes only.
    let router = start_router(ClusterConfig {
        backends: Vec::new(),
        dynamic: true,
        hedge_min: Duration::from_secs(10),
        health_interval: Duration::from_millis(100),
        timeout: Duration::from_secs(60),
        deadline: Duration::from_secs(60),
        ..Default::default()
    })
    .expect("router");
    let ctl = router.controller();
    let on_config = {
        let ctl = ctl.clone();
        Arc::new(move |topo: &ClusterTopology| {
            let _ = ctl.update_backends(topo.epoch, &topo.backends);
        }) as hre_ctrl::ConfigCallback
    };
    let on_death = Arc::new(move |addr: &str| {
        ctl.trip_backend(addr);
    }) as hre_ctrl::DeathCallback;
    let router_ctrl = start_ctrl(CtrlConfig {
        role: Role::Router,
        serve_addr: router.addr.to_string(),
        seeds,
        recorder: Some(router.recorder()),
        on_config: Some(on_config),
        on_death: Some(on_death),
        ..CtrlConfig::default()
    })
    .expect("router ctrl node");

    // --- bootstrap: all four nodes agree, and the router has applied
    // the push (it had no other way to learn its backends).
    let handles: Vec<&CtrlHandle> = members.iter().map(|m| &m.ctrl).chain([&router_ctrl]).collect();
    let config =
        wait_for_agreement(&handles, 3, Duration::from_secs(20)).expect("bootstrap agreement");
    wait_until(Duration::from_secs(5), Duration::from_millis(20), || {
        (router.backends().len() == 3).then_some(())
    })
    .expect("config push reached the router");
    let old_epoch = config.epoch;

    // --- load across the kill.
    let addr = router.addr.to_string();
    let opts = ClusterLoadOptions { connections: 4, requests, bases: bases(w, n), rotate: true };
    let load = std::thread::spawn(move || run_cluster_load(&addr, &opts).expect("load run"));
    let armed = Instant::now();
    while router.requests_seen() < requests / 8 && armed.elapsed() < Duration::from_secs(30) {
        std::thread::sleep(Duration::from_micros(200));
    }

    // --- kill the coordinator: data plane and control plane at once.
    let victim_idx = members
        .iter()
        .position(|m| m.ctrl.member_id() == config.coordinator)
        .expect("coordinator is one of ours");
    let victim = members.remove(victim_idx);
    let killed_at = Instant::now();
    victim.svc.shutdown();
    victim.ctrl.shutdown();

    // --- survivors re-elect at a higher epoch; the router applies it.
    let survivors: Vec<&CtrlHandle> =
        members.iter().map(|m| &m.ctrl).chain([&router_ctrl]).collect();
    let reconfig = wait_until(REELECTION_BUDGET, Duration::from_millis(10), || {
        let c = agreed_config(&survivors)?;
        (c.epoch > old_epoch && c.backends.len() == 2).then_some(c)
    })
    .expect("survivors re-elected within the budget");
    wait_until(Duration::from_secs(5), Duration::from_millis(10), || {
        (router.epoch() == reconfig.epoch).then_some(())
    })
    .expect("re-elected config reached the router");
    let reelection = killed_at.elapsed();

    // --- fencing: replay the dead coordinator's config at its epoch.
    let stale = format!(
        "{{\"epoch\":{},\"coordinator\":{},\"backends\":[\"127.0.0.1:9\"]}}",
        old_epoch, config.coordinator
    );
    let stale_status = Client::connect(&members[0].ctrl.addr.to_string(), Duration::from_secs(2))
        .and_then(|mut c| c.post_json("/ctrl/config", &stale))
        .map(|r| r.status)
        .expect("stale push reaches a survivor");

    let load = load.join().expect("load thread");
    for m in members {
        m.ctrl.shutdown();
        m.svc.shutdown();
    }
    router_ctrl.shutdown();
    let summary = router.shutdown();
    ChurnOutcome { load, summary, old_epoch, new_epoch: reconfig.epoch, reelection, stale_status }
}

/// Runs the experiment and renders its report.
pub fn report() -> String {
    report_sized(24, 128, 320)
}

/// CI-sized variant: a smaller workload through the same scenario and
/// the same three gates.
pub fn report_quick() -> String {
    report_sized(8, 64, 160)
}

fn report_sized(w: usize, n: u64, requests: u64) -> String {
    let mut out = String::new();
    out.push_str(
        "### Coordinator kill under load: the cluster re-elects itself\n\n\
         Three backends + a dynamic router bootstrap through gossip; the\n\
         live backends form a labeled unidirectional ring and the real `Ak`\n\
         engine elects the coordinator over `hre-net` TCP links. The router\n\
         starts with zero static backends — every byte it routes is proof\n\
         the control plane configured it. Mid-load the coordinator is killed\n\
         (daemon and control node together); the survivors detect the death\n\
         by missed heartbeats, re-elect at a higher epoch, and re-push the\n\
         config. Clients must see nothing.\n\n",
    );

    let o = coordinator_kill(w, n, requests);
    let mut t = Table::new([
        "requests",
        "ok",
        "failed",
        "old epoch",
        "new epoch",
        "re-election ms",
        "stale push",
    ]);
    t.row([
        (o.load.ok + o.load.failed).to_string(),
        o.load.ok.to_string(),
        o.load.failed.to_string(),
        o.old_epoch.to_string(),
        o.new_epoch.to_string(),
        o.reelection.as_millis().to_string(),
        format!("HTTP {}", o.stale_status),
    ]);
    out.push_str(&t.render());

    assert_eq!(o.load.failed, 0, "the coordinator kill leaked to a client");
    assert!(o.new_epoch > o.old_epoch, "re-election must advance the epoch");
    assert!(
        o.reelection <= REELECTION_BUDGET,
        "re-election took {:?}, budget {:?}",
        o.reelection,
        REELECTION_BUDGET
    );
    assert_eq!(o.stale_status, 409, "a deposed coordinator's push must be fenced");
    out.push_str(&format!(
        "\nclient-visible failures: {} (threshold 0) | re-election: {} ms \
         (budget {} ms) | stale-epoch push: HTTP {} (must be 409)\n",
        o.load.failed,
        o.reelection.as_millis(),
        REELECTION_BUDGET.as_millis(),
        o.stale_status,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized coordinator kill: all three gates hold.
    #[test]
    fn coordinator_kill_reelects_within_budget_and_fences() {
        let o = coordinator_kill(8, 64, 192);
        assert_eq!(o.load.failed, 0, "{}", o.load.pretty());
        assert!(o.new_epoch > o.old_epoch, "epoch must advance: {o:?}");
        assert!(o.reelection <= REELECTION_BUDGET, "re-election {:?}", o.reelection);
        assert_eq!(o.stale_status, 409, "stale push must be rejected");
    }
}
