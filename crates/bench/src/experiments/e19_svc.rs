//! E19 — the service-substrate substitution check: elections served by
//! the `hre-svc` HTTP daemon are **byte-for-byte identical** to
//! in-process runs (the same `response_json` document `hre elect --json`
//! emits), across algorithms and across every rotation of a ring — and
//! the canonical-rotation result cache turns a 100%-rotation workload
//! (every request a different rotation of one ring) into a single
//! election plus cache hits, quantified as a throughput speedup.
//!
//! The cache is only sound because rotating a ring re-indexes processes
//! without changing the labeled structure: under the daemon's
//! deterministic round-robin scheduler the leader's label word and all
//! complexity metrics are rotation-invariant, and the leader index
//! shifts by exactly the rotation distance. Part 1 checks exactly that,
//! end to end, over HTTP.

use hre_analysis::Table;
use hre_svc::{
    run_election, run_load, start, AlgoId, Client, ElectRequest, LoadOptions, LoadReport,
    SvcConfig, SvcSummary,
};
use std::time::Duration;

/// Ring for the cache-speedup workload: large enough (n = 128) that the
/// election dominates HTTP overhead, with heavy homonymy (11 distinct
/// labels). `128 % 11 != 0` keeps the sequence primitive, hence the
/// ring asymmetric and electable by Ak.
fn rotation_ring() -> Vec<u64> {
    (0..128u64).map(|i| i % 11).collect()
}

/// Serves `req` and also runs it in-process; returns the two response
/// bodies plus the daemon's `X-Cache` verdict.
fn served_vs_inprocess(client: &mut Client, req: &ElectRequest) -> (String, String, String) {
    let resp = client
        .post_json("/elect", &req.to_json().to_string())
        .expect("daemon reachable on loopback");
    let cache = resp.header("x-cache").unwrap_or("—").to_string();
    let local = match run_election(req) {
        Ok(out) => hre_svc::response_json(req, &out),
        Err(why) => hre_svc::error_json(&why),
    };
    (resp.body_text(), local, cache)
}

/// One load run against a fresh daemon with the given cache capacity.
fn measure(cache_cap: usize, requests: u64) -> (LoadReport, SvcSummary) {
    let cfg = SvcConfig {
        workers: 4,
        cache_cap,
        deadline: Duration::from_secs(60),
        ..SvcConfig::default()
    };
    let handle = start(cfg).expect("bind ephemeral port");
    let base = ElectRequest::new(rotation_ring(), AlgoId::Ak, None).expect("valid ring");
    let load = LoadOptions { connections: 4, requests, base, rotate: true };
    let report = run_load(&handle.addr.to_string(), &load).expect("load run");
    (report, handle.shutdown())
}

/// Cached vs uncached throughput on the 100%-rotation workload.
pub fn cache_speedup(uncached_requests: u64, cached_requests: u64) -> (f64, f64, f64) {
    let (cold, _) = measure(0, uncached_requests);
    let (warm, _) = measure(1024, cached_requests);
    (warm.throughput() / cold.throughput(), cold.throughput(), warm.throughput())
}

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str("### Served == in-process: every response byte-identical\n\n");

    let handle = start(SvcConfig { workers: 2, ..SvcConfig::default() }).expect("start daemon");
    let mut client =
        Client::connect(&handle.addr.to_string(), Duration::from_secs(10)).expect("connect");

    let mut t = Table::new(["ring", "algo", "k", "leader", "x-cache", "identical"]);
    let mut all_identical = true;

    // The paper's Figure 1 ring under several rotations (all one cache
    // entry), plus the minimal homonym ring and an identified ring, per
    // algorithm that is correct on them.
    let figure1: Vec<u64> = vec![1, 3, 1, 3, 2, 2, 1, 2];
    let mut cases: Vec<(String, ElectRequest)> = Vec::new();
    for d in [0usize, 3, 5] {
        let mut labels = figure1.clone();
        labels.rotate_left(d);
        let name = format!("fig1<<{d}");
        for algo in [AlgoId::Ak, AlgoId::Bk] {
            cases.push((name.clone(), ElectRequest::new(labels.clone(), algo, None).unwrap()));
        }
    }
    cases.push(("1,2,2".into(), ElectRequest::new(vec![1, 2, 2], AlgoId::Ak, None).unwrap()));
    for algo in [AlgoId::Cr, AlgoId::Peterson, AlgoId::OracleN] {
        cases.push((
            "4,1,3,2,7,5".into(),
            ElectRequest::new(vec![4, 1, 3, 2, 7, 5], algo, None).unwrap(),
        ));
    }

    for (name, req) in &cases {
        let (served, local, cache) = served_vs_inprocess(&mut client, req);
        let identical = served == local;
        all_identical &= identical;
        let leader = hre_svc::Json::parse(&served)
            .ok()
            .and_then(|d| d.get("leader").and_then(hre_svc::Json::as_u64))
            .map_or("—".into(), |l| format!("p{l}"));
        t.row([
            name.clone(),
            req.algo.name().to_string(),
            req.k.to_string(),
            leader,
            cache,
            if identical { "yes".into() } else { "NO".to_string() },
        ]);
    }
    assert!(all_identical, "a served response diverged from the in-process run");
    out.push_str(&t.render());

    let summary = handle.shutdown();
    out.push_str(&format!(
        "\nall {} responses byte-identical to `hre elect --json`: {}\n\
         daemon cache over the case table: {} hits / {} misses \
         (three Figure-1 rotations share one entry per algorithm)\n",
        cases.len(),
        all_identical,
        summary.cache.hits,
        summary.cache.misses,
    ));

    out.push_str(
        "\n### Canonical-rotation cache: 100%-rotation workload, n = 128, algo Ak\n\n\
         Every request is a different rotation of the same ring — distinct bytes on\n\
         the wire, one canonical labeled ring. Uncached, each request is a full\n\
         election; cached, everything after the first is a lookup plus a leader\n\
         re-index.\n\n",
    );
    let (cold, cold_sum) = measure(0, 24);
    let (warm, warm_sum) = measure(1024, 96);
    let mut t = Table::new(["cache", "requests", "hits", "req/s", "p50 µs", "p99 µs"]);
    for (name, rep, sum) in [("off", &cold, &cold_sum), ("1024", &warm, &warm_sum)] {
        t.row([
            name.to_string(),
            (rep.ok + rep.failed).to_string(),
            sum.cache.hits.to_string(),
            format!("{:.0}", rep.throughput()),
            rep.percentile_us(50.0).map_or("—".into(), |v| v.to_string()),
            rep.percentile_us(99.0).map_or("—".into(), |v| v.to_string()),
        ]);
    }
    out.push_str(&t.render());
    let speedup = warm.throughput() / cold.throughput();
    out.push_str(&format!(
        "\ncache speedup on the rotation workload: {speedup:.1}x \
         (acceptance threshold: >= 5x)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_responses_match_in_process_runs() {
        let handle = start(SvcConfig { workers: 2, ..SvcConfig::default() }).expect("start");
        let mut client =
            Client::connect(&handle.addr.to_string(), Duration::from_secs(10)).expect("connect");
        for d in 0..4usize {
            let mut labels = vec![1u64, 3, 1, 3, 2, 2, 1, 2];
            labels.rotate_left(d);
            let req = ElectRequest::new(labels, AlgoId::Bk, None).expect("req");
            let (served, local, _) = served_vs_inprocess(&mut client, &req);
            assert_eq!(served, local, "rotation {d}");
        }
        let summary = handle.shutdown();
        assert_eq!(summary.cache.misses, 1, "four rotations, one canonical election");
        assert_eq!(summary.cache.hits, 3);
        handle_err_case();
    }

    /// Spec-violating elections serve the same error document too.
    fn handle_err_case() {
        let handle = start(SvcConfig::default()).expect("start");
        let mut client =
            Client::connect(&handle.addr.to_string(), Duration::from_secs(10)).expect("connect");
        let req = ElectRequest::new(vec![5, 1, 5, 2], AlgoId::Cr, None).expect("req");
        let (served, local, _) = served_vs_inprocess(&mut client, &req);
        assert_eq!(served, local);
        handle.shutdown();
    }

    #[test]
    fn rotation_workload_cache_speedup_is_at_least_5x() {
        let (speedup, cold, warm) = cache_speedup(12, 60);
        assert!(
            speedup >= 5.0,
            "cache speedup {speedup:.1}x below the 5x acceptance threshold \
             (uncached {cold:.0} req/s, cached {warm:.0} req/s)"
        );
    }
}
