//! E15 — cost *distributions*: how tight are the worst-case bounds in
//! practice?
//!
//! The paper's theorems are worst-case statements. This experiment runs
//! `Ak` and `Bk` over large seeded populations of random rings per
//! `(n, k)` cell and reports the min / mean / max of the measured-to-bound
//! ratios for time and messages. Two shapes to observe:
//!
//! * `Ak`'s time ratio concentrates around `(something)·k/(k+1)…` — its
//!   decision threshold scales with `⌈(2k+1)/M⌉·n` where `M` is the
//!   *actual* max multiplicity (proof of Theorem 2), so rings with
//!   multiplicity exactly `k` finish well under the all-distinct worst
//!   case;
//! * `Bk`'s costs are far below the `(k+1)²n²` envelope on random rings —
//!   most processes deactivate in phase 1, so later phases are cheap.

use crate::{measure_ak, measure_bk, parallel_map};
use hre_analysis::Table;
use hre_ring::generate::random_exact_multiplicity;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 1515;
const SAMPLES: usize = 60;

struct Stats {
    min: f64,
    mean: f64,
    max: f64,
}

fn stats(ratios: &[f64]) -> Stats {
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    Stats { min, mean, max }
}

fn fmt(s: &Stats) -> String {
    format!("{:.2}/{:.2}/{:.2}", s.min, s.mean, s.max)
}

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "seed = {SEED}; {SAMPLES} random rings per cell (exact multiplicity k); \
         ratios are measured/bound as min/mean/max\n\n"
    ));
    let mut t = Table::new([
        "n",
        "k",
        "Ak time ratio",
        "Ak msg ratio",
        "Bk time ratio",
        "Bk msg ratio",
        "within bounds",
    ]);
    let mut all_ok = true;

    for &(n, k) in &[(12usize, 2usize), (12, 4), (24, 3), (36, 3)] {
        let seeds: Vec<u64> = (0..SAMPLES as u64).map(|i| SEED ^ (i * 7919)).collect();
        let measurements = parallel_map(seeds, 8, |&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let ring = random_exact_multiplicity(n, k, &mut rng);
            let ak = measure_ak(&ring, k);
            let bk = measure_bk(&ring, k);
            (ak, bk)
        });

        let (n64, k64) = (n as u64, k as u64);
        let ak_time_bound = ((2 * k64 + 2) * n64) as f64;
        let ak_msg_bound = (n64 * n64 * (2 * k64 + 1) + n64) as f64;
        let bk_time_bound = ((k64 + 1) * (k64 + 1) * n64 * n64) as f64;
        let bk_msg_bound = 4.0 * bk_time_bound;

        let ak_time: Vec<f64> =
            measurements.iter().map(|(a, _)| a.time_units as f64 / ak_time_bound).collect();
        let ak_msg: Vec<f64> =
            measurements.iter().map(|(a, _)| a.messages as f64 / ak_msg_bound).collect();
        let bk_time: Vec<f64> =
            measurements.iter().map(|(_, b)| b.time_units as f64 / bk_time_bound).collect();
        let bk_msg: Vec<f64> =
            measurements.iter().map(|(_, b)| b.messages as f64 / bk_msg_bound).collect();

        let within =
            [&ak_time, &ak_msg, &bk_time, &bk_msg].iter().all(|rs| rs.iter().all(|&r| r <= 1.0));
        all_ok &= within;

        t.row([
            n.to_string(),
            k.to_string(),
            fmt(&stats(&ak_time)),
            fmt(&stats(&ak_msg)),
            fmt(&stats(&bk_time)),
            fmt(&stats(&bk_msg)),
            within.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nEvery sampled run within every bound: {}\n\
         (All ratios ≤ 1 by construction of the theorems; the gap to 1 is \
         the slack of the worst-case analysis on random instances — the K1 \
         family in E3 is what actually approaches the Ak time bound.)\n\
         \nNote the near-degenerate spreads: Ak's decision point is \
         ⌈(2k+1)/M⌉·n, a function of (n, k, M) only — on exact-multiplicity \
         rings its cost does not depend on *where* the labels sit, a \
         structural fact this experiment discovers empirically. Only Bk's \
         costs (via the deactivation order) feel the arrangement, and only \
         slightly.\n",
        if all_ok { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn distributions_within_bounds() {
        let r = super::report();
        assert!(r.contains("within every bound: YES"), "{r}");
    }
}
