//! E2 — Theorem 1 / Corollary 3: no algorithm solves process-terminating
//! leader election for `U*` (hence none for `A ⊇ U*`).
//!
//! The paper's proof is an adversarial construction; we execute it against
//! concrete candidates (`Ak` and `Bk` with various fixed parameters) and
//! report the counterexample each time: the `K1` base ring, the measured
//! `T`, the chosen replication factor, and the synchronous step at which
//! two replicas simultaneously claimed leadership.

use hre_analysis::{demonstrate_impossibility, Table};
use hre_core::{Ak, Bk};
use hre_ring::generate::random_k1;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 1_234_567;

/// Runs the experiment and renders its report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&format!("seed = {SEED}\n\n"));
    let mut table = Table::new([
        "candidate",
        "base n",
        "T (sync steps)",
        "adversary k",
        "|R(n,k)|",
        "2-leaders at step",
        "refuted",
    ]);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut all_refuted = true;

    for n in [3usize, 4, 5] {
        let base = random_k1(n, &mut rng);
        for k0 in [1usize, 2, 3] {
            let cert = demonstrate_impossibility(&Ak::new(k0), &base);
            all_refuted &= cert.refutes();
            table.row([
                format!("Ak(k0={k0})"),
                n.to_string(),
                cert.t_steps.to_string(),
                cert.k.to_string(),
                cert.big.n().to_string(),
                cert.two_leaders_step.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                if cert.refutes() { "✓".into() } else { "✗".to_string() },
            ]);
        }
        let cert = demonstrate_impossibility(&Bk::new(2), &base);
        all_refuted &= cert.refutes();
        table.row([
            "Bk(k0=2)".to_string(),
            n.to_string(),
            cert.t_steps.to_string(),
            cert.k.to_string(),
            cert.big.n().to_string(),
            cert.two_leaders_step.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            if cert.refutes() { "✓".into() } else { "✗".to_string() },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nEvery candidate was refuted on a ring of U*: {}\n\
         (Theorem 1 live; Corollary 3 follows since U* ⊆ A.)\n",
        if all_refuted { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_candidate_refuted() {
        let r = super::report();
        assert!(r.contains("refuted on a ring of U*: YES"), "{r}");
    }
}
