//! Experiment binary; see `hre_bench::experiments::e11_runtime`.
fn main() {
    print!("{}", hre_bench::experiments::e11_runtime::report());
}
