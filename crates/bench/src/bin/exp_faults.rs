//! Experiment binary; see `hre_bench::experiments::e13_faults`.
fn main() {
    print!("{}", hre_bench::experiments::e13_faults::report());
}
