//! Experiment binary; see `hre_bench::experiments::e15_distribution`.
fn main() {
    print!("{}", hre_bench::experiments::e15_distribution::report());
}
