//! Experiment binary; see `hre_bench::experiments::e19_svc`.
fn main() {
    print!("{}", hre_bench::experiments::e19_svc::report());
}
