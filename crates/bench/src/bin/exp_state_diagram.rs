//! Experiment binary; see `hre_bench::experiments::e06_state_diagram`.
fn main() {
    print!("{}", hre_bench::experiments::e06_state_diagram::report());
}
