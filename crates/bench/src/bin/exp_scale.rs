//! Experiment binary; see `hre_bench::experiments::e17_scale`.
fn main() {
    print!("{}", hre_bench::experiments::e17_scale::report());
}
