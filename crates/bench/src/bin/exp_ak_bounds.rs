//! Experiment binary; see `hre_bench::experiments::e03_ak_bounds`.
fn main() {
    print!("{}", hre_bench::experiments::e03_ak_bounds::report());
}
