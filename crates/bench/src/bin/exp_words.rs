//! Experiment binary; see `hre_bench::experiments::e12_words`.
fn main() {
    print!("{}", hre_bench::experiments::e12_words::report());
}
