//! Experiment binary; see `hre_bench::experiments::e05_figure1`.
fn main() {
    print!("{}", hre_bench::experiments::e05_figure1::report());
}
