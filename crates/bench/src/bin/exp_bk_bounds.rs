//! Experiment binary; see `hre_bench::experiments::e04_bk_bounds`.
fn main() {
    print!("{}", hre_bench::experiments::e04_bk_bounds::report());
}
