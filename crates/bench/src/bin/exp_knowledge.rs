//! Experiment binary; see `hre_bench::experiments::e14_knowledge`.
fn main() {
    print!("{}", hre_bench::experiments::e14_knowledge::report());
}
