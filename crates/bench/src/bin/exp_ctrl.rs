//! Experiment binary; see `hre_bench::experiments::e23_ctrl`.
//! `--quick` runs the CI-sized variant (smaller load, same gates).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = if quick {
        hre_bench::experiments::e23_ctrl::report_quick()
    } else {
        hre_bench::experiments::e23_ctrl::report()
    };
    print!("{report}");
}
