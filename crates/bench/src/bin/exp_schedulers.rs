//! Experiment binary; see `hre_bench::experiments::e10_schedulers`.
fn main() {
    print!("{}", hre_bench::experiments::e10_schedulers::report());
}
