//! Experiment binary; see `hre_bench::experiments::e01_lower_bound`.
fn main() {
    print!("{}", hre_bench::experiments::e01_lower_bound::report());
}
