//! Experiment binary; see `hre_bench::experiments::e21_trace`.
//! `--quick` runs the CI-sized variant (smaller load, looser bound).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = if quick {
        hre_bench::experiments::e21_trace::report_quick()
    } else {
        hre_bench::experiments::e21_trace::report()
    };
    print!("{report}");
}
