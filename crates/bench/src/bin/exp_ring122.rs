//! Experiment binary; see `hre_bench::experiments::e09_ring122`.
fn main() {
    print!("{}", hre_bench::experiments::e09_ring122::report());
}
