//! Experiment binary; see `hre_bench::experiments::e20_cluster`.
fn main() {
    print!("{}", hre_bench::experiments::e20_cluster::report());
}
