//! Experiment binary; see `hre_bench::experiments::e22_perf`.
//!
//! Writes the machine-readable result to `BENCH_e22.json` at the repo
//! root and exits non-zero if any gate fails (`--quick` relaxes the
//! speedup gate to the CI threshold of 1.5× and shrinks the workload).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let outcome = hre_bench::experiments::e22_perf::run_e22(quick);
    print!("{}", outcome.report);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e22.json");
    std::fs::write(path, &outcome.json).expect("write BENCH_e22.json");
    eprintln!("wrote {path}");
    if !outcome.ok {
        eprintln!("E22 gate FAILED");
        std::process::exit(1);
    }
}
