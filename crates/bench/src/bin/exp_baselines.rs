//! Experiment binary; see `hre_bench::experiments::e08_baselines`.
fn main() {
    print!("{}", hre_bench::experiments::e08_baselines::report());
}
