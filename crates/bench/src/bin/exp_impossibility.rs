//! Experiment binary; see `hre_bench::experiments::e02_impossibility`.
fn main() {
    print!("{}", hre_bench::experiments::e02_impossibility::report());
}
