//! Experiment binary; see `hre_bench::experiments::e18_net`.
fn main() {
    print!("{}", hre_bench::experiments::e18_net::report());
}
