//! Experiment binary; see `hre_bench::experiments::e07_tradeoff`.
fn main() {
    print!("{}", hre_bench::experiments::e07_tradeoff::report());
}
