//! Experiment binary; see `hre_bench::experiments::e16_model_check`.
fn main() {
    print!("{}", hre_bench::experiments::e16_model_check::report());
}
