//! # hre-bench — the reproduction's experiment harness
//!
//! One module (and one `exp_*` binary) per paper artifact, per the index in
//! `DESIGN.md`. Every experiment function returns the report it prints, so
//! `reproduce_all` can regenerate the complete `EXPERIMENTS.md` appendix in
//! one run, and unit tests can assert on report content.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp_lower_bound` | Lemma 1, Corollaries 2/4 (`Ω(kn)`) |
//! | `exp_impossibility` | Theorem 1, Corollary 3 |
//! | `exp_ak_bounds` | Theorem 2 (Algorithm `Ak`, Table 1) |
//! | `exp_bk_bounds` | Theorems 3–4 (Algorithm `Bk`, Table 2) |
//! | `exp_figure1` | Figure 1 |
//! | `exp_state_diagram` | Figure 2 |
//! | `exp_tradeoff` | the abstract's time/space trade-off |
//! | `exp_baselines` | §I related-work comparison axis |
//! | `exp_ring122` | §I closing remark (ring `1,2,2`) |
//! | `exp_schedulers` | §II model: fairness / asynchrony robustness |
//! | `exp_runtime` | threaded substrate agreement (repro hint) |
//! | `exp_words` | Lemmas 5–6 (word combinatorics) |
//! | `reproduce_all` | everything above, in order |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use hre_core::{Ak, Bk};
use hre_ring::RingLabeling;
use hre_sim::{run, RoundRobinSched, RunMetrics, RunOptions};

/// Applies `f` to every item on a small pool of scoped OS threads and
/// returns the results in input order; panics propagate. A thin wrapper
/// over [`hre_sim::sweep_map`], which work-steals from a shared cursor
/// instead of pre-chunking, so one slow item no longer idles a whole
/// chunk's worth of workers.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1);
    hre_sim::sweep_map(&items, threads, |_, item| f(item))
}

/// Runs `Ak(k)` on `ring` (round-robin), asserting cleanliness; returns the
/// metrics. Shared by experiments and criterion benches.
pub fn measure_ak(ring: &RingLabeling, k: usize) -> RunMetrics {
    let rep = run(&Ak::new(k), ring, &mut RoundRobinSched::default(), RunOptions::default());
    assert!(rep.clean(), "Ak(k={k}) on {ring:?}: {:?}", rep.violations);
    rep.metrics
}

/// Runs `Bk(k)` on `ring` (round-robin), asserting cleanliness; returns the
/// metrics.
pub fn measure_bk(ring: &RingLabeling, k: usize) -> RunMetrics {
    let rep = run(&Bk::new(k), ring, &mut RoundRobinSched::default(), RunOptions::default());
    assert!(rep.clean(), "Bk(k={k}) on {ring:?}: {:?}", rep.violations);
    rep.metrics
}

#[cfg(test)]
mod tests {
    use super::parallel_map;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..103).collect();
        let out = parallel_map(items.clone(), 7, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_map_handles_empty_and_single_thread() {
        assert_eq!(parallel_map(Vec::<u8>::new(), 4, |&x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |&x| x + 1), vec![2, 3, 4]);
    }
}
