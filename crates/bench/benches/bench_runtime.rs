//! Criterion benches of the threaded runtime: wall-clock cost of a full
//! election on real OS threads, vs the discrete-event simulator on the
//! same ring (the simulator wins by a wide margin at these sizes — thread
//! spawn and channel wakeups dominate — which is exactly why the
//! reproduction measures model costs in the simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hre_core::Ak;
use hre_ring::generate::random_exact_multiplicity;
use hre_runtime::{run_threaded, ThreadedOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_threaded_vs_sim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut g = c.benchmark_group("runtime/ak");
    g.sample_size(10); // thread spawning is expensive; keep samples modest
    for n in [8usize, 32] {
        let ring = random_exact_multiplicity(n, 3, &mut rng);
        g.bench_with_input(BenchmarkId::new("threads", n), &ring, |b, ring| {
            b.iter(|| {
                let rep = run_threaded(&Ak::new(3), ring, ThreadedOptions::default());
                assert!(rep.clean());
                rep.messages
            })
        });
        g.bench_with_input(BenchmarkId::new("simulator", n), &ring, |b, ring| {
            b.iter(|| hre_bench::measure_ak(ring, 3).messages)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_threaded_vs_sim);
criterion_main!(benches);
