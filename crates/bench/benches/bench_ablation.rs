//! Ablation bench: the optimized `Ak` (incremental counts + frozen-verdict
//! cache, KMP srp, Booth rotation) against `AkReference`, the literal
//! transcription of Table 1 that recomputes `Leader(σ)` from scratch with
//! naive algorithms on every reception. The differential tests prove the
//! two behaviorally identical; this bench shows what the optimization buys
//! (the gap widens superlinearly with `n` — the naive predicate is
//! `O(m²)`-per-message on `O(kn)`-long strings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hre_core::{Ak, AkReference};
use hre_ring::generate::random_exact_multiplicity;
use hre_sim::{run, RoundRobinSched, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ak_vs_reference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut g = c.benchmark_group("ablation/ak-vs-reference");
    for n in [8usize, 16, 32] {
        let ring = random_exact_multiplicity(n, 3, &mut rng);
        g.bench_with_input(BenchmarkId::new("optimized", n), &ring, |b, ring| {
            b.iter(|| {
                let rep =
                    run(&Ak::new(3), ring, &mut RoundRobinSched::default(), RunOptions::default());
                assert!(rep.clean());
                rep.metrics.messages
            })
        });
        g.bench_with_input(BenchmarkId::new("reference", n), &ring, |b, ring| {
            b.iter(|| {
                let rep = run(
                    &AkReference::new(3),
                    ring,
                    &mut RoundRobinSched::default(),
                    RunOptions::default(),
                );
                assert!(rep.clean());
                rep.metrics.messages
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ak_vs_reference);
criterion_main!(benches);
