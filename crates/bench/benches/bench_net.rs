//! Criterion benches of the TCP socket runtime: wall-clock cost of a
//! full election over real loopback sockets, clean wire vs the stress
//! fault mix, with the threaded channel runtime as the in-process
//! reference. Socket setup (3n threads, n listeners) dominates at these
//! sizes; the interesting relative number is the fault-recovery overhead
//! on the same ring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hre_core::Ak;
use hre_net::{run_tcp, FaultPolicy, NetOptions};
use hre_ring::generate::random_exact_multiplicity;
use hre_runtime::{run_threaded, ThreadedOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tcp_vs_channels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(18);
    let mut g = c.benchmark_group("net/ak");
    g.sample_size(10); // every iteration spawns threads and sockets
    for n in [4usize, 8] {
        let ring = random_exact_multiplicity(n, 2, &mut rng);
        g.bench_with_input(BenchmarkId::new("tcp-clean", n), &ring, |b, ring| {
            b.iter(|| {
                let rep = run_tcp(&Ak::new(2), ring, NetOptions::default());
                assert!(rep.clean());
                rep.net.total.frames_sent
            })
        });
        g.bench_with_input(BenchmarkId::new("tcp-stress-faults", n), &ring, |b, ring| {
            b.iter(|| {
                let rep = run_tcp(
                    &Ak::new(2),
                    ring,
                    NetOptions {
                        faults: FaultPolicy::stress(),
                        fault_seed: 18,
                        ..NetOptions::default()
                    },
                );
                assert!(rep.clean());
                rep.net.total.frames_retried
            })
        });
        g.bench_with_input(BenchmarkId::new("channels", n), &ring, |b, ring| {
            b.iter(|| {
                let rep = run_threaded(&Ak::new(2), ring, ThreadedOptions::default());
                assert!(rep.clean());
                rep.messages
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tcp_vs_channels);
criterion_main!(benches);
