//! Criterion benches for the word-combinatorics substrate: `srp` (KMP vs
//! naive), Booth's least rotation vs naive, Duval, and the `Leader(σ)`
//! predicate evaluated the way `Ak` does.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hre_core::leader_predicate;
use hre_ring::generate::random_exact_multiplicity;
use hre_words::{
    duval_factorization, least_rotation, least_rotation_naive, srp_len, srp_len_naive, Label,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn periodic_seq(n: usize, copies: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
    let mut s = Vec::with_capacity(n * copies);
    for _ in 0..copies {
        s.extend_from_slice(&base);
    }
    s
}

fn bench_srp(c: &mut Criterion) {
    let mut g = c.benchmark_group("words/srp");
    for len in [64usize, 512, 4096] {
        let s = periodic_seq(len / 4, 4, 7);
        g.throughput(Throughput::Elements(s.len() as u64));
        g.bench_with_input(BenchmarkId::new("kmp", len), &s, |b, s| b.iter(|| srp_len(s)));
        if len <= 512 {
            g.bench_with_input(BenchmarkId::new("naive", len), &s, |b, s| {
                b.iter(|| srp_len_naive(s))
            });
        }
    }
    g.finish();
}

fn bench_least_rotation(c: &mut Criterion) {
    let mut g = c.benchmark_group("words/least-rotation");
    let mut rng = StdRng::seed_from_u64(9);
    for len in [64usize, 512, 4096] {
        let s: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::new("booth", len), &s, |b, s| b.iter(|| least_rotation(s)));
        if len <= 512 {
            g.bench_with_input(BenchmarkId::new("naive", len), &s, |b, s| {
                b.iter(|| least_rotation_naive(s))
            });
        }
    }
    g.finish();
}

fn bench_duval(c: &mut Criterion) {
    let mut g = c.benchmark_group("words/duval");
    let mut rng = StdRng::seed_from_u64(13);
    for len in [512usize, 4096] {
        let s: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &s, |b, s| {
            b.iter(|| duval_factorization(s).len())
        });
    }
    g.finish();
}

fn bench_leader_predicate(c: &mut Criterion) {
    // The exact strings an Ak leader examines: LLabels prefixes with 2k+1
    // copies of a label.
    let mut g = c.benchmark_group("words/leader-predicate");
    let mut rng = StdRng::seed_from_u64(21);
    for (n, k) in [(32usize, 3usize), (128, 3), (128, 8)] {
        let ring = random_exact_multiplicity(n, k, &mut rng);
        let m = (2 * k + 1) * n / k + 1;
        let sigma: Vec<Label> = ring.llabels(0, m);
        g.bench_with_input(BenchmarkId::from_parameter(format!("n{n}k{k}")), &sigma, |b, s| {
            b.iter(|| leader_predicate(s, k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_srp, bench_least_rotation, bench_duval, bench_leader_predicate);
criterion_main!(benches);
