//! Criterion benches comparing the baselines with the paper's algorithms
//! on the same `K1` rings (full simulated run per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hre_baselines::{ChangRoberts, OracleN, Peterson};
use hre_ring::generate::random_k1;
use hre_sim::{run, RoundRobinSched, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_baselines_on_k1(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut g = c.benchmark_group("baselines/k1");
    for n in [16usize, 64, 256] {
        let ring = random_k1(n, &mut rng);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("chang-roberts", n), &ring, |b, ring| {
            b.iter(|| {
                let rep = run(
                    &ChangRoberts,
                    ring,
                    &mut RoundRobinSched::default(),
                    RunOptions::default(),
                );
                assert!(rep.clean());
                rep.metrics.messages
            })
        });
        g.bench_with_input(BenchmarkId::new("peterson", n), &ring, |b, ring| {
            b.iter(|| {
                let rep =
                    run(&Peterson, ring, &mut RoundRobinSched::default(), RunOptions::default());
                assert!(rep.clean());
                rep.metrics.messages
            })
        });
        g.bench_with_input(BenchmarkId::new("oracle-n", n), &ring, |b, ring| {
            b.iter(|| {
                let rep = run(
                    &OracleN::new(ring.n()),
                    ring,
                    &mut RoundRobinSched::default(),
                    RunOptions::default(),
                );
                assert!(rep.clean());
                rep.metrics.messages
            })
        });
        g.bench_with_input(BenchmarkId::new("ak-k1", n), &ring, |b, ring| {
            b.iter(|| hre_bench::measure_ak(ring, 1).messages)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_baselines_on_k1);
criterion_main!(benches);
