//! Criterion benches for the paper's algorithms: simulated execution cost
//! of `Ak` and `Bk` across the `n × k` grid (wall-clock of the full
//! discrete-event run; the model-level costs are reported by the `exp_*`
//! binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hre_bench::{measure_ak, measure_bk};
use hre_ring::generate::random_exact_multiplicity;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ak_scaling_n(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("ak/n-scaling(k=3)");
    for n in [16usize, 32, 64, 128] {
        let ring = random_exact_multiplicity(n, 3, &mut rng);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            b.iter(|| measure_ak(ring, 3))
        });
    }
    g.finish();
}

fn bench_ak_scaling_k(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut g = c.benchmark_group("ak/k-scaling(n=32)");
    for k in [2usize, 4, 8, 16] {
        let ring = random_exact_multiplicity(32, k, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(k), &ring, |b, ring| {
            b.iter(|| measure_ak(ring, k))
        });
    }
    g.finish();
}

fn bench_bk_scaling_n(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut g = c.benchmark_group("bk/n-scaling(k=3)");
    for n in [16usize, 32, 64] {
        let ring = random_exact_multiplicity(n, 3, &mut rng);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            b.iter(|| measure_bk(ring, 3))
        });
    }
    g.finish();
}

fn bench_bk_scaling_k(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut g = c.benchmark_group("bk/k-scaling(n=24)");
    for k in [2usize, 4, 8] {
        let ring = random_exact_multiplicity(24, k, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(k), &ring, |b, ring| {
            b.iter(|| measure_bk(ring, k))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ak_scaling_n,
    bench_ak_scaling_k,
    bench_bk_scaling_n,
    bench_bk_scaling_k
);
criterion_main!(benches);
