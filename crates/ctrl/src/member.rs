//! Membership: who is in the cluster, and how the live members become a
//! labeled unidirectional ring the paper's `Ak` can elect over.
//!
//! The membership view is a tiny state-based CRDT: a map from stable
//! node id to [`MemberInfo`], merged pointwise by
//! `(incarnation, status)` — a higher incarnation wins outright, and at
//! equal incarnations `Dead` beats `Alive` (a death declaration is only
//! retractable by the member itself, by rejoining with a bumped
//! incarnation). Merging is commutative, associative, and idempotent,
//! so any gossip order converges every member to the same view — the
//! convergence property the `ctrl_convergence` proptest pins without
//! touching a socket.
//!
//! From a converged view, [`View::ring_plan`] derives the election
//! ring deterministically: live *backend* members sorted by id form the
//! unidirectional ring order, and each gets a label hashed from its id
//! (re-salted until all labels are distinct — distinct labels put the
//! labeling in `K1`, where `Ak(k=1)` is guaranteed correct, and make it
//! asymmetric, so a true leader exists). Routers are deliberately not
//! in the plan: they observe membership and receive config pushes, but
//! are never electable — the coordinator must be killable without
//! taking down the front door.

use hre_ring::RingLabeling;
use hre_svc::json::{self, Json};
use std::collections::BTreeMap;

/// Stable identity of a cluster member, chosen at process start and
/// kept across restarts of the same logical node.
pub type MemberId = u64;

/// What a member contributes to the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Serves elections; a ring position in the control-plane election;
    /// electable as coordinator.
    Backend,
    /// Routes client traffic; observes membership but is never in the
    /// election ring.
    Router,
}

impl Role {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Backend => "backend",
            Role::Router => "router",
        }
    }

    /// Parses [`Role::as_str`]'s output.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "backend" => Some(Role::Backend),
            "router" => Some(Role::Router),
            _ => None,
        }
    }
}

/// Liveness as agreed by gossip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Heartbeating (or not yet declared otherwise).
    Alive,
    /// Declared dead after missed heartbeats. Sticky at this
    /// incarnation; only the member itself can retract it by rejoining
    /// with a higher incarnation.
    Dead,
}

impl Status {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Alive => "alive",
            Status::Dead => "dead",
        }
    }
}

/// One member's record in the view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberInfo {
    /// Stable node id.
    pub id: MemberId,
    /// Backend or router.
    pub role: Role,
    /// Where the member's control-plane HTTP endpoint listens.
    pub ctrl_addr: String,
    /// The data-plane address the member advertises (an `hre-svc`
    /// `/elect` endpoint for backends; informational for routers).
    pub serve_addr: String,
    /// Bumped by the member each time it (re)joins; the merge tiebreak.
    pub incarnation: u64,
    /// Liveness at this incarnation.
    pub status: Status,
}

impl MemberInfo {
    /// Whether `self`'s record should replace `old` under the CRDT
    /// order: higher incarnation wins; at equal incarnations `Dead`
    /// wins (a declaration of death is not un-sayable at the same
    /// incarnation).
    fn supersedes(&self, old: &MemberInfo) -> bool {
        self.incarnation > old.incarnation
            || (self.incarnation == old.incarnation
                && self.status == Status::Dead
                && old.status == Status::Alive)
    }

    /// JSON wire form.
    pub fn to_json(&self) -> Json {
        json::obj(vec![
            ("id", Json::Num(self.id as i128)),
            ("role", Json::Str(self.role.as_str().into())),
            ("ctrl_addr", Json::Str(self.ctrl_addr.clone())),
            ("serve_addr", Json::Str(self.serve_addr.clone())),
            ("incarnation", Json::Num(self.incarnation as i128)),
            ("status", Json::Str(self.status.as_str().into())),
        ])
    }

    /// Parses [`MemberInfo::to_json`]'s output.
    pub fn from_json(v: &Json) -> Result<MemberInfo, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("member record missing {k:?}"));
        Ok(MemberInfo {
            id: field("id")?.as_u64().ok_or("member id must be a u64")?,
            role: field("role")?
                .as_str()
                .and_then(Role::parse)
                .ok_or("member role must be \"backend\" or \"router\"")?,
            ctrl_addr: field("ctrl_addr")?.as_str().ok_or("ctrl_addr must be a string")?.into(),
            serve_addr: field("serve_addr")?.as_str().ok_or("serve_addr must be a string")?.into(),
            incarnation: field("incarnation")?.as_u64().ok_or("incarnation must be a u64")?,
            status: match field("status")?.as_str() {
                Some("alive") => Status::Alive,
                Some("dead") => Status::Dead,
                _ => return Err("member status must be \"alive\" or \"dead\"".into()),
            },
        })
    }
}

/// The membership view: a state-based CRDT over member records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct View {
    members: BTreeMap<MemberId, MemberInfo>,
}

impl View {
    /// An empty view.
    pub fn new() -> View {
        View::default()
    }

    /// Merges one record; returns whether the view changed.
    pub fn observe(&mut self, info: MemberInfo) -> bool {
        match self.members.get(&info.id) {
            Some(old) if !info.supersedes(old) => false,
            Some(old) if *old == info => false,
            _ => {
                self.members.insert(info.id, info);
                true
            }
        }
    }

    /// Merges a whole view (pointwise [`View::observe`]); returns
    /// whether anything changed.
    pub fn merge(&mut self, other: &View) -> bool {
        let mut changed = false;
        for info in other.members.values() {
            changed |= self.observe(info.clone());
        }
        changed
    }

    /// Declares `id` dead at its current incarnation (missed
    /// heartbeats). Returns whether the view changed — false if the
    /// member is unknown or already dead.
    pub fn declare_dead(&mut self, id: MemberId) -> bool {
        match self.members.get_mut(&id) {
            Some(m) if m.status == Status::Alive => {
                m.status = Status::Dead;
                true
            }
            _ => false,
        }
    }

    /// The record for `id`, if known.
    pub fn member(&self, id: MemberId) -> Option<&MemberInfo> {
        self.members.get(&id)
    }

    /// Every record, in id order.
    pub fn members(&self) -> impl Iterator<Item = &MemberInfo> {
        self.members.values()
    }

    /// Every live record, in id order.
    pub fn live(&self) -> impl Iterator<Item = &MemberInfo> {
        self.members.values().filter(|m| m.status == Status::Alive)
    }

    /// Whether `id` is known and alive.
    pub fn is_live(&self, id: MemberId) -> bool {
        self.members.get(&id).is_some_and(|m| m.status == Status::Alive)
    }

    /// The election ring over the live backends, or `None` if there are
    /// none. Deterministic in the view: every converged member computes
    /// the identical plan.
    pub fn ring_plan(&self) -> Option<RingPlan> {
        let order: Vec<MemberId> =
            self.live().filter(|m| m.role == Role::Backend).map(|m| m.id).collect();
        if order.is_empty() {
            return None;
        }
        Some(RingPlan::derive(order))
    }

    /// JSON wire form: `{"members": [...]}`.
    pub fn to_json(&self) -> Json {
        json::obj(vec![(
            "members",
            Json::Arr(self.members.values().map(MemberInfo::to_json).collect()),
        )])
    }

    /// Parses [`View::to_json`]'s output.
    pub fn from_json(v: &Json) -> Result<View, String> {
        let arr =
            v.get("members").and_then(Json::as_arr).ok_or("view must carry a \"members\" array")?;
        let mut view = View::new();
        for m in arr {
            view.observe(MemberInfo::from_json(m)?);
        }
        Ok(view)
    }
}

/// SplitMix64 — the same mixer the hash ring and shard key use; good
/// avalanche behavior from sequential inputs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic election ring: live backend ids in id order, each
/// carrying a derived label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingPlan {
    /// Ring order (successor of position `i` is position `(i+1) % n`).
    pub order: Vec<MemberId>,
    /// `labels[i]` is the label of `order[i]`.
    pub labels: Vec<u64>,
    /// The salt that made the labels distinct (re-derivation check).
    pub salt: u64,
}

impl RingPlan {
    /// Labels every member by hashing its id, bumping the salt until
    /// all labels are distinct. Distinct labels mean multiplicity 1 —
    /// the labeling is in `K1` and asymmetric, so `Ak(k=1)` applies and
    /// a unique true leader exists. Termination: each salt gives n
    /// independent 64-bit draws; a collision among a handful of members
    /// is astronomically rare, and any collision just advances the
    /// salt.
    fn derive(order: Vec<MemberId>) -> RingPlan {
        let mut salt = 0u64;
        loop {
            let labels: Vec<u64> = order.iter().map(|&id| mix(id ^ mix(salt))).collect();
            let mut seen = labels.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() == labels.len() {
                return RingPlan { order, labels, salt };
            }
            salt += 1;
        }
    }

    /// Number of ring positions.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plan is empty (never constructed that way, but the
    /// lint pair to [`RingPlan::len`]).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The position of `id` in the ring, if it is a participant.
    pub fn position(&self, id: MemberId) -> Option<usize> {
        self.order.iter().position(|&m| m == id)
    }

    /// The labeling as the core crates see it. Only valid for plans of
    /// two or more members (the paper assumes `n ≥ 2`); the one-member
    /// ring never reaches the protocol.
    pub fn labeling(&self) -> RingLabeling {
        RingLabeling::from_raw(&self.labels)
    }

    /// The member that `Ak` must elect: the owner of the Lyndon-word
    /// rotation — computed from ring structure alone, which is what
    /// makes election outcomes checkable without running the protocol.
    /// A single live member is the coordinator by definition.
    pub fn expected_coordinator(&self) -> MemberId {
        if self.order.len() == 1 {
            return self.order[0];
        }
        let idx = self
            .labeling()
            .true_leader()
            .expect("distinct labels are asymmetric, so a true leader exists");
        self.order[idx]
    }

    /// Maps an elected label back to the member that owns it.
    pub fn member_with_label(&self, label: u64) -> Option<MemberId> {
        self.labels.iter().position(|&l| l == label).map(|i| self.order[i])
    }

    /// JSON wire form (for `prepare` messages).
    pub fn to_json(&self) -> Json {
        json::obj(vec![
            ("order", json::nums(self.order.iter().copied())),
            ("labels", json::nums(self.labels.iter().copied())),
            ("salt", Json::Num(self.salt as i128)),
        ])
    }

    /// Parses [`RingPlan::to_json`]'s output.
    pub fn from_json(v: &Json) -> Result<RingPlan, String> {
        let nums = |k: &str| -> Result<Vec<u64>, String> {
            v.get(k)
                .and_then(Json::as_arr)
                .ok_or(format!("ring plan missing {k:?}"))?
                .iter()
                .map(|n| n.as_u64().ok_or(format!("{k} entries must be u64")))
                .collect()
        };
        let plan = RingPlan {
            order: nums("order")?,
            labels: nums("labels")?,
            salt: v.get("salt").and_then(Json::as_u64).ok_or("ring plan missing salt")?,
        };
        if plan.order.is_empty() || plan.order.len() != plan.labels.len() {
            return Err("ring plan order/labels must be non-empty and parallel".into());
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(id: MemberId, incarnation: u64, status: Status) -> MemberInfo {
        MemberInfo {
            id,
            role: Role::Backend,
            ctrl_addr: format!("127.0.0.1:{}", 9000 + id),
            serve_addr: format!("127.0.0.1:{}", 8000 + id),
            incarnation,
            status,
        }
    }

    #[test]
    fn merge_is_commutative_and_dead_wins_at_equal_incarnation() {
        let mut a = View::new();
        let mut b = View::new();
        a.observe(member(1, 3, Status::Alive));
        b.observe(member(1, 3, Status::Dead));
        a.observe(member(2, 1, Status::Dead));
        b.observe(member(2, 2, Status::Alive)); // rejoin: higher incarnation
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.member(1).unwrap().status, Status::Dead);
        assert_eq!(ab.member(2).unwrap().status, Status::Alive);
        assert_eq!(ab.member(2).unwrap().incarnation, 2);
    }

    #[test]
    fn merge_is_idempotent_and_view_roundtrips_through_json() {
        let mut v = View::new();
        v.observe(member(7, 1, Status::Alive));
        v.observe(member(3, 4, Status::Dead));
        let mut twice = v.clone();
        assert!(!twice.merge(&v), "self-merge must be a no-op");
        let parsed = View::from_json(&Json::parse(&v.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn ring_plan_orders_live_backends_with_distinct_labels() {
        let mut v = View::new();
        v.observe(member(9, 1, Status::Alive));
        v.observe(member(4, 1, Status::Alive));
        v.observe(member(6, 1, Status::Dead)); // dead: excluded
        v.observe(MemberInfo { role: Role::Router, ..member(1, 1, Status::Alive) }); // router: excluded
        let plan = v.ring_plan().unwrap();
        assert_eq!(plan.order, vec![4, 9]);
        assert_eq!(plan.labels.len(), 2);
        assert_ne!(plan.labels[0], plan.labels[1]);
        let labeling = plan.labeling();
        assert!(labeling.all_distinct() && labeling.is_asymmetric());
        // The expected coordinator is one of the participants, stable
        // across recomputation.
        let c = plan.expected_coordinator();
        assert!(plan.order.contains(&c));
        assert_eq!(v.ring_plan().unwrap().expected_coordinator(), c);
        // Plan JSON roundtrips (prepare messages carry it).
        let parsed = RingPlan::from_json(&Json::parse(&plan.to_json().to_string()).unwrap());
        assert_eq!(parsed.unwrap(), plan);
    }

    #[test]
    fn declare_dead_is_sticky_until_a_rejoin_bumps_incarnation() {
        let mut v = View::new();
        v.observe(member(5, 2, Status::Alive));
        assert!(v.declare_dead(5));
        assert!(!v.declare_dead(5), "already dead");
        // The stale alive record at the same incarnation cannot resurrect.
        assert!(!v.observe(member(5, 2, Status::Alive)));
        assert_eq!(v.member(5).unwrap().status, Status::Dead);
        // The member itself rejoins with a bumped incarnation.
        assert!(v.observe(member(5, 3, Status::Alive)));
        assert!(v.is_live(5));
    }
}
