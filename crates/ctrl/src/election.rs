//! One member's side of a distributed `Ak` election round.
//!
//! This is the point of the whole control plane: the coordinator is not
//! picked by a bully heuristic or a hand-rolled consensus — it is the
//! *paper's* `Ak` engine ([`hre_core::Ak`]), byte-for-byte the process
//! the simulator and the socket runtime execute, driven over real TCP
//! via [`hre_net::PeerLink`] (the same framed, retransmitting,
//! exactly-once FIFO link `run_tcp` uses, here with its two endpoints
//! in different OS processes).
//!
//! A round is fully determined by a [`RingPlan`]: member `order[i]`
//! listens for its predecessor on a listener bound at *prepare* time
//! and dials `order[(i+1) % n]`'s election address at *commit* time.
//! Because the plan's labels are all distinct, the labeling is in `K1`
//! and `Ak(k=1)` elects the unique Lyndon-word owner — which every
//! member can also compute locally from the plan
//! ([`RingPlan::expected_coordinator`]), giving tests and operators an
//! oracle for what the wire protocol must conclude.
//!
//! The single-member ring needs no sockets: the only live backend is
//! the coordinator by definition, and [`run_round`] short-circuits.

use crate::member::{MemberId, RingPlan};
use hre_core::{Ak, AkMsg};
use hre_net::{LinkConfig, LinkMetrics, PeerLink};
use hre_runtime::{drive_node, ThreadOutcome};
use hre_sim::{Algorithm, ProcessBehavior};
use hre_words::Label;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

/// How long a finished member keeps its RX side ACKing after its own
/// drain, so a slower predecessor's retransmissions are not orphaned.
const LINGER: Duration = Duration::from_millis(100);

/// What one member learned from a round.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// The elected coordinator, mapped back from the leader label.
    pub coordinator: MemberId,
    /// Whether *this* member is the coordinator.
    pub is_coordinator: bool,
    /// Logical messages this member sent during the round.
    pub messages_sent: u64,
}

/// Runs this member's `Ak` process for the round described by `plan`.
///
/// `listener` is the election listener bound at prepare time (the
/// predecessor dials it); `successor` is the successor's election
/// address from the commit message. Blocks until the process halts or
/// `idle` passes without a message (a member dying mid-round leaves the
/// survivors timing out, and the initiator retries at a fresh epoch).
pub fn run_round(
    me: MemberId,
    plan: &RingPlan,
    listener: Option<TcpListener>,
    successor: Option<SocketAddr>,
    idle: Duration,
) -> Result<RoundOutcome, String> {
    let pos = plan.position(me).ok_or("this member is not in the ring plan")?;
    if plan.len() == 1 {
        // Alone on the ring: coordinator by definition, no wire needed.
        return Ok(RoundOutcome { coordinator: me, is_coordinator: true, messages_sent: 0 });
    }
    let listener = listener.ok_or("multi-member round needs a bound election listener")?;
    let successor = successor.ok_or("multi-member round needs the successor's address")?;

    let (link, mut transport) = PeerLink::open::<AkMsg>(
        listener,
        successor,
        Arc::new(LinkMetrics::default()),
        Arc::new(LinkMetrics::default()),
        LinkConfig::default(),
        None,
    );

    // Distinct labels ⇒ the plan's labeling is in K1: k = 1 is the
    // tight multiplicity bound, giving Ak its cheapest correct run.
    let mut proc = Ak::new(1).spawn(Label::new(plan.labels[pos]));
    let (outcome, sent) = drive_node(&mut proc, &mut transport, idle);
    // Commit the result *before* tearing the link down; close_graceful
    // keeps ACKing for the linger so a slower neighbor can still drain.
    let election = proc.election();
    drop(transport);
    link.close_graceful(LINGER);

    if outcome != ThreadOutcome::Halted {
        return Err(format!("election round did not halt cleanly: {outcome:?}"));
    }
    let leader_label = election.leader.ok_or("round halted without learning a leader")?.raw();
    let coordinator = plan
        .member_with_label(leader_label)
        .ok_or(format!("elected label {leader_label} is not in the ring plan"))?;
    if election.is_leader && coordinator != me {
        return Err("this member won the election but the plan disagrees".into());
    }
    Ok(RoundOutcome { coordinator, is_coordinator: election.is_leader, messages_sent: sent })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::{MemberInfo, Role, Status, View};

    fn plan_of(ids: &[MemberId]) -> RingPlan {
        let mut v = View::new();
        for &id in ids {
            v.observe(MemberInfo {
                id,
                role: Role::Backend,
                ctrl_addr: String::new(),
                serve_addr: format!("127.0.0.1:{}", 8000 + id),
                incarnation: 1,
                status: Status::Alive,
            });
        }
        v.ring_plan().unwrap()
    }

    #[test]
    fn single_member_round_self_elects_without_sockets() {
        let plan = plan_of(&[42]);
        let out = run_round(42, &plan, None, None, Duration::from_secs(1)).unwrap();
        assert!(out.is_coordinator);
        assert_eq!(out.coordinator, 42);
        assert_eq!(plan.expected_coordinator(), 42);
    }

    /// Three "processes" (threads here; real processes in production —
    /// the sockets don't care) run the full prepare-shaped round:
    /// listeners bound first, then every member drives its own Ak node,
    /// and all three agree with the plan's local oracle.
    #[test]
    fn three_member_round_elects_the_lyndon_owner_over_tcp() {
        let plan = plan_of(&[11, 23, 7]);
        assert_eq!(plan.order, vec![7, 11, 23]);
        let n = plan.len();
        let mut listeners = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(l.local_addr().unwrap());
            listeners.push(l);
        }
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                let plan = plan.clone();
                let succ = addrs[(i + 1) % n];
                let me = plan.order[i];
                std::thread::spawn(move || {
                    run_round(me, &plan, Some(l), Some(succ), Duration::from_secs(5))
                })
            })
            .collect();
        let outcomes: Vec<RoundOutcome> =
            handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        let expect = plan.expected_coordinator();
        assert!(outcomes.iter().all(|o| o.coordinator == expect));
        assert_eq!(outcomes.iter().filter(|o| o.is_coordinator).count(), 1);
        let winner_pos = plan.position(expect).unwrap();
        assert!(outcomes[winner_pos].is_coordinator);
    }
}
