//! Shared helpers for exercising a live control plane — used by the
//! crate's integration tests, experiment E23, the churn bench, and the
//! CI rolling-restart smoke. Nothing here is test-only in the `cfg`
//! sense: chaos harnesses in other crates link it directly.

use crate::node::{ClusterTopology, CtrlHandle};
use std::time::{Duration, Instant};

/// Polls `f` every `poll` until it returns `Some` or `timeout` passes.
pub fn wait_until<T>(
    timeout: Duration,
    poll: Duration,
    mut f: impl FnMut() -> Option<T>,
) -> Option<T> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return Some(v);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(poll);
    }
}

/// The config every handle agrees on, if they all have one and they are
/// identical (same epoch, same coordinator, same backend list).
pub fn agreed_config(handles: &[&CtrlHandle]) -> Option<ClusterTopology> {
    let mut configs = handles.iter().map(|h| h.config());
    let first = configs.next()??;
    for c in configs {
        if c.as_ref() != Some(&first) {
            return None;
        }
    }
    Some(first)
}

/// Blocks until every handle holds the same config with exactly
/// `want_backends` backends; returns it, or an error naming what state
/// the cluster was stuck in.
pub fn wait_for_agreement(
    handles: &[&CtrlHandle],
    want_backends: usize,
    timeout: Duration,
) -> Result<ClusterTopology, String> {
    wait_until(timeout, Duration::from_millis(20), || {
        agreed_config(handles).filter(|c| c.backends.len() == want_backends)
    })
    .ok_or_else(|| {
        let states: Vec<String> = handles
            .iter()
            .map(|h| {
                format!(
                    "id={} epoch={} config={:?}",
                    h.member_id(),
                    h.epoch(),
                    h.config().map(|c| (c.epoch, c.coordinator, c.backends.len()))
                )
            })
            .collect();
        format!("no agreement on a {want_backends}-backend config within {timeout:?}: {states:?}")
    })
}
