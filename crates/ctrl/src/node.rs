//! The control-plane node: one per process, next to the data-plane
//! daemon it represents.
//!
//! Each node owns a small HTTP endpoint (the same hand-rolled HTTP/1.1
//! the data plane uses) and a manager thread that ticks every
//! heartbeat interval. The protocol, end to end:
//!
//! 1. **Join**: a starting node POSTs its own record to a seed's
//!    `/ctrl/join` and merges the returned view.
//! 2. **Gossip**: every tick, each node exchanges its full view with
//!    every live peer (`POST /ctrl/gossip` is a two-way anti-entropy
//!    merge). The view is a CRDT ([`crate::member::View`]), so any
//!    exchange order converges.
//! 3. **Failure detection**: a peer that has not answered gossip for
//!    `failure_timeout` is declared dead — a sticky, incarnation-fenced
//!    mark that gossip then spreads. A node that sees *itself* declared
//!    dead (it was partitioned, not crashed) rejoins by bumping its
//!    incarnation.
//! 4. **Election**: when the live backend set disagrees with the
//!    active config (first boot, join, crash, coordinator death), the
//!    lowest-id live backend initiates: it mints a fresh epoch from the
//!    [`hre_runtime::EpochClock`], sends the deterministic
//!    [`RingPlan`] to every participant (`/ctrl/prepare` — each binds
//!    an election listener and answers its address), then
//!    `/ctrl/commit` starts every member's real `Ak` process over
//!    TCP ([`crate::election::run_round`]).
//! 5. **Config push**: the elected coordinator owns the backend list.
//!    It pushes `{epoch, coordinator, backends}` to every member
//!    (`/ctrl/config`) and keeps re-pushing each `push_interval`, so a
//!    member that missed the original push heals. Pushes are fenced:
//!    an epoch below the accepted one is answered `409` — a deposed
//!    coordinator can shout, but nobody listens.
//!
//! Membership changes and config decisions land in the flight recorder
//! as [`Stage::Membership`] and [`Stage::Reconfigure`] spans, so
//! `GET /trace/recent` on the attached daemon shows re-elections as
//! first-class traced events.

use crate::election::run_round;
use crate::member::{MemberId, MemberInfo, RingPlan, Role, Status, View};
use hre_runtime::trace::{FlightRecorder, SpanAttrs, SpanId, Stage};
use hre_runtime::{EpochClock, DEFAULT_TRACE_CAP};
use hre_svc::http::{HttpConn, ReadOutcome, Request, Response};
use hre_svc::json::{self, Json};
use hre_svc::{error_json, Client, StatusProvider};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Callback invoked whenever a config push is accepted (routers hook
/// [`hre-cluster`'s `update_backends`] here).
pub type ConfigCallback = Arc<dyn Fn(&ClusterTopology) + Send + Sync>;

/// Callback invoked when a live backend is declared dead, with its
/// serve address (routers hook breaker tripping here, so traffic stops
/// flowing into the hole before the config catches up).
pub type DeathCallback = Arc<dyn Fn(&str) + Send + Sync>;

/// The coordinator's product: the epoch-stamped backend list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterTopology {
    /// The election epoch that produced this config.
    pub epoch: u64,
    /// The elected coordinator.
    pub coordinator: MemberId,
    /// Backend serve addresses, in ring-plan order.
    pub backends: Vec<String>,
}

impl ClusterTopology {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("epoch", Json::Num(self.epoch as i128)),
            ("coordinator", Json::Num(self.coordinator as i128)),
            ("backends", Json::Arr(self.backends.iter().cloned().map(Json::Str).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<ClusterTopology, String> {
        Ok(ClusterTopology {
            epoch: v.get("epoch").and_then(Json::as_u64).ok_or("config missing epoch")?,
            coordinator: v
                .get("coordinator")
                .and_then(Json::as_u64)
                .ok_or("config missing coordinator")?,
            backends: v
                .get("backends")
                .and_then(Json::as_arr)
                .ok_or("config missing backends")?
                .iter()
                .map(|b| b.as_str().map(String::from).ok_or("backends must be strings".into()))
                .collect::<Result<_, String>>()?,
        })
    }
}

/// Configuration of one control-plane node.
#[derive(Clone)]
pub struct CtrlConfig {
    /// Stable node id; `None` derives one from `serve_addr` so the same
    /// logical node keeps its identity across restarts.
    pub node_id: Option<u64>,
    /// Backend (electable, in the ring) or router (observer).
    pub role: Role,
    /// Control-plane listen address; port 0 picks an ephemeral port.
    pub ctrl_addr: String,
    /// The data-plane address this member advertises.
    pub serve_addr: String,
    /// Control-plane addresses of existing members to join through
    /// (empty bootstraps a new cluster).
    pub seeds: Vec<String>,
    /// Gossip/heartbeat tick interval.
    pub heartbeat_interval: Duration,
    /// Silence from a peer past this declares it dead.
    pub failure_timeout: Duration,
    /// Idle timeout for the `Ak` driver during a round.
    pub election_idle: Duration,
    /// How often the coordinator re-pushes the active config.
    pub push_interval: Duration,
    /// Flight recorder to record membership/reconfigure spans into
    /// (share the daemon's so `GET /trace/recent` shows re-elections);
    /// `None` creates a private one.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Called on every accepted config push.
    pub on_config: Option<ConfigCallback>,
    /// Called when a live backend is declared dead.
    pub on_death: Option<DeathCallback>,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            node_id: None,
            role: Role::Backend,
            ctrl_addr: "127.0.0.1:0".into(),
            serve_addr: String::new(),
            seeds: Vec::new(),
            heartbeat_interval: Duration::from_millis(75),
            failure_timeout: Duration::from_millis(450),
            election_idle: Duration::from_secs(3),
            push_interval: Duration::from_millis(400),
            recorder: None,
            on_config: None,
            on_death: None,
        }
    }
}

impl std::fmt::Debug for CtrlConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtrlConfig")
            .field("node_id", &self.node_id)
            .field("role", &self.role)
            .field("ctrl_addr", &self.ctrl_addr)
            .field("serve_addr", &self.serve_addr)
            .field("seeds", &self.seeds)
            .finish_non_exhaustive()
    }
}

/// Timeout for one control-plane HTTP exchange (gossip, prepare,
/// commit, config push). Deliberately short: the control plane prefers
/// declaring a peer slow over stalling its own tick.
const CTRL_TIMEOUT: Duration = Duration::from_millis(500);

/// How often blocked loops wake up to check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// A prepared-but-not-committed election round on this member.
struct Pending {
    epoch: u64,
    plan: RingPlan,
    listener: TcpListener,
}

struct Inner {
    cfg: CtrlConfig,
    me: MemberId,
    /// This node's bound control address (what peers dial).
    ctrl_addr: SocketAddr,
    view: Mutex<View>,
    epoch: EpochClock,
    config: Mutex<Option<ClusterTopology>>,
    pending: Mutex<Option<Pending>>,
    round_active: AtomicBool,
    last_seen: Mutex<BTreeMap<MemberId, Instant>>,
    recorder: Arc<FlightRecorder>,
    shutdown: AtomicBool,
    rounds: Mutex<Vec<JoinHandle<()>>>,
}

/// A running control-plane node. Dropping the handle leaks the threads;
/// call [`CtrlHandle::shutdown`] to drain.
pub struct CtrlHandle {
    /// The control-plane address actually bound (resolves port 0).
    pub addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: JoinHandle<()>,
    manager: JoinHandle<()>,
}

/// Derives a stable node id from the advertised serve address (FNV-1a
/// then a SplitMix finalizer), so restarts keep the identity.
pub fn derive_node_id(serve_addr: &str) -> MemberId {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in serve_addr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 31)
}

/// Binds the control endpoint, joins through the seeds, and starts the
/// gossip/election manager.
pub fn start(cfg: CtrlConfig) -> std::io::Result<CtrlHandle> {
    let listener = TcpListener::bind(&cfg.ctrl_addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let me = cfg.node_id.unwrap_or_else(|| derive_node_id(&cfg.serve_addr));
    // Wall-clock incarnation: strictly greater than any incarnation a
    // previous run of this node can have gossiped (assuming the clock
    // does not run backwards across a restart), so a rejoin supersedes
    // stale records without coordination.
    let incarnation = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(1)
        .max(1);

    let mut view = View::new();
    view.observe(MemberInfo {
        id: me,
        role: cfg.role,
        ctrl_addr: addr.to_string(),
        serve_addr: cfg.serve_addr.clone(),
        incarnation,
        status: Status::Alive,
    });

    let recorder = cfg.recorder.clone().unwrap_or_else(|| FlightRecorder::new(DEFAULT_TRACE_CAP));
    let inner = Arc::new(Inner {
        me,
        ctrl_addr: addr,
        view: Mutex::new(view),
        epoch: EpochClock::new(),
        config: Mutex::new(None),
        pending: Mutex::new(None),
        round_active: AtomicBool::new(false),
        last_seen: Mutex::new(BTreeMap::new()),
        recorder,
        shutdown: AtomicBool::new(false),
        rounds: Mutex::new(Vec::new()),
        cfg,
    });

    // Join through the seeds before the manager starts, so the first
    // tick already gossips with a populated view. Seed failures are
    // non-fatal: the seed may simply not be up yet, and later gossip
    // (seeds also learn about us from *our* records spreading) heals.
    for seed in inner.cfg.seeds.clone() {
        let _ = join_via_seed(&inner, &seed);
    }

    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || acceptor_loop(listener, &inner))
    };
    let manager = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || manager_loop(&inner))
    };
    Ok(CtrlHandle { addr, inner, acceptor, manager })
}

impl CtrlHandle {
    /// This node's member id.
    pub fn member_id(&self) -> MemberId {
        self.inner.me
    }

    /// The highest epoch this node has observed.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.current()
    }

    /// The coordinator per the active config, if one has been accepted.
    pub fn coordinator(&self) -> Option<MemberId> {
        self.inner.config.lock().unwrap().as_ref().map(|c| c.coordinator)
    }

    /// Whether this node is the active coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.coordinator() == Some(self.inner.me)
    }

    /// The active config, if one has been accepted.
    pub fn config(&self) -> Option<ClusterTopology> {
        self.inner.config.lock().unwrap().clone()
    }

    /// A snapshot of the membership view.
    pub fn view(&self) -> View {
        self.inner.view.lock().unwrap().clone()
    }

    /// The `/ctrl` status document (same JSON the control endpoint and
    /// the attached daemon's `GET /ctrl` serve).
    pub fn status_json(&self) -> String {
        status_doc(&self.inner).to_string()
    }

    /// A provider for [`hre_svc::SvcConfig::ctrl_status`], so the
    /// data-plane daemon's `GET /ctrl` answers with this node's status.
    pub fn status_provider(&self) -> StatusProvider {
        let inner = Arc::clone(&self.inner);
        StatusProvider::new(move || status_doc(&inner).to_string())
    }

    /// Stops gossiping, joins the manager, the acceptor, and any
    /// election round still in flight.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let _ = self.manager.join();
        let _ = self.acceptor.join();
        for h in self.inner.rounds.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// The `/ctrl` status document.
fn status_doc(inner: &Inner) -> Json {
    let view = inner.view.lock().unwrap().clone();
    let config = inner.config.lock().unwrap().clone();
    let members: Vec<Json> = view.members().map(MemberInfo::to_json).collect();
    let plan = view.ring_plan();
    let ring =
        plan.as_ref().map(|p| json::nums(p.order.iter().copied())).unwrap_or(Json::Arr(Vec::new()));
    let ring_labels = plan
        .as_ref()
        .map(|p| json::nums(p.labels.iter().copied()))
        .unwrap_or(Json::Arr(Vec::new()));
    json::obj(vec![
        ("id", Json::Num(inner.me as i128)),
        ("role", Json::Str(inner.cfg.role.as_str().into())),
        ("epoch", Json::Num(inner.epoch.current() as i128)),
        (
            "coordinator",
            config.as_ref().map(|c| Json::Num(c.coordinator as i128)).unwrap_or(Json::Null),
        ),
        ("is_coordinator", Json::Bool(config.as_ref().is_some_and(|c| c.coordinator == inner.me))),
        ("config_epoch", config.as_ref().map(|c| Json::Num(c.epoch as i128)).unwrap_or(Json::Null)),
        (
            "backends",
            config
                .as_ref()
                .map(|c| Json::Arr(c.backends.iter().cloned().map(Json::Str).collect()))
                .unwrap_or(Json::Arr(Vec::new())),
        ),
        ("ring", ring),
        ("ring_labels", ring_labels),
        ("members", Json::Arr(members)),
    ])
}

/// This node's own record, as currently held in the view.
fn my_record(inner: &Inner) -> MemberInfo {
    inner.view.lock().unwrap().member(inner.me).expect("own record always present").clone()
}

/// POSTs our record to a seed and merges the view it answers with.
fn join_via_seed(inner: &Inner, seed: &str) -> Result<(), String> {
    let body = my_record(inner).to_json().to_string();
    let resp = Client::connect(seed, CTRL_TIMEOUT)
        .and_then(|mut c| c.post_json("/ctrl/join", &body))
        .map_err(|e| format!("seed {seed}: {e}"))?;
    if resp.status != 200 {
        return Err(format!("seed {seed} answered {}", resp.status));
    }
    let doc = Json::parse(&resp.body_text())?;
    absorb_view_doc(inner, &doc)?;
    Ok(())
}

/// Merges an `{epoch, view}` document into our state; records a
/// membership span if the ring-relevant membership changed.
fn absorb_view_doc(inner: &Inner, doc: &Json) -> Result<bool, String> {
    if let Some(e) = doc.get("epoch").and_then(Json::as_u64) {
        inner.epoch.observe(e);
    }
    let remote = View::from_json(doc.get("view").ok_or("missing view")?)?;
    let t0 = Instant::now();
    let (changed, live) = {
        let mut view = inner.view.lock().unwrap();
        let before = view.ring_plan();
        let changed = view.merge(&remote);
        let after = view.ring_plan();
        ensure_first_seen(inner, &view);
        (changed && before != after, after.map(|p| p.len()).unwrap_or(0))
    };
    if changed {
        record_membership(inner, t0, live as u64);
    }
    Ok(changed)
}

/// Seeds `last_seen` for members we just learned about, so a brand-new
/// peer gets a full `failure_timeout` of grace before being declared
/// dead.
fn ensure_first_seen(inner: &Inner, view: &View) {
    let mut seen = inner.last_seen.lock().unwrap();
    let now = Instant::now();
    for m in view.live() {
        seen.entry(m.id).or_insert(now);
    }
}

/// Records a [`Stage::Membership`] root span (`a` = epoch, `b` = live
/// ring size).
fn record_membership(inner: &Inner, t0: Instant, ring: u64) {
    let rec = &inner.recorder;
    let trace = rec.mint_trace();
    let root = rec.next_span_id();
    rec.record_span_with_id(
        root,
        trace,
        SpanId::NONE,
        Stage::Membership,
        t0,
        Instant::now(),
        SpanAttrs { a: inner.epoch.current(), b: ring, root: true, ..Default::default() },
    );
}

/// Accepts or fences a config. The accept rule is `epoch >= accepted`:
/// equality re-admits the live coordinator's periodic refresh, and
/// anything below is a deposed coordinator and is refused. Every
/// decision is a [`Stage::Reconfigure`] span (`a` = offered epoch,
/// `b` = 1 iff accepted).
fn accept_config(inner: &Inner, topo: ClusterTopology) -> Result<(), String> {
    let t0 = Instant::now();
    let result = {
        let mut config = inner.config.lock().unwrap();
        match config.as_ref() {
            Some(cur) if topo.epoch < cur.epoch => Err(format!(
                "stale config push: epoch {} is behind the accepted epoch {}",
                topo.epoch, cur.epoch
            )),
            _ => {
                inner.epoch.observe(topo.epoch);
                let changed = config.as_ref() != Some(&topo);
                *config = Some(topo.clone());
                Ok(changed)
            }
        }
    };
    let rec = &inner.recorder;
    let trace = rec.mint_trace();
    let root = rec.next_span_id();
    rec.record_span_with_id(
        root,
        trace,
        SpanId::NONE,
        Stage::Reconfigure,
        t0,
        Instant::now(),
        SpanAttrs { a: topo.epoch, b: result.is_ok() as u64, err: result.is_err(), root: true },
    );
    match result {
        Ok(changed) => {
            if changed {
                if let Some(cb) = &inner.cfg.on_config {
                    cb(&topo);
                }
            }
            Ok(())
        }
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------

fn acceptor_loop(listener: TcpListener, inner: &Arc<Inner>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !inner.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(inner);
                conns.push(std::thread::spawn(move || connection_loop(stream, &inner)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        if conns.len() > 16 {
            let (done, live): (Vec<_>, Vec<_>) = conns.into_iter().partition(|h| h.is_finished());
            for h in done {
                let _ = h.join();
            }
            conns = live;
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn connection_loop(stream: TcpStream, inner: &Arc<Inner>) {
    let Ok(mut conn) = HttpConn::new(stream, POLL) else { return };
    loop {
        match conn.read_request(Instant::now() + Duration::from_secs(2)) {
            ReadOutcome::IdlePoll => {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(why) => {
                let _ = Response::json(400, error_json(&why)).write_to(conn.stream(), true);
                return;
            }
            ReadOutcome::TooLarge { .. } => {
                let _ = Response::json(413, error_json("control message too large"))
                    .write_to(conn.stream(), true);
                return;
            }
            ReadOutcome::Request(req) => {
                let close = req.wants_close() || inner.shutdown.load(Ordering::Relaxed);
                let resp = route(&req, inner);
                if resp.write_to(conn.stream(), close).is_err() || close {
                    return;
                }
            }
        }
    }
}

fn route(req: &Request, inner: &Arc<Inner>) -> Response {
    let body = String::from_utf8_lossy(&req.body);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/ctrl") => Response::json(200, status_doc(inner).to_string()),
        ("POST", "/ctrl/join") => handle_join(&body, inner),
        ("POST", "/ctrl/gossip") => handle_gossip(&body, inner),
        ("POST", "/ctrl/prepare") => handle_prepare(&body, inner),
        ("POST", "/ctrl/commit") => handle_commit(&body, inner),
        ("POST", "/ctrl/config") => handle_config(&body, inner),
        ("POST", _) | ("GET", _) => Response::json(404, error_json("no such endpoint")),
        _ => Response::json(405, error_json("method not allowed")),
    }
}

/// The `{epoch, view}` document gossip and join answer with.
fn view_doc(inner: &Inner) -> Json {
    json::obj(vec![
        ("epoch", Json::Num(inner.epoch.current() as i128)),
        ("view", inner.view.lock().unwrap().to_json()),
    ])
}

fn handle_join(body: &str, inner: &Arc<Inner>) -> Response {
    let parse = Json::parse(body).and_then(|v| MemberInfo::from_json(&v));
    match parse {
        Ok(info) => {
            let t0 = Instant::now();
            let (changed, live) = {
                let mut view = inner.view.lock().unwrap();
                let before = view.ring_plan();
                let changed = view.observe(info);
                let after = view.ring_plan();
                ensure_first_seen(inner, &view);
                (changed && before != after, after.map(|p| p.len()).unwrap_or(0))
            };
            if changed {
                record_membership(inner, t0, live as u64);
            }
            Response::json(200, view_doc(inner).to_string())
        }
        Err(why) => Response::json(400, error_json(&why)),
    }
}

fn handle_gossip(body: &str, inner: &Arc<Inner>) -> Response {
    let outcome = Json::parse(body).and_then(|doc| {
        if let Some(from) = doc.get("from").and_then(Json::as_u64) {
            inner.last_seen.lock().unwrap().insert(from, Instant::now());
        }
        absorb_view_doc(inner, &doc)
    });
    match outcome {
        Ok(_) => Response::json(200, view_doc(inner).to_string()),
        Err(why) => Response::json(400, error_json(&why)),
    }
}

/// Prepare: fence the epoch, bind this member's election listener, and
/// answer its address. A later prepare at a higher epoch supersedes a
/// pending one (its listener is simply dropped).
fn handle_prepare(body: &str, inner: &Arc<Inner>) -> Response {
    let parsed = Json::parse(body).and_then(|doc| {
        let epoch = doc.get("epoch").and_then(Json::as_u64).ok_or("prepare missing epoch")?;
        let plan = RingPlan::from_json(doc.get("plan").ok_or("prepare missing plan")?)?;
        Ok((epoch, plan))
    });
    let (epoch, plan) = match parsed {
        Ok(v) => v,
        Err(why) => return Response::json(400, error_json(&why)),
    };
    match prepare_local(inner, epoch, plan) {
        Ok(addr) => Response::json(
            200,
            json::obj(vec![("election_addr", Json::Str(addr.to_string()))]).to_string(),
        ),
        Err(why) => Response::json(409, error_json(&why)),
    }
}

fn prepare_local(inner: &Arc<Inner>, epoch: u64, plan: RingPlan) -> Result<SocketAddr, String> {
    if plan.position(inner.me).is_none() {
        return Err("this member is not in the proposed ring".into());
    }
    if let Some(cfg) = inner.config.lock().unwrap().as_ref() {
        if epoch <= cfg.epoch {
            return Err(format!(
                "stale prepare: epoch {epoch} does not exceed the accepted epoch {}",
                cfg.epoch
            ));
        }
    }
    let mut pending = inner.pending.lock().unwrap();
    if let Some(p) = pending.as_ref() {
        if p.epoch >= epoch {
            return Err(format!("round at epoch {} already prepared", p.epoch));
        }
    }
    // Bind on the same interface the control endpoint uses.
    let listener = TcpListener::bind((inner.ctrl_addr.ip(), 0))
        .map_err(|e| format!("cannot bind election listener: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    inner.epoch.observe(epoch);
    *pending = Some(Pending { epoch, plan, listener });
    Ok(addr)
}

/// Commit: start the prepared round. The body carries every member's
/// election address in plan order; each member dials its successor.
fn handle_commit(body: &str, inner: &Arc<Inner>) -> Response {
    let parsed = Json::parse(body).and_then(|doc| {
        let epoch = doc.get("epoch").and_then(Json::as_u64).ok_or("commit missing epoch")?;
        let addrs: Vec<String> = doc
            .get("addrs")
            .and_then(Json::as_arr)
            .ok_or("commit missing addrs")?
            .iter()
            .map(|a| a.as_str().map(String::from).ok_or("addrs must be strings".into()))
            .collect::<Result<_, String>>()?;
        Ok((epoch, addrs))
    });
    let (epoch, addrs) = match parsed {
        Ok(v) => v,
        Err(why) => return Response::json(400, error_json(&why)),
    };
    match commit_local(inner, epoch, &addrs) {
        Ok(()) => Response::json(200, json::obj(vec![("ok", Json::Bool(true))]).to_string()),
        Err(why) => Response::json(409, error_json(&why)),
    }
}

fn commit_local(inner: &Arc<Inner>, epoch: u64, addrs: &[String]) -> Result<(), String> {
    let pending = {
        let mut slot = inner.pending.lock().unwrap();
        match slot.as_ref() {
            Some(p) if p.epoch == epoch => slot.take().unwrap(),
            Some(p) => return Err(format!("prepared epoch {} ≠ committed epoch {epoch}", p.epoch)),
            None => return Err("no prepared round".into()),
        }
    };
    if addrs.len() != pending.plan.len() {
        return Err("commit addrs must match the plan length".into());
    }
    let pos = pending.plan.position(inner.me).ok_or("not in the committed ring")?;
    let successor: SocketAddr = addrs[(pos + 1) % addrs.len()]
        .parse()
        .map_err(|e| format!("bad successor address: {e}"))?;
    let me = inner.me;
    let idle = inner.cfg.election_idle;
    let inner2 = Arc::clone(inner);
    inner.round_active.store(true, Ordering::SeqCst);
    let handle = std::thread::spawn(move || {
        let t0 = Instant::now();
        let outcome = run_round(me, &pending.plan, Some(pending.listener), Some(successor), idle);
        inner2.round_active.store(false, Ordering::SeqCst);
        match outcome {
            Ok(out) => {
                record_membership(&inner2, t0, pending.plan.len() as u64);
                if out.is_coordinator {
                    let topo = ClusterTopology {
                        epoch,
                        coordinator: me,
                        backends: backends_of(&inner2, &pending.plan),
                    };
                    push_config(&inner2, &topo);
                }
            }
            Err(why) => {
                eprintln!("ctrl[{me}]: election round at epoch {epoch} failed: {why}");
            }
        }
    });
    inner.rounds.lock().unwrap().push(handle);
    Ok(())
}

/// The serve addresses of the plan's members, in plan order.
fn backends_of(inner: &Inner, plan: &RingPlan) -> Vec<String> {
    let view = inner.view.lock().unwrap();
    plan.order.iter().filter_map(|id| view.member(*id).map(|m| m.serve_addr.clone())).collect()
}

/// Applies a config locally and pushes it to every other known-live
/// member (routers included — they are exactly who need it most).
fn push_config(inner: &Arc<Inner>, topo: &ClusterTopology) {
    if let Err(why) = accept_config(inner, topo.clone()) {
        eprintln!("ctrl[{}]: own config rejected locally: {why}", inner.me);
        return;
    }
    let peers: Vec<(MemberId, String)> = {
        let view = inner.view.lock().unwrap();
        view.live().filter(|m| m.id != inner.me).map(|m| (m.id, m.ctrl_addr.clone())).collect()
    };
    let body = topo.to_json().to_string();
    for (_id, addr) in peers {
        let _ = Client::connect(&addr, CTRL_TIMEOUT)
            .and_then(|mut c| c.post_json("/ctrl/config", &body));
    }
}

fn handle_config(body: &str, inner: &Arc<Inner>) -> Response {
    let parsed = Json::parse(body).and_then(|v| ClusterTopology::from_json(&v));
    match parsed {
        Ok(topo) => {
            let epoch = topo.epoch;
            match accept_config(inner, topo) {
                Ok(()) => Response::json(
                    200,
                    json::obj(vec![("ok", Json::Bool(true)), ("epoch", Json::Num(epoch as i128))])
                        .to_string(),
                ),
                Err(why) => Response::json(409, error_json(&why)),
            }
        }
        Err(why) => Response::json(400, error_json(&why)),
    }
}

// ---------------------------------------------------------------------
// The manager: heartbeats, failure detection, election triggering
// ---------------------------------------------------------------------

fn manager_loop(inner: &Arc<Inner>) {
    let mut last_push = Instant::now();
    let mut last_attempt: Option<Instant> = None;
    while !inner.shutdown.load(Ordering::Relaxed) {
        gossip_tick(inner);
        detect_failures(inner);
        resurrect_if_slandered(inner);
        coordinator_tick(inner, &mut last_push);
        election_tick(inner, &mut last_attempt);

        let mut slept = Duration::ZERO;
        while slept < inner.cfg.heartbeat_interval {
            if inner.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let step = POLL.min(inner.cfg.heartbeat_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// Exchanges views with every live peer. Success refreshes the peer's
/// `last_seen`; the merged replies spread membership both ways.
fn gossip_tick(inner: &Arc<Inner>) {
    let peers: Vec<(MemberId, String)> = {
        let view = inner.view.lock().unwrap();
        view.live().filter(|m| m.id != inner.me).map(|m| (m.id, m.ctrl_addr.clone())).collect()
    };
    if peers.is_empty() {
        return;
    }
    let body = json::obj(vec![
        ("from", Json::Num(inner.me as i128)),
        ("epoch", Json::Num(inner.epoch.current() as i128)),
        ("view", inner.view.lock().unwrap().to_json()),
    ])
    .to_string();
    for (id, addr) in peers {
        let resp = Client::connect(&addr, CTRL_TIMEOUT)
            .and_then(|mut c| c.post_json("/ctrl/gossip", &body));
        if let Ok(resp) = resp {
            if resp.status == 200 {
                inner.last_seen.lock().unwrap().insert(id, Instant::now());
                if let Ok(doc) = Json::parse(&resp.body_text()) {
                    let _ = absorb_view_doc(inner, &doc);
                }
            }
        }
    }
}

/// Declares peers silent past `failure_timeout` dead, fires the death
/// callback for backends, and records the membership change.
fn detect_failures(inner: &Arc<Inner>) {
    let now = Instant::now();
    let stale: Vec<MemberId> = {
        let seen = inner.last_seen.lock().unwrap();
        let view = inner.view.lock().unwrap();
        view.live()
            .filter(|m| m.id != inner.me)
            .filter(|m| {
                seen.get(&m.id)
                    .map(|t| now.duration_since(*t) > inner.cfg.failure_timeout)
                    .unwrap_or(false)
            })
            .map(|m| m.id)
            .collect()
    };
    for id in stale {
        let t0 = Instant::now();
        let (declared, dead_serve, live) = {
            let mut view = inner.view.lock().unwrap();
            let serve = view.member(id).map(|m| (m.role, m.serve_addr.clone()));
            let declared = view.declare_dead(id);
            let live = view.ring_plan().map(|p| p.len()).unwrap_or(0);
            (declared, serve, live)
        };
        if declared {
            record_membership(inner, t0, live as u64);
            if let Some((Role::Backend, serve_addr)) = dead_serve {
                if let Some(cb) = &inner.cfg.on_death {
                    cb(&serve_addr);
                }
            }
        }
    }
}

/// If gossip says *we* are dead (a partition healed), rejoin by bumping
/// our incarnation — the CRDT's only path back to `Alive`.
fn resurrect_if_slandered(inner: &Arc<Inner>) {
    let mut view = inner.view.lock().unwrap();
    let me = view.member(inner.me).expect("own record always present").clone();
    if me.status == Status::Dead {
        view.observe(MemberInfo { incarnation: me.incarnation + 1, status: Status::Alive, ..me });
    }
}

/// The coordinator's periodic config refresh: heal members that missed
/// the push, and keep asserting the epoch so any deposed coordinator
/// that resurfaces is immediately fenced.
fn coordinator_tick(inner: &Arc<Inner>, last_push: &mut Instant) {
    let topo = {
        let config = inner.config.lock().unwrap();
        match config.as_ref() {
            Some(c) if c.coordinator == inner.me => c.clone(),
            _ => return,
        }
    };
    if last_push.elapsed() < inner.cfg.push_interval {
        return;
    }
    *last_push = Instant::now();
    push_config(inner, &topo);
}

/// Does the live backend set agree with the active config? If not, and
/// this node is the designated initiator (lowest-id live backend), run
/// an election.
fn election_tick(inner: &Arc<Inner>, last_attempt: &mut Option<Instant>) {
    if inner.cfg.role != Role::Backend || inner.round_active.load(Ordering::Relaxed) {
        return;
    }
    let (plan, want) = {
        let view = inner.view.lock().unwrap();
        let Some(plan) = view.ring_plan() else { return };
        if plan.order.first() != Some(&inner.me) {
            return; // not the initiator
        }
        let want = backends_of_view(&view, &plan);
        (plan, want)
    };
    let settled = {
        let config = inner.config.lock().unwrap();
        config.as_ref().is_some_and(|c| c.backends == want && plan.order.contains(&c.coordinator))
    };
    if settled {
        return;
    }
    // Cooldown: a failed round times out after `election_idle`; starting
    // a new one sooner would race our own members' pending listeners.
    if let Some(t) = last_attempt {
        if t.elapsed() < inner.cfg.election_idle {
            return;
        }
    }
    *last_attempt = Some(Instant::now());
    initiate_election(inner, plan);
}

fn backends_of_view(view: &View, plan: &RingPlan) -> Vec<String> {
    plan.order.iter().filter_map(|id| view.member(*id).map(|m| m.serve_addr.clone())).collect()
}

/// The initiator's two-phase kick-off: prepare everyone (collect
/// election addresses), then commit everyone (start the `Ak` round).
fn initiate_election(inner: &Arc<Inner>, plan: RingPlan) {
    let epoch = inner.epoch.next();
    if plan.len() == 1 {
        // Alone: coordinator by definition; no sockets, no messages —
        // the paper's n=1 ring is trivially asymmetric.
        let topo =
            ClusterTopology { epoch, coordinator: inner.me, backends: backends_of(inner, &plan) };
        push_config(inner, &topo);
        return;
    }
    let ctrl_addrs: Vec<Option<String>> = {
        let view = inner.view.lock().unwrap();
        plan.order.iter().map(|id| view.member(*id).map(|m| m.ctrl_addr.clone())).collect()
    };
    let prepare_body =
        json::obj(vec![("epoch", Json::Num(epoch as i128)), ("plan", plan.to_json())]).to_string();

    let mut election_addrs: Vec<String> = Vec::with_capacity(plan.len());
    for (i, id) in plan.order.iter().enumerate() {
        let addr = if *id == inner.me {
            match prepare_local(inner, epoch, plan.clone()) {
                Ok(a) => a.to_string(),
                Err(why) => {
                    eprintln!("ctrl[{}]: own prepare at epoch {epoch} failed: {why}", inner.me);
                    return;
                }
            }
        } else {
            let Some(ctrl) = &ctrl_addrs[i] else { return };
            let resp = Client::connect(ctrl, CTRL_TIMEOUT)
                .and_then(|mut c| c.post_json("/ctrl/prepare", &prepare_body));
            match resp {
                Ok(r) if r.status == 200 => {
                    match Json::parse(&r.body_text()).ok().and_then(|d| {
                        d.get("election_addr").and_then(Json::as_str).map(String::from)
                    }) {
                        Some(a) => a,
                        None => return,
                    }
                }
                // A refusal or a dead peer aborts this attempt; failure
                // detection and the next tick take it from here.
                _ => return,
            }
        };
        election_addrs.push(addr);
    }

    let commit_body = json::obj(vec![
        ("epoch", Json::Num(epoch as i128)),
        ("addrs", Json::Arr(election_addrs.iter().cloned().map(Json::Str).collect())),
    ])
    .to_string();
    for (i, id) in plan.order.iter().enumerate() {
        if *id == inner.me {
            if let Err(why) = commit_local(inner, epoch, &election_addrs) {
                eprintln!("ctrl[{}]: own commit at epoch {epoch} failed: {why}", inner.me);
            }
        } else if let Some(ctrl) = &ctrl_addrs[i] {
            let _ = Client::connect(ctrl, CTRL_TIMEOUT)
                .and_then(|mut c| c.post_json("/ctrl/commit", &commit_body));
        }
    }
}
