//! # hre-ctrl — the self-hosting control plane
//!
//! The serving stack built in PRs 1–5 runs leader elections *for
//! clients*; this crate turns the same machinery inward: **the cluster
//! elects its own coordinator with the paper's `Ak`, over real TCP
//! links between real processes.**
//!
//! Each process (backend daemon or router) runs one control-plane node
//! ([`node::start`]) with a stable identity. The nodes maintain a
//! consistent membership view by heartbeat gossip (a state-based CRDT —
//! [`member::View`]); the live backends are ordered into a **labeled
//! unidirectional ring** ([`member::RingPlan`]: id order, labels hashed
//! distinct, hence an asymmetric labeling in `K1`); and the unmodified
//! [`hre_core::Ak`] engine runs over [`hre_net::PeerLink`] TCP links to
//! elect the coordinator ([`election::run_round`]). The coordinator
//! owns the consistent-hash ring configuration and pushes it to every
//! member; **epochs** from the shared [`hre_runtime::EpochClock`] fence
//! off deposed coordinators — a stale config push is answered `409` and
//! ignored.
//!
//! Churn — join, graceful leave, crash (missed heartbeats), coordinator
//! death — changes the live backend set, which triggers a fresh
//! election at a higher epoch, which produces a new config push, which
//! drives the router's ≤ 2.5/N consistent-hash remap path instead of a
//! static backend list.
//!
//! Dependency direction: `ctrl` sits on top of `core`/`net`/`runtime`/
//! `svc`; `cluster` does **not** depend on `ctrl` (the router exposes
//! [`update_backends`-style hooks] and the binary wires the two
//! together), so the data plane stays usable without a control plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod member;
pub mod node;
pub mod testbed;

pub use election::{run_round, RoundOutcome};
pub use member::{MemberId, MemberInfo, RingPlan, Role, Status, View};
pub use node::{
    derive_node_id, start, ClusterTopology, ConfigCallback, CtrlConfig, CtrlHandle, DeathCallback,
};
