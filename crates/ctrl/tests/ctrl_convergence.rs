//! Satellite property: membership convergence.
//!
//! Model an arbitrary churn history — joins, graceful leaves, crashes,
//! rejoins — applied to several members' views in different orders and
//! interleavings, with gossip modeled as CRDT merges. The control plane
//! is only correct if, once gossip quiesces:
//!
//! 1. every live member holds the **same ring plan** (same member
//!    order, same labels, hence the same election ring);
//! 2. every live member computes the **same expected coordinator**
//!    (the Lyndon-word owner of that ring — the member the real `Ak`
//!    run must elect);
//! 3. each membership transition keeps the consistent-hash **remap
//!    bounded**: going from the ring before an event to the ring after
//!    it moves at most 2.5/N of a 10k-key sample (the same bound the
//!    cluster crate pins for static reconfigurations — the control
//!    plane must not turn churn into cache flushes).
//!
//! Everything here is socket-free: `View::merge` is a pure function,
//! which is exactly why the CRDT design was chosen.

use hre_cluster::HashRing;
use hre_ctrl::{MemberInfo, Role, Status, View};
use proptest::prelude::*;

/// One churn event against the cluster.
#[derive(Clone, Debug)]
enum Event {
    /// Member `id` (re)joins with the given incarnation bump.
    Join(u64),
    /// Member `id` is declared dead (crash or graceful leave — the
    /// view cannot tell, and does not need to).
    Die(u64),
}

fn member(id: u64, incarnation: u64) -> MemberInfo {
    MemberInfo {
        id,
        role: Role::Backend,
        ctrl_addr: format!("127.0.0.1:{}", 9100 + id),
        serve_addr: format!("127.0.0.1:{}", 8100 + id),
        incarnation,
        status: Status::Alive,
    }
}

/// The deterministic well-spread key sample shared with the cluster
/// crate's remap properties.
fn key_sample() -> impl Iterator<Item = u64> {
    (0..10_000u64).map(|k| k.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(0x61c88647))
}

fn remap_fraction(a: &HashRing, backends_a: &[String], b: &HashRing, backends_b: &[String]) -> f64 {
    let mut moved = 0u64;
    for key in key_sample() {
        let owner_a = &backends_a[a.primary(key).unwrap()];
        let owner_b = &backends_b[b.primary(key).unwrap()];
        // A key "moves" only if both rings can serve it and they
        // disagree; keys on a removed backend must move somewhere.
        if owner_a != owner_b && backends_b.contains(owner_a) {
            moved += 1;
        }
    }
    moved as f64 / 10_000.0
}

/// Applies one event to the authoritative view, tracking incarnations.
fn apply(view: &mut View, incarnations: &mut [u64; 8], ev: &Event) {
    match ev {
        Event::Join(id) => {
            incarnations[*id as usize] += 1;
            view.observe(member(*id, incarnations[*id as usize]));
        }
        Event::Die(id) => {
            view.declare_dead(*id);
        }
    }
}

/// Joins and deaths with equal weight over the 8-member id space (the
/// vendored proptest has no `prop_oneof!`, so decode from one range).
fn event_strategy() -> impl Strategy<Value = Event> {
    (0u64..16).prop_map(|v| if v < 8 { Event::Join(v) } else { Event::Die(v - 8) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any churn sequence, delivered to every member in any order (here:
    /// forward, reverse, and odd-events-first interleavings, each as its
    /// own view), converges all members to one ring plan and one
    /// expected coordinator once the views merge.
    #[test]
    fn any_churn_order_converges_to_one_plan_and_one_coordinator(
        events in proptest::collection::vec(event_strategy(), 1..24),
        seed_ids in proptest::collection::vec(0u64..8, 1..5),
    ) {
        let seed_members: std::collections::BTreeSet<u64> = seed_ids.into_iter().collect();
        // Common seed view all members start from.
        let mut incarnations = [0u64; 8];
        let mut seed = View::new();
        for &id in &seed_members {
            incarnations[id as usize] += 1;
            seed.observe(member(id, incarnations[id as usize]));
        }

        // The churn history as per-event delta views (what gossip carries).
        let mut authoritative = seed.clone();
        let mut deltas: Vec<View> = Vec::new();
        for ev in &events {
            apply(&mut authoritative, &mut incarnations, ev);
            deltas.push(authoritative.clone());
        }

        // Three members absorb the deltas in different orders.
        let mut forward = seed.clone();
        for d in &deltas { forward.merge(d); }
        let mut reverse = seed.clone();
        for d in deltas.iter().rev() { reverse.merge(d); }
        let mut odds_first = seed.clone();
        for d in deltas.iter().skip(1).step_by(2) { odds_first.merge(d); }
        for d in deltas.iter().step_by(2) { odds_first.merge(d); }

        prop_assert_eq!(&forward, &reverse, "merge order must not matter");
        prop_assert_eq!(&forward, &odds_first, "partial interleaving must converge");
        prop_assert_eq!(&forward, &authoritative, "members converge to the full history");

        // Converged ⇒ identical ring plan and identical coordinator.
        let plans: Vec<_> =
            [&forward, &reverse, &odds_first].iter().map(|v| v.ring_plan()).collect();
        prop_assert_eq!(&plans[0], &plans[1]);
        prop_assert_eq!(&plans[0], &plans[2]);
        if let Some(plan) = &plans[0] {
            let c = plan.expected_coordinator();
            prop_assert!(plan.order.contains(&c), "coordinator must be a live backend");
            // Labels are distinct: the ring is asymmetric, Ak(1) applies.
            if plan.len() >= 2 {
                let labeling = plan.labeling();
                prop_assert!(labeling.all_distinct() && labeling.is_asymmetric());
            }
        }
    }

    /// Every single membership transition keeps the consistent-hash
    /// remap within the pinned 2.5/N bound, with N the larger of the
    /// two ring sizes — churn must never amount to a cache flush.
    #[test]
    fn each_transition_remaps_at_most_2_5_over_n(
        events in proptest::collection::vec(event_strategy(), 1..16),
        seed_ids in proptest::collection::vec(0u64..8, 2..6),
    ) {
        let seed_members: std::collections::BTreeSet<u64> = seed_ids.into_iter().collect();
        const VNODES: usize = 96;
        let mut incarnations = [0u64; 8];
        let mut view = View::new();
        for &id in &seed_members {
            incarnations[id as usize] += 1;
            view.observe(member(id, incarnations[id as usize]));
        }
        let mut prev: Option<Vec<String>> = view
            .ring_plan()
            .map(|p| p.order.iter().map(|id| format!("127.0.0.1:{}", 8100 + id)).collect());
        for ev in &events {
            apply(&mut view, &mut incarnations, ev);
            let next: Option<Vec<String>> = view
                .ring_plan()
                .map(|p| p.order.iter().map(|id| format!("127.0.0.1:{}", 8100 + id)).collect());
            if let (Some(a), Some(b)) = (&prev, &next) {
                if a != b && !a.is_empty() && !b.is_empty() {
                    let n = a.len().max(b.len()) as f64;
                    // Only single-step transitions carry the per-change
                    // bound; an event can change at most one member.
                    let delta = a.iter().filter(|x| !b.contains(x)).count()
                        + b.iter().filter(|x| !a.contains(x)).count();
                    prop_assert!(delta == 1, "one event changes at most one member");
                    let ring_a = HashRing::new(a, VNODES);
                    let ring_b = HashRing::new(b, VNODES);
                    let moved = remap_fraction(&ring_a, a, &ring_b, b);
                    prop_assert!(
                        moved <= 2.5 / n,
                        "transition {a:?} -> {b:?} moved {moved:.4} > {:.4}",
                        2.5 / n
                    );
                }
            }
            prev = next;
        }
    }
}
