//! Live control-plane integration: real processes' worth of ctrl nodes
//! (threads with real TCP listeners) bootstrap through a seed, gossip a
//! shared view, elect a coordinator with the unmodified `Ak` over
//! `PeerLink` TCP links, survive coordinator death with a fenced
//! re-election, and answer stale config pushes `409`.

use hre_ctrl::testbed::{wait_for_agreement, wait_until};
use hre_ctrl::{start, CtrlConfig, CtrlHandle, Role};
use hre_svc::Client;
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

fn node(role: Role, serve_port: u16, seeds: Vec<String>) -> CtrlHandle {
    start(CtrlConfig {
        role,
        serve_addr: format!("127.0.0.1:{serve_port}"),
        seeds,
        ..CtrlConfig::default()
    })
    .expect("start ctrl node")
}

#[test]
fn cluster_elects_survives_coordinator_death_and_fences_stale_pushes() {
    // --- bootstrap: one seed backend, two joiners, one router observer.
    let b1 = node(Role::Backend, 18101, Vec::new());
    let seed = vec![b1.addr.to_string()];
    let b2 = node(Role::Backend, 18102, seed.clone());
    let b3 = node(Role::Backend, 18103, seed.clone());
    let router = node(Role::Router, 18100, seed.clone());

    let config = wait_for_agreement(&[&b1, &b2, &b3, &router], 3, Duration::from_secs(20)).unwrap();

    // The elected coordinator is exactly the ring plan's Lyndon owner —
    // the real Ak run over TCP agreed with the local oracle.
    let plan = b1.view().ring_plan().expect("live backends form a ring plan");
    assert_eq!(config.coordinator, plan.expected_coordinator());
    assert!(plan.order.contains(&config.coordinator));

    // Exactly one backend believes it is the coordinator; the router is
    // an observer and never electable.
    let mut backends = vec![b1, b2, b3];
    let winners = backends.iter().filter(|h| h.is_coordinator()).count();
    assert_eq!(winners, 1, "exactly one self-declared coordinator");
    assert!(!router.is_coordinator(), "routers observe, never coordinate");
    assert_eq!(config.backends.len(), 3);
    for port in [18101u16, 18102, 18103] {
        assert!(config.backends.contains(&format!("127.0.0.1:{port}")));
    }

    // --- epoch fencing: a push at a long-dead epoch must be rejected.
    let follower = backends.iter().find(|h| !h.is_coordinator()).unwrap();
    let stale = format!(
        "{{\"epoch\":0,\"coordinator\":{},\"backends\":[\"127.0.0.1:9\"]}}",
        config.coordinator
    );
    let resp = Client::connect(&follower.addr.to_string(), CLIENT_TIMEOUT)
        .and_then(|mut c| c.post_json("/ctrl/config", &stale))
        .expect("stale push reaches the follower");
    assert_eq!(resp.status, 409, "stale epoch must be fenced: {}", resp.body_text());
    assert_eq!(
        follower.config().expect("config still present").epoch,
        config.epoch,
        "a fenced push must not disturb the accepted config"
    );

    // --- coordinator death: survivors re-elect at a strictly higher
    // epoch, and the new coordinator is one of them.
    let victim_idx = backends.iter().position(|h| h.is_coordinator()).unwrap();
    let victim = backends.remove(victim_idx);
    let victim_id = victim.member_id();
    victim.shutdown();

    let survivors: Vec<&CtrlHandle> = backends.iter().collect();
    let reconfig = wait_until(Duration::from_secs(25), Duration::from_millis(50), || {
        let c = hre_ctrl::testbed::agreed_config(&survivors)?;
        (c.epoch > config.epoch && c.backends.len() == 2).then_some(c)
    })
    .expect("survivors agree on a post-death config at a higher epoch");

    assert_ne!(reconfig.coordinator, victim_id, "the dead coordinator stays deposed");
    assert!(
        backends.iter().any(|h| h.member_id() == reconfig.coordinator),
        "the new coordinator is a survivor"
    );
    assert_eq!(reconfig.backends.len(), 2);

    // The router (still only an observer) converges to the same config.
    let router_sees = wait_until(Duration::from_secs(10), Duration::from_millis(50), || {
        router.config().filter(|c| c == &reconfig)
    });
    assert!(router_sees.is_some(), "router converges to the re-elected config");

    for h in backends {
        h.shutdown();
    }
    router.shutdown();
}
