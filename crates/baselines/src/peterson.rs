//! Peterson's unidirectional leader election (1982), of the same family as
//! Dolev–Klawe–Rodeh: `O(n log n)` messages worst case on fully-identified
//! rings.
//!
//! The algorithm runs in phases. Each *active* process holds a temporary
//! value `tid` (initially its label) and sends it; it then relays the first
//! value it receives (so every active learns the `tid`s of its two nearest
//! active predecessors, `v1` and `v2`). The process survives the phase —
//! adopting `tid := v1` — iff `v1 > tid` and `v1 > v2`: exactly the
//! processes sitting just after a local maximum survive, so at most half
//! remain and values stay pairwise distinct. A process that receives its
//! own current `tid` as `v1` is the only active left: it wins and
//! circulates `FINISH`. *Relay* processes forward everything.

use hre_sim::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_words::Label;

/// Messages of Peterson's algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PetersonMsg {
    /// A phase value (either a fresh `tid` or a relayed `v1`).
    Cand(Label),
    /// Election over; payload is the leader's label.
    Finish(Label),
}

/// Control state of one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Active, waiting for the first value of the phase.
    AwaitFirst,
    /// Active, waiting for the second value (first one recorded).
    AwaitSecond(Label),
    /// Demoted to a relay.
    Relay,
    /// Declared leader, waiting for `FINISH` to come home.
    Won,
}

/// Factory for Peterson processes. Requires distinct labels (`K1`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Peterson;

impl Algorithm for Peterson {
    type Proc = PetersonProc;

    fn name(&self) -> String {
        "Peterson".into()
    }

    fn spawn(&self, label: Label) -> PetersonProc {
        PetersonProc { id: label, tid: label, mode: Mode::AwaitFirst, st: ElectionState::INITIAL }
    }
}

/// One Peterson process.
pub struct PetersonProc {
    id: Label,
    tid: Label,
    mode: Mode,
    st: ElectionState,
}

impl PetersonProc {
    /// Whether the process is still competing.
    pub fn is_active(&self) -> bool {
        matches!(self.mode, Mode::AwaitFirst | Mode::AwaitSecond(_) | Mode::Won)
    }
}

impl ProcessBehavior for PetersonProc {
    type Msg = PetersonMsg;

    fn on_start(&mut self, out: &mut Outbox<PetersonMsg>) {
        out.send(PetersonMsg::Cand(self.tid));
    }

    fn on_msg(&mut self, msg: &PetersonMsg, out: &mut Outbox<PetersonMsg>) -> Reaction {
        match (*msg, self.mode) {
            (PetersonMsg::Cand(v1), Mode::AwaitFirst) => {
                if v1 == self.tid {
                    // Our value made a full turn: sole survivor.
                    self.mode = Mode::Won;
                    self.st.is_leader = true;
                    self.st.leader = Some(self.id);
                    self.st.done = true;
                    out.send(PetersonMsg::Finish(self.id));
                } else {
                    out.send(PetersonMsg::Cand(v1)); // relay v1 to complete the pair
                    self.mode = Mode::AwaitSecond(v1);
                }
                Reaction::Consumed
            }
            (PetersonMsg::Cand(v2), Mode::AwaitSecond(v1)) => {
                if v1 > self.tid && v1 > v2 {
                    // Survive the phase, adopting the local maximum behind us.
                    self.tid = v1;
                    self.mode = Mode::AwaitFirst;
                    out.send(PetersonMsg::Cand(self.tid));
                } else {
                    self.mode = Mode::Relay;
                }
                Reaction::Consumed
            }
            (PetersonMsg::Cand(v), Mode::Relay) => {
                out.send(PetersonMsg::Cand(v));
                Reaction::Consumed
            }
            (PetersonMsg::Finish(x), Mode::Relay) => {
                self.st.leader = Some(x);
                self.st.done = true;
                out.send(PetersonMsg::Finish(x));
                self.st.halted = true;
                Reaction::Consumed
            }
            (PetersonMsg::Finish(_), Mode::Won) => {
                self.st.halted = true;
                Reaction::Consumed
            }
            // A Cand arriving at a winner, or Finish at a still-active
            // process, matches no guard.
            _ => Reaction::Ignored,
        }
    }

    fn election(&self) -> ElectionState {
        self.st
    }

    /// One label plus a one-bit tag per message.
    fn msg_wire_bits(&self, _msg: &PetersonMsg, label_bits: u32) -> u64 {
        label_bits as u64 + 1
    }

    /// `id`, `tid`, a possible buffered `v1`, `leader`: 4 labels; mode (2
    /// bits) + the three spec booleans.
    fn space_bits(&self, label_bits: u32) -> u64 {
        4 * label_bits as u64 + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::{enumerate, generate, RingLabeling};
    use hre_sim::{run, RandomSched, RoundRobinSched, RunOptions, SyncSched, Verdict};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn elects_a_unique_leader_on_k1_rings() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in 2..=20 {
            let ring = generate::random_k1(n, &mut rng);
            let rep = run(&Peterson, &ring, &mut RoundRobinSched::default(), RunOptions::default());
            assert!(rep.clean(), "{ring:?} {:?} {:?}", rep.verdict, rep.violations);
            assert!(rep.leader.is_some());
        }
    }

    #[test]
    fn exhaustive_all_permutations_n_up_to_6() {
        for n in 2..=6usize {
            for ring in enumerate::all_k1_labelings(n) {
                let rep =
                    run(&Peterson, &ring, &mut RoundRobinSched::default(), RunOptions::default());
                assert!(rep.clean(), "{ring:?} {:?} {:?}", rep.verdict, rep.violations);
            }
        }
    }

    #[test]
    fn schedulers_agree_and_never_deadlock() {
        let ring = RingLabeling::from_raw(&[4, 9, 2, 7, 1, 8, 3]);
        let a = run(&Peterson, &ring, &mut SyncSched, RunOptions::default());
        let b = run(&Peterson, &ring, &mut RandomSched::new(17), RunOptions::default());
        for r in [&a, &b] {
            assert!(r.clean(), "{:?} {:?}", r.verdict, r.violations);
            assert_ne!(r.verdict, Verdict::Deadlock);
        }
        assert_eq!(a.leader, b.leader);
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn message_complexity_is_n_log_n() {
        // Peterson guarantees <= 2 n lg n + O(n) messages. Check the bound
        // on descending rings (Chang–Roberts's worst case).
        for n in [8u64, 16, 32, 64] {
            let desc: Vec<u64> = (1..=n).rev().collect();
            let ring = RingLabeling::from_raw(&desc);
            let rep = run(&Peterson, &ring, &mut RoundRobinSched::default(), RunOptions::default());
            assert!(rep.clean());
            let lg = 64 - n.leading_zeros() as u64; // ceil-ish log2
            let bound = 2 * n * (lg + 1) + 2 * n;
            assert!(rep.metrics.messages <= bound, "n={n}: {} > {}", rep.metrics.messages, bound);
        }
    }

    #[test]
    fn phase_survivors_halve() {
        // Structural sanity: on a 2^m ring, termination happens within m+1
        // phases, i.e. time O(n log n) in the worst case but the winner's
        // tid equals the global max.
        let ring = RingLabeling::from_raw(&[5, 3, 8, 1, 9, 2, 7, 4]);
        let rep = run(&Peterson, &ring, &mut RoundRobinSched::default(), RunOptions::default());
        assert!(rep.clean());
        // the winner holds the max label as tid, though its own id differs
        let leader_idx = rep.leader.unwrap();
        let leader_label = ring.label(leader_idx);
        assert_eq!(rep.violations.len(), 0);
        // everyone agrees on the *winner's* label, not the max label
        assert_ne!(leader_label, hre_words::Label::new(9)); // 9's successor-side process wins instead
    }
}
