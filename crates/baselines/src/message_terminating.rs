//! `MtAk`: a **message-terminating** weakening of Algorithm `Ak`,
//! materializing the paper's §I distinction between termination notions.
//!
//! Related work (Delporte et al. \[9\]) solves *message-terminating* leader
//! election: processes never halt, but only finitely many messages are
//! exchanged. The paper's specification is strictly stronger
//! (*process-terminating*: every process eventually halts). `MtAk` runs
//! `Ak`'s election but skips the halting statements: the run reaches a
//! quiescent — not terminal-halted — configuration. It satisfies the
//! message-terminating specification ([`satisfies_message_terminating`](hre_sim::satisfies_message_terminating))
//! and *fails* the paper's (the simulator's spec monitor reports
//! `NeverHalted`), demonstrating that the two specs genuinely differ.

use hre_sim::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_words::{is_lyndon, least_rotation, rotate_left, srp, Label};

/// Messages of `MtAk` (same shape as `Ak`'s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MtMsg {
    /// A circulating label token.
    Token(Label),
    /// The election is over.
    Finish,
}

/// Factory for message-terminating `Ak` processes.
#[derive(Clone, Copy, Debug)]
pub struct MtAk {
    /// The multiplicity bound `k ≥ 1`.
    pub k: usize,
}

impl MtAk {
    /// Creates the algorithm for a bound `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        MtAk { k }
    }
}

impl Algorithm for MtAk {
    type Proc = MtProc;

    fn name(&self) -> String {
        format!("MtAk(k={})", self.k)
    }

    fn spawn(&self, label: Label) -> MtProc {
        MtProc { id: label, k: self.k, string: Vec::new(), st: ElectionState::INITIAL }
    }
}

/// One message-terminating process.
pub struct MtProc {
    id: Label,
    k: usize,
    string: Vec<Label>,
    st: ElectionState,
}

impl ProcessBehavior for MtProc {
    type Msg = MtMsg;

    fn on_start(&mut self, out: &mut Outbox<MtMsg>) {
        self.string.push(self.id);
        out.send(MtMsg::Token(self.id));
    }

    fn on_msg(&mut self, msg: &MtMsg, out: &mut Outbox<MtMsg>) -> Reaction {
        match (*msg, self.st.is_leader) {
            (MtMsg::Token(_), true) => Reaction::Consumed,
            (MtMsg::Token(x), false) => {
                self.string.push(x);
                let decided = hre_words::has_label_with_count(&self.string, 2 * self.k + 1)
                    && is_lyndon(srp(&self.string));
                if decided {
                    self.st.is_leader = true;
                    self.st.leader = Some(self.id);
                    self.st.done = true;
                    out.send(MtMsg::Finish);
                } else {
                    out.send(MtMsg::Token(x));
                }
                Reaction::Consumed
            }
            (MtMsg::Finish, false) => {
                let period = srp(&self.string);
                let lw = rotate_left(period, least_rotation(period));
                self.st.leader = Some(lw[0]);
                self.st.done = true;
                out.send(MtMsg::Finish);
                // NO halt: the process keeps listening forever (but nothing
                // will ever arrive — message termination).
                Reaction::Consumed
            }
            (MtMsg::Finish, true) => {
                // NO halt here either.
                Reaction::Consumed
            }
        }
    }

    fn election(&self) -> ElectionState {
        self.st
    }

    /// One label plus a one-bit tag per message.
    fn msg_wire_bits(&self, _msg: &MtMsg, label_bits: u32) -> u64 {
        label_bits as u64 + 1
    }

    fn space_bits(&self, label_bits: u32) -> u64 {
        let b = label_bits as u64;
        self.string.len() as u64 * b + 2 * b + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::catalog;
    use hre_sim::{
        run, satisfies_message_terminating, RoundRobinSched, RunOptions, SpecViolation, Verdict,
    };

    #[test]
    fn message_terminates_but_does_not_process_terminate() {
        let ring = catalog::figure1_ring();
        let rep = run(&MtAk::new(3), &ring, &mut RoundRobinSched::default(), RunOptions::default());
        // Quiescent (finite messages), correct unique leader — but the
        // process-terminating spec is violated: nobody halts.
        assert_eq!(rep.verdict, Verdict::QuiescentNotHalted);
        assert!(!rep.clean());
        assert!(rep.violations.iter().any(|v| matches!(v, SpecViolation::NeverHalted { .. })));
        assert!(satisfies_message_terminating(&rep), "{:?}", rep.violations);
        assert_eq!(rep.leader, Some(0));
    }

    #[test]
    fn elects_the_same_leader_as_ak_would() {
        use hre_ring::generate;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let ring = generate::random_a_inter_kk(8, 3, 4, &mut rng);
            let rep =
                run(&MtAk::new(3), &ring, &mut RoundRobinSched::default(), RunOptions::default());
            assert!(satisfies_message_terminating(&rep), "{ring:?}");
            assert_eq!(rep.leader, ring.true_leader(), "{ring:?}");
        }
    }

    #[test]
    fn message_terminating_check_rejects_garbage() {
        // A run that elected nobody must not pass the weaker spec either.
        let ring = hre_ring::RingLabeling::from_raw(&[1, 2, 1, 2]); // symmetric
        let rep = run(
            &MtAk::new(2),
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions { max_actions: 100_000, ..Default::default() },
        );
        assert!(!satisfies_message_terminating(&rep));
    }
}
