//! `BoundedN`: a Dobrev–Pelc-style comparator — processes know a lower
//! bound `m` and an upper bound `M` on the unknown ring size `n`
//! (`2 ≤ m ≤ n ≤ M`), and must **decide whether leader election is
//! possible and perform it if so** (the task of reference \[4\] in the
//! paper, adapted to our unidirectional model).
//!
//! Every process collects a window of exactly `2M` labels (hop-counted
//! tokens die after `2M−1` forwards, so each process receives exactly
//! `2M−1` tokens and the token traffic drains by itself). Since
//! `2M ≥ 2n`, the window's smallest repeating prefix has the length `s` of
//! the ring's *primitive root*. The candidate ring sizes consistent with
//! the observation are the multiples of `s` in `[m, M]`:
//!
//! * if the **only** candidate is `n = s`, the ring is certainly
//!   asymmetric: elect the Lyndon-word process, circulate `FINISH`, halt;
//! * otherwise (several candidates, or only a symmetric interpretation)
//!   rings indistinguishable from the observed window include a symmetric
//!   one, so no algorithm may elect: every process sets
//!   `declared_impossible` and halts.
//!
//! This realizes the paper's point that bounds on `n` are *incomparable*
//! with knowledge of the multiplicity bound `k`: with `k`, `Ak`/`Bk` solve
//! every asymmetric ring, while `BoundedN` must refuse whenever `M ≥ 2s`.

use hre_sim::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_words::{is_lyndon, srp, Label};

/// Messages of `BoundedN`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BnMsg {
    /// A label token with its hop count.
    Token(Label, u32),
    /// Election over; payload is the leader's label.
    Finish(Label),
}

/// Factory for `BoundedN` processes.
#[derive(Clone, Copy, Debug)]
pub struct BoundedN {
    /// Lower bound on `n` (`≥ 2`).
    pub m: usize,
    /// Upper bound on `n` (`≥ m`).
    pub big_m: usize,
}

impl BoundedN {
    /// Creates the algorithm for known bounds `2 ≤ m ≤ M`.
    pub fn new(m: usize, big_m: usize) -> Self {
        assert!(m >= 2 && big_m >= m, "need 2 <= m <= M");
        BoundedN { m, big_m }
    }
}

impl Algorithm for BoundedN {
    type Proc = BnProc;

    fn name(&self) -> String {
        format!("BoundedN(m={},M={})", self.m, self.big_m)
    }

    fn spawn(&self, label: Label) -> BnProc {
        BnProc {
            id: label,
            m: self.m,
            big_m: self.big_m,
            string: Vec::new(),
            impossible: false,
            st: ElectionState::INITIAL,
        }
    }
}

/// One `BoundedN` process.
pub struct BnProc {
    id: Label,
    m: usize,
    big_m: usize,
    string: Vec<Label>,
    impossible: bool,
    st: ElectionState,
}

impl BnProc {
    /// Did this process decide that election is impossible for every ring
    /// consistent with its observations?
    pub fn declared_impossible(&self) -> bool {
        self.impossible
    }

    /// Called when the window is complete (`|string| = 2M`).
    fn decide(&mut self, out: &mut Outbox<BnMsg>) {
        debug_assert_eq!(self.string.len(), 2 * self.big_m);
        let root = srp(&self.string);
        let s = root.len();
        let candidates: Vec<usize> = (1..=self.big_m / s)
            .map(|e| e * s)
            .filter(|&c| c >= self.m && c <= self.big_m)
            .collect();
        if candidates == [s] {
            // Unambiguously asymmetric with n = s: elect the true leader.
            if is_lyndon(root) {
                self.st.is_leader = true;
                self.st.leader = Some(self.id);
                self.st.done = true;
                out.send(BnMsg::Finish(self.id));
            }
            // Non-leaders wait for FINISH.
        } else {
            // A symmetric ring is consistent with the observation: refuse.
            self.impossible = true;
            self.st.halted = true;
        }
    }
}

impl ProcessBehavior for BnProc {
    type Msg = BnMsg;

    fn on_start(&mut self, out: &mut Outbox<BnMsg>) {
        self.string.push(self.id);
        out.send(BnMsg::Token(self.id, 0));
    }

    fn on_msg(&mut self, msg: &BnMsg, out: &mut Outbox<BnMsg>) -> Reaction {
        match *msg {
            BnMsg::Token(x, hops) => {
                self.string.push(x);
                let hops = hops + 1;
                if (hops as usize) < 2 * self.big_m - 1 {
                    out.send(BnMsg::Token(x, hops));
                }
                if self.string.len() == 2 * self.big_m {
                    self.decide(out);
                }
                Reaction::Consumed
            }
            BnMsg::Finish(x) => {
                if self.st.is_leader {
                    self.st.halted = true;
                } else {
                    self.st.leader = Some(x);
                    self.st.done = true;
                    out.send(BnMsg::Finish(x));
                    self.st.halted = true;
                }
                Reaction::Consumed
            }
        }
    }

    fn election(&self) -> ElectionState {
        self.st
    }

    /// Window of `2M` labels plus `id`, `leader`, a hop counter and flags.
    fn space_bits(&self, label_bits: u32) -> u64 {
        let b = label_bits as u64;
        let log_m = ((2 * self.big_m as u64 - 1).max(1).ilog2() + 1) as u64;
        self.string.len() as u64 * b + 2 * b + log_m + 4
    }

    /// Tokens carry a label and a `⌈log 2M⌉`-bit hop counter plus a one-bit
    /// tag; `FINISH` carries a label and the tag.
    fn msg_wire_bits(&self, msg: &BnMsg, label_bits: u32) -> u64 {
        let log_m = ((2 * self.big_m as u64 - 1).max(1).ilog2() + 1) as u64;
        match msg {
            BnMsg::Token(..) => label_bits as u64 + log_m + 1,
            BnMsg::Finish(_) => label_bits as u64 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::{catalog, generate, RingLabeling};
    use hre_sim::{run, Network, RoundRobinSched, RunOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn elects_true_leader_with_tight_bounds() {
        // Bounds tight enough that n = s is the only candidate: M < 2m
        // guarantees it for every asymmetric ring.
        let ring = catalog::figure1_ring(); // n = 8
        let rep = run(
            &BoundedN::new(6, 10),
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions::default(),
        );
        assert!(rep.clean(), "{:?} {:?}", rep.verdict, rep.violations);
        assert_eq!(rep.leader, Some(catalog::FIGURE1_LEADER));
    }

    #[test]
    fn agrees_with_oracle_on_random_rings() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let ring = generate::random_a_inter_kk(9, 3, 4, &mut rng);
            let rep = run(
                &BoundedN::new(7, 11),
                &ring,
                &mut RoundRobinSched::default(),
                RunOptions::default(),
            );
            assert!(rep.clean(), "{ring:?}");
            assert_eq!(rep.leader, ring.true_leader(), "{ring:?}");
        }
    }

    fn drive_to_quiescence(ring: &RingLabeling, algo: &BoundedN) -> Network<BnProc> {
        let mut net: Network<BnProc> = Network::new(algo, ring);
        let mut guard = 0;
        while let Some(&i) = net.enabled_set().first() {
            net.fire(i);
            guard += 1;
            assert!(guard < 10_000_000);
        }
        net
    }

    #[test]
    fn refuses_on_symmetric_rings() {
        // n = 6 symmetric ring; with bounds [4, 8] the primitive root s = 2
        // admits candidates {4, 6, 8} — impossible, and rightly so.
        let ring = generate::symmetric_ring(&[1, 2], 3);
        let net = drive_to_quiescence(&ring, &BoundedN::new(4, 8));
        for i in 0..ring.n() {
            assert!(net.process(i).declared_impossible(), "p{i}");
            assert!(net.election(i).halted);
            assert!(!net.election(i).is_leader);
        }
        assert_eq!(net.in_flight(), 0, "token traffic must drain");
    }

    #[test]
    fn refuses_on_asymmetric_ring_with_loose_bounds() {
        // The paper's point: the ring (1,2,2) is asymmetric (n = 3 = s), but
        // with bounds [2, 6] the doubled symmetric ring (1,2,2,1,2,2) is
        // indistinguishable from it — BoundedN must refuse, while Ak/Bk
        // (knowing k) elect. Knowledge of k beats bounds on n here.
        let ring = catalog::ring_122();
        let net = drive_to_quiescence(&ring, &BoundedN::new(2, 6));
        for i in 0..ring.n() {
            assert!(net.process(i).declared_impossible(), "p{i}");
        }
        // (That Ak/Bk with k = 2 elect on this very ring is asserted in the
        // cross-crate integration tests — knowledge of k beats bounds on n.)
    }

    #[test]
    fn window_is_llabels_prefix() {
        let ring = catalog::figure1_ring();
        let algo = BoundedN::new(6, 9);
        let net = drive_to_quiescence(&ring, &algo);
        for i in 0..ring.n() {
            let s = &net.process(i).string;
            assert_eq!(s.len(), 18);
            assert_eq!(s, &ring.llabels(i, 18), "p{i}");
        }
    }

    #[test]
    fn tight_bounds_iff_m_less_than_2m() {
        // For any asymmetric ring with M < 2m the candidate set is {n}:
        // BoundedN always elects.
        let mut rng = StdRng::seed_from_u64(9);
        for n in [5usize, 7, 10] {
            let ring = generate::random_k1(n, &mut rng);
            let rep = run(
                &BoundedN::new(n - 1, n + 1),
                &ring,
                &mut RoundRobinSched::default(),
                RunOptions::default(),
            );
            // n-1 >= 2 and n+1 < 2(n-1) for n >= 4
            assert!(rep.clean(), "{ring:?}");
        }
    }
}
