//! Chang–Roberts (1979): unidirectional extrema-finding for uniquely
//! labeled rings.
//!
//! Every process launches a token with its label; a process forwards only
//! tokens larger than its own label and discards the rest. The maximum
//! label's token is the only one to survive a full turn; when its owner
//! sees it come home it is the leader and circulates `FINISH` so everyone
//! halts — making the classic message-terminating algorithm
//! process-terminating.
//!
//! Correct only on `K1` rings (distinct labels): with homonyms, several
//! maximum-labeled processes would all see "their" token return — one of
//! the motivations for the paper's homonym-aware algorithms. A test below
//! demonstrates exactly this failure.

use hre_sim::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_words::Label;

/// Messages of Chang–Roberts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrMsg {
    /// A candidate token carrying a label.
    Cand(Label),
    /// Election over; the payload is the leader's label.
    Finish(Label),
}

/// Factory for Chang–Roberts processes (elects the maximum label).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChangRoberts;

impl Algorithm for ChangRoberts {
    type Proc = CrProc;

    fn name(&self) -> String {
        "ChangRoberts".into()
    }

    fn spawn(&self, label: Label) -> CrProc {
        CrProc { id: label, st: ElectionState::INITIAL }
    }
}

/// One Chang–Roberts process.
#[derive(Clone)]
pub struct CrProc {
    id: Label,
    st: ElectionState,
}

impl hre_sim::StateKey for CrProc {
    fn state_key(&self) -> String {
        format!("{:?}/{:?}", self.id, self.st)
    }
}

impl ProcessBehavior for CrProc {
    type Msg = CrMsg;

    fn on_start(&mut self, out: &mut Outbox<CrMsg>) {
        out.send(CrMsg::Cand(self.id));
    }

    fn on_msg(&mut self, msg: &CrMsg, out: &mut Outbox<CrMsg>) -> Reaction {
        match *msg {
            CrMsg::Cand(x) => {
                if x > self.id {
                    out.send(CrMsg::Cand(x));
                } else if x == self.id && !self.st.is_leader {
                    // Our token survived a full turn: we hold the maximum.
                    self.st.is_leader = true;
                    self.st.leader = Some(self.id);
                    self.st.done = true;
                    out.send(CrMsg::Finish(self.id));
                }
                // x < id: discard (the dominated token dies here).
                Reaction::Consumed
            }
            CrMsg::Finish(x) => {
                if self.st.is_leader {
                    self.st.halted = true;
                } else {
                    self.st.leader = Some(x);
                    self.st.done = true;
                    out.send(CrMsg::Finish(x));
                    self.st.halted = true;
                }
                Reaction::Consumed
            }
        }
    }

    fn election(&self) -> ElectionState {
        self.st
    }

    /// One label plus a one-bit tag per message.
    fn msg_wire_bits(&self, _msg: &CrMsg, label_bits: u32) -> u64 {
        label_bits as u64 + 1
    }

    /// `id` + `leader` labels and three booleans.
    fn space_bits(&self, label_bits: u32) -> u64 {
        2 * label_bits as u64 + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::{generate, RingLabeling};
    use hre_sim::{run, RandomSched, RoundRobinSched, RunOptions, SyncSched};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn max_index(ring: &RingLabeling) -> usize {
        (0..ring.n()).max_by_key(|&i| ring.label(i)).unwrap()
    }

    #[test]
    fn elects_max_label_on_k1_rings() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 2..=15 {
            let ring = generate::random_k1(n, &mut rng);
            let rep =
                run(&ChangRoberts, &ring, &mut RoundRobinSched::default(), RunOptions::default());
            assert!(rep.clean(), "{ring:?} {:?} {:?}", rep.verdict, rep.violations);
            assert_eq!(rep.leader, Some(max_index(&ring)));
        }
    }

    #[test]
    fn all_schedulers_agree() {
        let ring = RingLabeling::from_raw(&[3, 8, 1, 6, 2]);
        let a = run(&ChangRoberts, &ring, &mut SyncSched, RunOptions::default());
        let b = run(&ChangRoberts, &ring, &mut RandomSched::new(2), RunOptions::default());
        assert!(a.clean() && b.clean());
        assert_eq!(a.leader, b.leader);
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn worst_case_is_quadratic_best_case_linear() {
        // Descending arrangement (in send direction) is the worst case for
        // elect-max: the token of label v travels v hops before dying at
        // the maximum; sum = n(n+1)/2. Ascending is the best case: every
        // dominated token dies after one hop.
        let n = 16u64;
        let asc: Vec<u64> = (1..=n).collect();
        let desc: Vec<u64> = (1..=n).rev().collect();
        let worst = run(
            &ChangRoberts,
            &RingLabeling::from_raw(&desc),
            &mut RoundRobinSched::default(),
            RunOptions::default(),
        );
        let best = run(
            &ChangRoberts,
            &RingLabeling::from_raw(&asc),
            &mut RoundRobinSched::default(),
            RunOptions::default(),
        );
        assert!(worst.clean() && best.clean());
        assert!(worst.metrics.messages > best.metrics.messages * 2);
        // Exact classical counts: worst = sum_{i=1..n} i + n (FINISH);
        // best = n (own tokens) + (n-1) single hops... compute: descending
        // ring: each token makes 1 hop then dies, except max's full turn.
        assert_eq!(worst.metrics.messages, n * (n + 1) / 2 + n);
        assert_eq!(best.metrics.messages, n + (n - 1) + n);
    }

    #[test]
    fn homonyms_break_chang_roberts() {
        // Two processes share the maximum label: both see "their" token
        // return and both elect themselves — the homonym failure mode that
        // motivates the paper.
        let ring = RingLabeling::from_raw(&[5, 1, 5, 2]);
        let rep = run(&ChangRoberts, &ring, &mut RoundRobinSched::default(), RunOptions::default());
        assert!(!rep.clean());
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, hre_sim::SpecViolation::MultipleLeaders { .. })));
    }
}
