//! # hre-baselines — classic ring leader-election algorithms
//!
//! Comparison baselines for the IPDPS 2017 reproduction, each written
//! against the same [`hre_sim`] process model as `Ak`/`Bk`:
//!
//! * [`ChangRoberts`] (1979) — the classic unidirectional extrema-finding
//!   algorithm for fully-identified rings (`K1`): `O(n log n)` messages on
//!   average, `O(n²)` worst case;
//! * [`Peterson`] — Peterson's `O(n log n)` worst-case unidirectional
//!   algorithm (a.k.a. the Dolev–Klawe–Rodeh family), also for `K1`;
//! * [`OracleN`] — election of the paper's *true leader* (Lyndon word) when
//!   `n` is known a priori: the "knowledge of n" comparator discussed in
//!   the paper's contribution section. Works on any asymmetric ring,
//!   homonyms included;
//! * [`BoundedN`] — a Dobrev–Pelc-style comparator that knows only bounds
//!   `m ≤ n ≤ M`, decides whether election is possible for every ring
//!   consistent with its observations, and performs it if so.
//!
//! The paper's related-work baseline `[10]` (Altisen et al., SSS 2016, for
//! `U* ∩ Kk`) is specified in a different paper and is not reconstructible
//! from this one; see DESIGN.md for the substitution rationale.
//!
//! Note: Chang–Roberts and Peterson elect an *extremum-labeled* process,
//! while `Ak`/`Bk`/`OracleN` elect the *Lyndon-word* process. Each is
//! correct against the leader-election specification; they simply use
//! different tie-breaking structure, so cross-algorithm comparisons are
//! about costs, not about electing the same index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded_n;
pub mod chang_roberts;
pub mod message_terminating;
pub mod oracle_n;
pub mod peterson;

pub use bounded_n::{BnMsg, BnProc, BoundedN};
pub use chang_roberts::{ChangRoberts, CrMsg, CrProc};
pub use message_terminating::{MtAk, MtMsg, MtProc};
pub use oracle_n::{OracleMsg, OracleN, OracleProc};
pub use peterson::{Peterson, PetersonMsg, PetersonProc};
