//! `OracleN`: true-leader (Lyndon-word) election when `n` is known.
//!
//! The paper's contribution section contrasts knowing the multiplicity
//! bound `k` against knowing `n` (or bounds on it, as in Dobrev–Pelc and
//! Delporte et al.). This baseline quantifies what the extra knowledge of
//! `n` buys: every process collects exactly one full turn of labels
//! (hop-counted tokens, so each token dies after `n−1` forwards), after
//! which it holds `LLabels(p)_n` and the Lyndon-word holder declares
//! itself. Works on **any** asymmetric ring — homonyms included — in
//! `Θ(n)` time and `Θ(n²)` messages, with no dependence on `k`.

use hre_sim::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_words::{is_lyndon, Label};

/// Messages of `OracleN`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleMsg {
    /// A label token with the number of hops it has already traveled.
    Token(Label, u32),
    /// Election over; payload is the leader's label.
    Finish(Label),
}

/// Factory for `OracleN` processes: all spawned processes know `n`.
#[derive(Clone, Copy, Debug)]
pub struct OracleN {
    /// The exact ring size, known a priori.
    pub n: usize,
}

impl OracleN {
    /// Creates the algorithm for a known ring size `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        OracleN { n }
    }
}

impl Algorithm for OracleN {
    type Proc = OracleProc;

    fn name(&self) -> String {
        format!("OracleN(n={})", self.n)
    }

    fn spawn(&self, label: Label) -> OracleProc {
        OracleProc { id: label, n: self.n, string: Vec::new(), st: ElectionState::INITIAL }
    }
}

/// One `OracleN` process.
pub struct OracleProc {
    id: Label,
    n: usize,
    string: Vec<Label>,
    st: ElectionState,
}

impl OracleProc {
    fn maybe_decide(&mut self, out: &mut Outbox<OracleMsg>) {
        if self.string.len() == self.n && is_lyndon(&self.string) {
            self.st.is_leader = true;
            self.st.leader = Some(self.id);
            self.st.done = true;
            out.send(OracleMsg::Finish(self.id));
        }
    }
}

impl ProcessBehavior for OracleProc {
    type Msg = OracleMsg;

    fn on_start(&mut self, out: &mut Outbox<OracleMsg>) {
        self.string.push(self.id);
        if self.n == 1 {
            self.maybe_decide(out);
            return;
        }
        out.send(OracleMsg::Token(self.id, 0));
    }

    fn on_msg(&mut self, msg: &OracleMsg, out: &mut Outbox<OracleMsg>) -> Reaction {
        match *msg {
            OracleMsg::Token(x, hops) => {
                self.string.push(x);
                let hops = hops + 1;
                if (hops as usize) < self.n - 1 {
                    out.send(OracleMsg::Token(x, hops));
                }
                self.maybe_decide(out);
                Reaction::Consumed
            }
            OracleMsg::Finish(x) => {
                if self.st.is_leader {
                    self.st.halted = true;
                } else {
                    self.st.leader = Some(x);
                    self.st.done = true;
                    out.send(OracleMsg::Finish(x));
                    self.st.halted = true;
                }
                Reaction::Consumed
            }
        }
    }

    fn election(&self) -> ElectionState {
        self.st
    }

    /// The full-turn string (`n` labels), `id` and `leader`, a hop counter
    /// worth of scratch (`⌈log n⌉`), three booleans.
    fn space_bits(&self, label_bits: u32) -> u64 {
        let b = label_bits as u64;
        let log_n = ((self.n as u64 - 1).max(1).ilog2() + 1) as u64;
        self.string.len() as u64 * b + 2 * b + log_n + 3
    }

    /// Tokens carry a label and a hop counter (`⌈log n⌉` bits) plus a
    /// one-bit tag; `FINISH` carries a label and the tag.
    fn msg_wire_bits(&self, msg: &OracleMsg, label_bits: u32) -> u64 {
        let log_n = ((self.n as u64 - 1).max(1).ilog2() + 1) as u64;
        match msg {
            OracleMsg::Token(..) => label_bits as u64 + log_n + 1,
            OracleMsg::Finish(_) => label_bits as u64 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::{catalog, enumerate, generate, RingLabeling};
    use hre_sim::{run, RandomSched, RoundRobinSched, RunOptions, SyncSched};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn elects_true_leader_on_homonym_rings() {
        let ring = catalog::figure1_ring();
        let rep = run(
            &OracleN::new(ring.n()),
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions::default(),
        );
        assert!(rep.clean(), "{:?} {:?}", rep.verdict, rep.violations);
        assert_eq!(rep.leader, Some(catalog::FIGURE1_LEADER));
    }

    #[test]
    fn exhaustive_small_asymmetric_rings() {
        for n in 2..=5usize {
            for ring in enumerate::asymmetric_labelings(n, 3) {
                let rep = run(
                    &OracleN::new(n),
                    &ring,
                    &mut RoundRobinSched::default(),
                    RunOptions::default(),
                );
                assert!(rep.clean(), "{ring:?}");
                assert_eq!(rep.leader, ring.true_leader(), "{ring:?}");
            }
        }
    }

    #[test]
    fn complexity_is_linear_time_quadratic_messages() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [4usize, 8, 16, 32] {
            let ring = generate::random_k1(n, &mut rng);
            let rep = run(&OracleN::new(n), &ring, &mut SyncSched, RunOptions::default());
            assert!(rep.clean());
            let n64 = n as u64;
            // tokens: n tokens x (n-1) hops; FINISH: n
            assert_eq!(rep.metrics.messages, n64 * (n64 - 1) + n64);
            assert!(rep.metrics.time_units <= 2 * n64);
        }
    }

    #[test]
    fn agrees_with_ak_on_elected_process() {
        // OracleN and Ak elect the same (true) leader — the same Lyndon
        // criterion with different knowledge.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let ring = generate::random_a_inter_kk(7, 3, 3, &mut rng);
            let oracle =
                run(&OracleN::new(7), &ring, &mut RandomSched::new(1), RunOptions::default());
            assert!(oracle.clean());
            assert_eq!(oracle.leader, ring.true_leader());
        }
    }

    #[test]
    fn wrong_n_breaks_it() {
        // Knowledge must be correct: with n' = 3 on this 4-ring, no
        // process's 3-label window is a Lyndon word, so nobody ever
        // declares and the run cannot terminate cleanly — echoing why "no
        // knowledge of n" is the hard setting.
        let ring = RingLabeling::from_raw(&[1, 2, 1, 3]);
        let rep = run(
            &OracleN::new(3),
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions { max_actions: 10_000, ..Default::default() },
        );
        assert!(!rep.clean());
    }
}
