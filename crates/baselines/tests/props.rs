//! Property tests for the baseline algorithms under randomized rings and
//! schedules.

use hre_baselines::{BnProc, BoundedN, ChangRoberts, MtAk, OracleN, Peterson};
use hre_ring::{generate, RingLabeling};
use hre_sim::{
    run, satisfies_message_terminating, Network, RandomSched, RoundRobinSched, RunOptions,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_k1_ring() -> impl Strategy<Value = RingLabeling> {
    (3usize..16, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::random_k1(n, &mut rng)
    })
}

fn arb_asym_ring() -> impl Strategy<Value = RingLabeling> {
    (3usize..12, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::random_a_inter_kk(n, n, 4, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chang–Roberts elects the maximum-labeled process on any K1 ring
    /// under any random schedule.
    #[test]
    fn chang_roberts_elects_max(ring in arb_k1_ring(), s in any::<u64>()) {
        let rep = run(&ChangRoberts, &ring, &mut RandomSched::new(s), RunOptions::default());
        prop_assert!(rep.clean(), "{:?}", rep.violations);
        let max = (0..ring.n()).max_by_key(|&i| ring.label(i)).unwrap();
        prop_assert_eq!(rep.leader, Some(max));
    }

    /// Peterson: clean on any K1 ring, within the 2n·(lg n + c) message
    /// budget.
    #[test]
    fn peterson_message_budget(ring in arb_k1_ring(), s in any::<u64>()) {
        let rep = run(&Peterson, &ring, &mut RandomSched::new(s), RunOptions::default());
        prop_assert!(rep.clean(), "{:?}", rep.violations);
        let n = ring.n() as u64;
        let lg = 64 - n.leading_zeros() as u64;
        prop_assert!(rep.metrics.messages <= 2 * n * (lg + 1) + 2 * n);
    }

    /// OracleN and BoundedN (with bounds tight enough to pin n) both elect
    /// the true leader of any asymmetric ring.
    #[test]
    fn knowledge_baselines_elect_true_leader(ring in arb_asym_ring(), s in any::<u64>()) {
        let n = ring.n();
        let oracle = run(&OracleN::new(n), &ring, &mut RandomSched::new(s), RunOptions::default());
        prop_assert!(oracle.clean(), "{:?}", oracle.violations);
        prop_assert_eq!(oracle.leader, ring.true_leader());

        let bounded = run(
            &BoundedN::new((n - 1).max(2), 2 * n - 1),
            &ring,
            &mut RandomSched::new(s),
            RunOptions::default(),
        );
        prop_assert!(bounded.clean(), "{:?}", bounded.violations);
        prop_assert_eq!(bounded.leader, ring.true_leader());
    }

    /// BoundedN refuses whenever the bounds admit a symmetric
    /// interpretation (M ≥ 2n), on every asymmetric ring.
    #[test]
    fn bounded_n_refusal_frontier(ring in arb_asym_ring()) {
        let n = ring.n();
        let algo = BoundedN::new(2.max(n / 2), 2 * n);
        let mut net: Network<BnProc> = Network::new(&algo, &ring);
        let mut guard = 0u64;
        while let Some(&i) = net.enabled_set().first() {
            net.fire(i);
            guard += 1;
            prop_assert!(guard < 20_000_000);
        }
        for i in 0..n {
            prop_assert!(net.process(i).declared_impossible(), "p{} on {:?}", i, ring);
            prop_assert!(net.election(i).halted);
        }
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// MtAk: message-terminating spec holds, process-terminating spec does
    /// not, and the elected process is the true leader.
    #[test]
    fn mtak_separates_the_termination_notions(ring in arb_asym_ring(), s in any::<u64>()) {
        let k = ring.max_multiplicity();
        let rep = run(&MtAk::new(k), &ring, &mut RandomSched::new(s), RunOptions::default());
        prop_assert!(satisfies_message_terminating(&rep), "{:?}", rep.violations);
        prop_assert!(!rep.clean());
        prop_assert_eq!(rep.leader, ring.true_leader());
    }

    /// All K1-capable algorithms agree that a leader exists and that every
    /// process learns a consistent label, even though the winners differ.
    #[test]
    fn k1_algorithms_all_complete(ring in arb_k1_ring()) {
        let n = ring.n();
        prop_assert!(run(&ChangRoberts, &ring, &mut RoundRobinSched::default(), RunOptions::default()).clean());
        prop_assert!(run(&Peterson, &ring, &mut RoundRobinSched::default(), RunOptions::default()).clean());
        prop_assert!(run(&OracleN::new(n), &ring, &mut RoundRobinSched::default(), RunOptions::default()).clean());
    }
}
