//! The per-node drive loop shared by every real-concurrency runtime.
//!
//! Both the in-process channel runtime (`hre-runtime`) and the TCP socket
//! runtime (`hre-net`) run one OS thread per ring process, and both
//! threads execute the *same* loop: flush the outbox to the right
//! neighbor, check for local termination, block on the incoming link,
//! offer the head message to the guarded-action process, repeat. This
//! module owns that loop once — the runtimes differ only in their
//! [`NodeTransport`], so their process-facing semantics cannot drift.
//!
//! The loop reproduces the model's `rcv` exactly as the simulator does: a
//! process whose head message matches no enabled guard is permanently
//! disabled ([`ThreadOutcome::Wedged`]), and a halted process stops
//! receiving forever.

use hre_sim::{Outbox, ProcessBehavior, Reaction};
use std::time::Duration;

/// How one process's thread ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadOutcome {
    /// The process halted (local termination decision).
    Halted,
    /// The process ignored its head message — permanently disabled.
    Wedged,
    /// No message arrived within the idle timeout (livelock / lost peers).
    TimedOut,
    /// The incoming link disconnected before the process halted.
    Disconnected,
    /// The outgoing link stayed unavailable past the send deadline
    /// (backpressure stall on bounded links, or a dead transport).
    Stalled,
}

/// Why a [`NodeTransport::send`] gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendFault {
    /// The link stayed full/unavailable past the transport's deadline.
    Stalled,
    /// The transport is gone (its machinery shut down underneath us).
    Disconnected,
}

/// Why a [`NodeTransport::recv`] returned no message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvFault {
    /// Nothing arrived within the idle timeout.
    Timeout,
    /// The incoming link is gone and drained.
    Disconnected,
}

/// One node's view of its two ring links: send-to-successor and
/// receive-from-predecessor.
///
/// A send to a peer that already halted and tore down its endpoint must
/// return `Ok(())` — the halted process would never have received the
/// message, so it is provably irrelevant (the same argument the channel
/// runtime has always used). Only a genuine stall (deadline exceeded) or
/// a dead transport is an error.
pub trait NodeTransport<M> {
    /// Ships one message toward the right neighbor.
    fn send(&mut self, msg: M) -> Result<(), SendFault>;

    /// Blocks up to `idle` for the head message of the incoming link.
    fn recv(&mut self, idle: Duration) -> Result<M, RecvFault>;
}

/// Runs one process to completion over `transport`: the canonical
/// recv → guard → react → send loop. Returns the outcome and the number
/// of messages successfully handed to the transport.
pub fn drive_node<P, T>(proc: &mut P, transport: &mut T, idle: Duration) -> (ThreadOutcome, u64)
where
    P: ProcessBehavior,
    T: NodeTransport<P::Msg>,
{
    let mut out = Outbox::new();
    let mut sent: u64 = 0;
    proc.on_start(&mut out);
    let outcome = loop {
        match flush(transport, &mut out, &mut sent) {
            Ok(()) => {}
            Err(SendFault::Stalled) => break ThreadOutcome::Stalled,
            Err(SendFault::Disconnected) => break ThreadOutcome::Disconnected,
        }
        if proc.election().halted {
            break ThreadOutcome::Halted;
        }
        match transport.recv(idle) {
            Ok(msg) => match proc.on_msg(&msg, &mut out) {
                Reaction::Consumed => {}
                Reaction::Ignored => break ThreadOutcome::Wedged,
            },
            Err(RecvFault::Timeout) => break ThreadOutcome::TimedOut,
            Err(RecvFault::Disconnected) => break ThreadOutcome::Disconnected,
        }
    };
    (outcome, sent)
}

/// Sends the whole outbox; the batch counts toward `sent` only if every
/// message was accepted (matching the historical accounting of the
/// channel runtime, whose message totals integration tests compare
/// bit-for-bit against the simulator).
fn flush<M, T: NodeTransport<M>>(
    transport: &mut T,
    out: &mut Outbox<M>,
    sent: &mut u64,
) -> Result<(), SendFault> {
    let msgs = std::mem::take(out).into_msgs();
    let count = msgs.len() as u64;
    for m in msgs {
        transport.send(m)?;
    }
    *sent += count;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_sim::{ElectionState, Outbox};
    use std::collections::VecDeque;

    /// A process that echoes `n` messages then halts.
    struct Echo {
        remaining: u32,
        st: ElectionState,
    }

    impl ProcessBehavior for Echo {
        type Msg = u32;
        fn on_start(&mut self, out: &mut Outbox<u32>) {
            out.send(0);
        }
        fn on_msg(&mut self, msg: &u32, out: &mut Outbox<u32>) -> Reaction {
            if *msg == 999 {
                return Reaction::Ignored;
            }
            self.remaining -= 1;
            if self.remaining == 0 {
                self.st.halted = true;
                self.st.done = true;
            } else {
                out.send(msg + 1);
            }
            Reaction::Consumed
        }
        fn election(&self) -> ElectionState {
            self.st
        }
        fn space_bits(&self, _b: u32) -> u64 {
            32
        }
    }

    /// Loopback transport: everything sent is received back, FIFO.
    struct Loopback {
        q: VecDeque<u32>,
    }

    impl NodeTransport<u32> for Loopback {
        fn send(&mut self, msg: u32) -> Result<(), SendFault> {
            self.q.push_back(msg);
            Ok(())
        }
        fn recv(&mut self, _idle: Duration) -> Result<u32, RecvFault> {
            self.q.pop_front().ok_or(RecvFault::Disconnected)
        }
    }

    #[test]
    fn drives_to_halt_and_counts_sends() {
        let mut proc = Echo { remaining: 5, st: ElectionState::INITIAL };
        let mut t = Loopback { q: VecDeque::new() };
        let (outcome, sent) = drive_node(&mut proc, &mut t, Duration::from_secs(1));
        assert_eq!(outcome, ThreadOutcome::Halted);
        // initial send + 4 echoes (the 5th reception halts without sending)
        assert_eq!(sent, 5);
    }

    #[test]
    fn wedges_on_unmatched_guard() {
        let mut proc = Echo { remaining: 100, st: ElectionState::INITIAL };
        let mut t = Loopback { q: VecDeque::from([999]) };
        // The loopback yields the poison message after the initial send.
        // Order: flush(0), recv -> 0, echo 1 ... interleaved; inject 999 first.
        let (outcome, _) = drive_node(&mut proc, &mut t, Duration::from_secs(1));
        assert_eq!(outcome, ThreadOutcome::Wedged);
    }

    #[test]
    fn reports_disconnect_when_link_dies() {
        struct Dead;
        impl NodeTransport<u32> for Dead {
            fn send(&mut self, _msg: u32) -> Result<(), SendFault> {
                Ok(())
            }
            fn recv(&mut self, _idle: Duration) -> Result<u32, RecvFault> {
                Err(RecvFault::Disconnected)
            }
        }
        let mut proc = Echo { remaining: 3, st: ElectionState::INITIAL };
        let (outcome, _) = drive_node(&mut proc, &mut Dead, Duration::from_millis(10));
        assert_eq!(outcome, ThreadOutcome::Disconnected);
    }

    #[test]
    fn reports_stall_from_transport() {
        struct Full;
        impl NodeTransport<u32> for Full {
            fn send(&mut self, _msg: u32) -> Result<(), SendFault> {
                Err(SendFault::Stalled)
            }
            fn recv(&mut self, _idle: Duration) -> Result<u32, RecvFault> {
                Err(RecvFault::Timeout)
            }
        }
        let mut proc = Echo { remaining: 3, st: ElectionState::INITIAL };
        let (outcome, sent) = drive_node(&mut proc, &mut Full, Duration::from_millis(10));
        assert_eq!(outcome, ThreadOutcome::Stalled);
        assert_eq!(sent, 0);
    }
}
