//! A lock-free log₂-microsecond latency histogram, shared by every
//! runtime that measures durations.
//!
//! Extracted from the TCP transport's RTT bookkeeping (`hre-net`) so the
//! election service (`hre-svc`) can reuse the same bucket layout for
//! request latency instead of carrying a second copy: bucket `i` covers
//! `[2^i, 2^(i+1))` µs, with the last bucket absorbing everything larger.
//! All fields are atomics, so concurrent recorders never contend on a
//! lock; snapshots are taken with relaxed loads (the counters are
//! monotonic and independently meaningful).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets. `2^24` µs ≈ 16.8 s — anything slower lands in
/// the final bucket.
pub const LOG2_BUCKETS: usize = 24;

/// Live histogram: concurrent recorders, relaxed atomics.
#[derive(Debug, Default)]
pub struct Log2Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; LOG2_BUCKETS],
}

/// Index of the bucket covering `us` microseconds.
pub fn bucket_of(us: u64) -> usize {
    (64 - us.max(1).leading_zeros() as usize - 1).min(LOG2_BUCKETS - 1)
}

impl Log2Histogram {
    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one sample given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the current counters.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; LOG2_BUCKETS];
        for (o, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, in microseconds.
    pub sum_us: u64,
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))` µs).
    pub buckets: [u64; LOG2_BUCKETS],
}

impl HistSnapshot {
    /// Mean sample, if any were recorded.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_micros(self.sum_us / self.count))
    }

    /// Accumulates another snapshot into this one.
    pub fn add(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        for (o, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *o += b;
        }
    }

    /// Compact human-readable rendering listing only occupied buckets,
    /// one `    [lo, hi): count` line each; a placeholder line when empty.
    ///
    /// The edge buckets are labeled for what they actually hold: bucket
    /// 0 absorbs sub-µs samples (including 0), so its range is
    /// `[0µs, 2µs)`; the final bucket clamps everything larger, so its
    /// upper bound is `+Inf`, not a finite power of two.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                if i + 1 == LOG2_BUCKETS {
                    out.push_str(&format!("    [{lo:>7}µs,    +Inf): {c}\n"));
                } else {
                    out.push_str(&format!("    [{:>7}µs, {:>7}µs): {}\n", lo, 1u64 << (i + 1), c));
                }
            }
        }
        if out.is_empty() {
            out.push_str("    (no samples)\n");
        }
        out
    }

    /// Estimate of the `q`-quantile (`0 < q ≤ 1`) in microseconds,
    /// linearly interpolated within the covering log₂ bucket. Zero when
    /// empty.
    ///
    /// The rank-`r` sample (1-based, `r = ⌈q·count⌉`) lies in some
    /// bucket `[lo, hi)`; assuming samples spread evenly inside the
    /// bucket, the estimate is `lo + (hi−lo)·(position of r within the
    /// bucket)/(bucket count)`. The error is therefore bounded by the
    /// bucket width, and the estimate degenerates to the exclusive
    /// upper edge `hi` only when rank-`r` is the bucket's last sample —
    /// unlike an upper-edge (or lower-edge) rule, which is off by up to
    /// the full 2× bucket ratio regardless of where the mass sits. For
    /// the clamp bucket the nominal `[2^23, 2^24)` width is used (its
    /// true extent is unbounded, but at ≥ 8.4 s any estimate is "slow").
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().clamp(1.0, self.count as f64) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if c > 0 && cumulative >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let width = if i == 0 { 2 } else { 1u64 << i };
                let into = c - (cumulative - rank); // 1..=c
                return lo + width.saturating_mul(into) / c;
            }
        }
        u64::MAX // unreachable: the buckets sum to `count`
    }
}

/// Renders one histogram family in Prometheus text format, in base
/// seconds, from a log₂-µs snapshot — the single shared implementation
/// behind every `_seconds` histogram the daemons export, so the `le`
/// edges cannot drift between layers.
///
/// Edge audit (matches the bucket layout exactly): bucket `i` holds
/// samples in `[2^i, 2^(i+1))` µs, so its cumulative count is correct
/// under `le = 2^(i+1)/1e6` (an *inclusive* Prometheus bound covering
/// the bucket's *exclusive* upper edge — safe because integral µs < the
/// edge are also < the edge in seconds). Bucket 0 additionally absorbs
/// sub-µs samples, which `le = 2/1e6` covers. The final clamp bucket is
/// unbounded, so it gets no finite `le`; only `+Inf` covers it.
///
/// The `# HELP`/`# TYPE` preamble is emitted once per family per output
/// buffer — repeated calls for further labeled series skip it. `label`
/// adds one `key="value"` pair to every series (e.g. a backend or stage
/// label); sum and count are in base seconds / samples.
pub fn render_prometheus_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    label: Option<(&str, &str)>,
    snap: &HistSnapshot,
) {
    if !out.contains(&format!("# TYPE {name} ")) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    }
    let bucket_label = |le: &str| match label {
        Some((k, v)) => format!("{{{k}=\"{v}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let suffix = |kind: &str| match label {
        Some((k, v)) => format!("{name}_{kind}{{{k}=\"{v}\"}}"),
        None => format!("{name}_{kind}"),
    };
    let mut cumulative = 0u64;
    for (i, &b) in snap.buckets.iter().enumerate() {
        cumulative += b;
        if i + 1 < LOG2_BUCKETS {
            let le_seconds = (1u64 << (i + 1)) as f64 / 1e6;
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                bucket_label(&le_seconds.to_string())
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{} {}\n", bucket_label("+Inf"), snap.count));
    out.push_str(&format!("{} {}\n", suffix("sum"), snap.sum_us as f64 / 1e6));
    out.push_str(&format!("{} {}\n", suffix("count"), snap.count));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_log2_buckets() {
        let h = Log2Histogram::default();
        h.record(Duration::from_micros(5)); // bucket 2: [4, 8)
        h.record(Duration::from_micros(1000)); // bucket 9: [512, 1024)
        h.record_us(0); // clamps to bucket 0
        let s = h.snapshot();
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean(), Some(Duration::from_micros(335)));
    }

    #[test]
    fn huge_samples_clamp_to_last_bucket() {
        let h = Log2Histogram::default();
        h.record(Duration::from_secs(3600));
        assert_eq!(h.snapshot().buckets[LOG2_BUCKETS - 1], 1);
    }

    #[test]
    fn add_merges_and_pretty_lists_occupied() {
        let a = Log2Histogram::default();
        a.record_us(6);
        let b = Log2Histogram::default();
        b.record_us(7);
        b.record_us(100);
        let mut s = a.snapshot();
        s.add(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[2], 2);
        let p = s.pretty();
        assert!(p.contains("[      4µs,       8µs): 2"), "{p}");
        assert!(p.contains("[     64µs,     128µs): 1"), "{p}");
        assert!(HistSnapshot::default().pretty().contains("no samples"));
    }

    #[test]
    fn pretty_labels_the_edge_buckets_truthfully() {
        // Regression: bucket 0 used to print "[1µs, 2µs)" although 0µs
        // samples clamp into it, and the final clamp bucket printed the
        // finite "[8388608µs, 16777216µs)" although it is unbounded.
        let h = Log2Histogram::default();
        h.record_us(0); // bucket 0: really [0, 2)
        h.record(Duration::from_secs(3600)); // clamp bucket: really [2^23, +Inf)
        let p = h.snapshot().pretty();
        assert!(p.contains("[      0µs,       2µs): 1"), "{p}");
        assert!(p.contains("[8388608µs,    +Inf): 1"), "{p}");
        assert!(!p.contains("16777216"), "clamp bucket must not print a finite bound: {p}");
    }

    #[test]
    fn quantile_interpolates_within_the_bucket() {
        let h = Log2Histogram::default();
        // 100 samples spread across bucket 6 ([64, 128) µs).
        for i in 0..100 {
            h.record_us(64 + (i * 64) / 100);
        }
        let s = h.snapshot();
        // p50: rank 50 of 100 in [64, 128) → 64 + 64·50/100 = 96.
        assert_eq!(s.quantile_us(0.5), 96);
        // p100 degenerates to the bucket's upper edge.
        assert_eq!(s.quantile_us(1.0), 128);
        // p1: rank 1 → 64 + 64/100 = 64 (integer floor).
        assert_eq!(s.quantile_us(0.01), 64);
        assert_eq!(HistSnapshot::default().quantile_us(0.95), 0);
    }

    #[test]
    fn quantile_handles_edge_buckets() {
        let h = Log2Histogram::default();
        for _ in 0..10 {
            h.record_us(0); // bucket 0: [0, 2)
        }
        // p50 of all-zeros interpolates within [0, 2): rank 5 → 2·5/10 = 1.
        assert_eq!(h.snapshot().quantile_us(0.5), 1);
        let clamp = Log2Histogram::default();
        clamp.record(Duration::from_secs(100)); // clamp bucket
        let est = clamp.snapshot().quantile_us(0.95);
        assert!(est >= 1 << 23, "clamp estimate below the bucket: {est}");
    }

    #[test]
    fn prometheus_render_has_audited_le_edges() {
        let h = Log2Histogram::default();
        h.record_us(0); // bucket 0
        h.record_us(100); // bucket 6: le edges 128µs and up cover it
        h.record(Duration::from_secs(3600)); // clamp bucket: only +Inf covers it
        let mut out = String::new();
        render_prometheus_histogram(&mut out, "t_seconds", "test family", None, &h.snapshot());
        // Bucket 0's upper edge is 2µs = 2e-6 s and covers the 0µs sample.
        assert!(out.contains("t_seconds_bucket{le=\"0.000002\"} 1\n"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"0.000128\"} 2\n"), "{out}");
        // The clamp bucket gets no finite le: the largest finite edge is
        // 2^23 µs and excludes the clamp sample; +Inf includes it.
        assert!(out.contains("t_seconds_bucket{le=\"8.388608\"} 2\n"), "{out}");
        assert!(!out.contains("le=\"16.777216\""), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("t_seconds_count 3\n"), "{out}");
        // Exactly LOG2_BUCKETS lines: 23 finite edges + the +Inf bucket.
        let buckets = out.lines().filter(|l| l.starts_with("t_seconds_bucket")).count();
        assert_eq!(buckets, LOG2_BUCKETS);
        // Labeled series share one preamble per family.
        let mut labeled = String::new();
        render_prometheus_histogram(
            &mut labeled,
            "t_seconds",
            "test family",
            Some(("stage", "execute")),
            &h.snapshot(),
        );
        render_prometheus_histogram(
            &mut labeled,
            "t_seconds",
            "test family",
            Some(("stage", "hash")),
            &HistSnapshot::default(),
        );
        assert_eq!(labeled.matches("# TYPE t_seconds histogram").count(), 1, "{labeled}");
        assert!(
            labeled.contains("t_seconds_bucket{stage=\"execute\",le=\"+Inf\"} 3\n"),
            "{labeled}"
        );
        assert!(labeled.contains("t_seconds_sum{stage=\"hash\"} 0\n"), "{labeled}");
    }

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), LOG2_BUCKETS - 1);
    }
}
