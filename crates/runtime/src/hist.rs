//! A lock-free log₂-microsecond latency histogram, shared by every
//! runtime that measures durations.
//!
//! Extracted from the TCP transport's RTT bookkeeping (`hre-net`) so the
//! election service (`hre-svc`) can reuse the same bucket layout for
//! request latency instead of carrying a second copy: bucket `i` covers
//! `[2^i, 2^(i+1))` µs, with the last bucket absorbing everything larger.
//! All fields are atomics, so concurrent recorders never contend on a
//! lock; snapshots are taken with relaxed loads (the counters are
//! monotonic and independently meaningful).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets. `2^24` µs ≈ 16.8 s — anything slower lands in
/// the final bucket.
pub const LOG2_BUCKETS: usize = 24;

/// Live histogram: concurrent recorders, relaxed atomics.
#[derive(Debug, Default)]
pub struct Log2Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; LOG2_BUCKETS],
}

/// Index of the bucket covering `us` microseconds.
pub fn bucket_of(us: u64) -> usize {
    (64 - us.max(1).leading_zeros() as usize - 1).min(LOG2_BUCKETS - 1)
}

impl Log2Histogram {
    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one sample given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the current counters.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; LOG2_BUCKETS];
        for (o, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, in microseconds.
    pub sum_us: u64,
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))` µs).
    pub buckets: [u64; LOG2_BUCKETS],
}

impl HistSnapshot {
    /// Mean sample, if any were recorded.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_micros(self.sum_us / self.count))
    }

    /// Accumulates another snapshot into this one.
    pub fn add(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        for (o, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *o += b;
        }
    }

    /// Compact human-readable rendering listing only occupied buckets,
    /// one `    [lo, hi): count` line each; a placeholder line when empty.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let lo = 1u64 << i;
                out.push_str(&format!("    [{:>7}µs, {:>7}µs): {}\n", lo, lo << 1, c));
            }
        }
        if out.is_empty() {
            out.push_str("    (no samples)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_log2_buckets() {
        let h = Log2Histogram::default();
        h.record(Duration::from_micros(5)); // bucket 2: [4, 8)
        h.record(Duration::from_micros(1000)); // bucket 9: [512, 1024)
        h.record_us(0); // clamps to bucket 0
        let s = h.snapshot();
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean(), Some(Duration::from_micros(335)));
    }

    #[test]
    fn huge_samples_clamp_to_last_bucket() {
        let h = Log2Histogram::default();
        h.record(Duration::from_secs(3600));
        assert_eq!(h.snapshot().buckets[LOG2_BUCKETS - 1], 1);
    }

    #[test]
    fn add_merges_and_pretty_lists_occupied() {
        let a = Log2Histogram::default();
        a.record_us(6);
        let b = Log2Histogram::default();
        b.record_us(7);
        b.record_us(100);
        let mut s = a.snapshot();
        s.add(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[2], 2);
        let p = s.pretty();
        assert!(p.contains("[      4µs,       8µs): 2"), "{p}");
        assert!(p.contains("[     64µs,     128µs): 1"), "{p}");
        assert!(HistSnapshot::default().pretty().contains("no samples"));
    }

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), LOG2_BUCKETS - 1);
    }
}
