//! Capped exponential backoff — the one retry-pacing policy every
//! runtime shares.
//!
//! Extracted from `hre-net`'s reconnect loop (dial, sleep, double, cap)
//! so the cluster router's circuit-breaker probing paces itself with the
//! *same* policy instead of carrying a drifting copy. The policy is
//! deliberately minimal and deterministic: no jitter (the workspace's
//! experiments are reproducible bit-for-bit, and the consumers are
//! either single dialers or per-backend probers that cannot stampede).

use std::time::Duration;

/// A capped exponential backoff schedule: `start, 2·start, 4·start, …`
/// clamped to `cap`, until [`Backoff::reset`].
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    start: Duration,
    cap: Duration,
    current: Duration,
}

impl Backoff {
    /// A schedule beginning at `start` and doubling up to `cap`.
    pub fn new(start: Duration, cap: Duration) -> Backoff {
        let start = start.max(Duration::from_micros(1));
        Backoff { start, cap: cap.max(start), current: start }
    }

    /// The delay to apply *now*; advances the schedule (doubling, capped).
    pub fn advance(&mut self) -> Duration {
        let d = self.current;
        self.current = (self.current * 2).min(self.cap);
        d
    }

    /// The delay `advance` would return, without advancing.
    pub fn peek(&self) -> Duration {
        self.current
    }

    /// Back to the initial delay — call after a success.
    pub fn reset(&mut self) {
        self.current = self.start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap_and_resets() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(100));
        let taken: Vec<u128> = (0..9).map(|_| b.advance().as_millis()).collect();
        assert_eq!(taken, vec![1, 2, 4, 8, 16, 32, 64, 100, 100]);
        assert_eq!(b.peek().as_millis(), 100);
        b.reset();
        assert_eq!(b.advance().as_millis(), 1);
    }

    #[test]
    fn degenerate_bounds_are_clamped() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        assert!(b.advance() > Duration::ZERO, "zero start must not busy-spin");
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(1));
        assert_eq!(b.advance(), Duration::from_millis(10), "cap below start clamps to start");
        assert_eq!(b.advance(), Duration::from_millis(10));
    }
}
