//! # hre-runtime — the algorithms on real threads
//!
//! The reproduction's "hardware": one OS thread per ring process, with
//! crossbeam unbounded MPSC channels as the reliable FIFO links. The
//! same [`hre_sim::ProcessBehavior`] implementations that
//! run under the discrete-event simulator run here unchanged — real
//! concurrency, real memory ordering, no scheduler in the loop.
//!
//! Channels give exactly the model's link semantics: reliable, FIFO,
//! unbounded, single-writer/single-reader per link. A blocking `recv` is
//! the model's message-blocking `rcv`; a process whose head message matches
//! no guard ([`Reaction::Ignored`](hre_sim::Reaction)) can never make
//! progress again and its thread exits reporting a wedge.
//!
//! Used by the E11 experiment for wall-clock benchmarking and by
//! integration tests to confirm simulator/thread-runtime agreement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod driver;
pub mod epoch;
pub mod hist;
pub mod trace;

pub use backoff::Backoff;
pub use driver::{drive_node, NodeTransport, RecvFault, SendFault, ThreadOutcome};
pub use epoch::EpochClock;
pub use hist::{bucket_of, render_prometheus_histogram, HistSnapshot, Log2Histogram, LOG2_BUCKETS};
pub use trace::{FlightRecorder, SpanAttrs, SpanId, SpanRecord, Stage, TraceId, DEFAULT_TRACE_CAP};

use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender,
};
use hre_ring::RingLabeling;
use hre_sim::{Algorithm, ElectionState, ProcessBehavior};
use hre_words::Label;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of one threaded execution.
#[derive(Clone, Debug)]
pub struct ThreadedReport {
    /// Final specification variables, per process.
    pub elections: Vec<ElectionState>,
    /// Per-thread outcome.
    pub outcomes: Vec<ThreadOutcome>,
    /// Total messages sent across all links.
    pub messages: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl ThreadedReport {
    /// Index of the unique leader, if there is exactly one.
    pub fn leader(&self) -> Option<usize> {
        let leaders: Vec<usize> = self
            .elections
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_leader)
            .map(|(i, _)| i)
            .collect();
        (leaders.len() == 1).then(|| leaders[0])
    }

    /// `true` iff every thread halted and the terminal states satisfy the
    /// leader-election specification's end conditions.
    pub fn clean(&self) -> bool {
        if !self.outcomes.iter().all(|o| *o == ThreadOutcome::Halted) {
            return false;
        }
        let Some(l) = self.leader() else { return false };
        let lid = self.elections[l].leader;
        lid.is_some() && self.elections.iter().all(|e| e.done && e.halted && e.leader == lid)
    }
}

/// Options for a threaded run.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedOptions {
    /// A thread that waits this long without receiving gives up
    /// (`TimedOut`). Guards CI against non-terminating algorithms.
    pub idle_timeout: Duration,
    /// `None` (default): unbounded links, as the paper's model assumes.
    /// `Some(c)`: bounded crossbeam channels of capacity `c` — real
    /// backpressure. The ring algorithms send at most one message per
    /// action and consume before sending, so they are deadlock-free even
    /// at capacity 1 (see the tests); a stalled send past
    /// [`Self::send_timeout`] ends the thread with
    /// [`ThreadOutcome::Stalled`].
    pub channel_capacity: Option<usize>,
    /// How long a bounded send may block before the thread reports a
    /// stall. Irrelevant for unbounded links.
    pub send_timeout: Duration,
}

impl Default for ThreadedOptions {
    fn default() -> Self {
        ThreadedOptions {
            idle_timeout: Duration::from_secs(10),
            channel_capacity: None,
            send_timeout: Duration::from_secs(10),
        }
    }
}

/// One ring node's links realized as crossbeam channels: the
/// [`NodeTransport`] of the in-process runtime.
struct ChannelTransport<M> {
    tx: Sender<M>,
    rx: Receiver<M>,
    send_timeout: Duration,
}

impl<M> NodeTransport<M> for ChannelTransport<M> {
    fn send(&mut self, msg: M) -> Result<(), SendFault> {
        // The receiver may already have halted and dropped its endpoint;
        // the message is then provably irrelevant (the halted process would
        // never have received it), so a disconnect is swallowed. A timeout,
        // however, is a genuine backpressure stall.
        match self.tx.send_timeout(msg, self.send_timeout) {
            Ok(()) | Err(SendTimeoutError::Disconnected(_)) => Ok(()),
            Err(SendTimeoutError::Timeout(_)) => Err(SendFault::Stalled),
        }
    }

    fn recv(&mut self, idle: Duration) -> Result<M, RecvFault> {
        match self.rx.recv_timeout(idle) {
            Ok(msg) => Ok(msg),
            Err(RecvTimeoutError::Timeout) => Err(RecvFault::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvFault::Disconnected),
        }
    }
}

/// Runs `algo` on `ring` with one OS thread per process and crossbeam
/// channels as links. Returns once every thread has finished (halted,
/// wedged, or timed out).
pub fn run_threaded<A>(algo: &A, ring: &RingLabeling, opts: ThreadedOptions) -> ThreadedReport
where
    A: Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as ProcessBehavior>::Msg: Send + 'static,
{
    let n = ring.n();
    let started = Instant::now();
    let sent_total = Arc::new(AtomicU64::new(0));

    // Channel i carries messages from p(i) to p(i+1); thread i receives
    // from channel (i-1) and sends on channel i.
    let mut senders: Vec<Option<Sender<_>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<_>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = match opts.channel_capacity {
            Some(c) => bounded(c.max(1)),
            None => unbounded(),
        };
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }

    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let rx = receivers[(i + n - 1) % n].take().expect("each rx taken once");
        let tx = senders[i].take().expect("each tx taken once");
        let mut proc = algo.spawn(ring.label(i));
        let sent = Arc::clone(&sent_total);
        let idle = opts.idle_timeout;
        let send_timeout = opts.send_timeout;
        handles.push(std::thread::spawn(move || {
            let mut transport = ChannelTransport { tx, rx, send_timeout };
            let (outcome, sent_here) = drive_node(&mut proc, &mut transport, idle);
            sent.fetch_add(sent_here, Ordering::Relaxed);
            // Channels drop here; peers past their own halt never notice.
            (proc, outcome)
        }));
    }

    let mut elections = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    for h in handles {
        let (proc, outcome) = h.join().expect("process thread panicked");
        elections.push(proc.election());
        outcomes.push(outcome);
    }

    ThreadedReport {
        elections,
        outcomes,
        messages: sent_total.load(Ordering::Relaxed),
        wall: started.elapsed(),
    }
}

/// Convenience: spawn-and-check one algorithm on one ring; panics with a
/// diagnostic if the run is not clean. Used by examples.
pub fn run_threaded_expect_leader<A>(
    algo: &A,
    ring: &RingLabeling,
) -> (usize, Label, ThreadedReport)
where
    A: Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as ProcessBehavior>::Msg: Send + 'static,
{
    let rep = run_threaded(algo, ring, ThreadedOptions::default());
    assert!(rep.clean(), "threaded run not clean: {:?}", rep.outcomes);
    let leader = rep.leader().expect("clean implies unique leader");
    let label = rep.elections[leader].leader.expect("leader label set");
    (leader, label, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_baselines::{ChangRoberts, OracleN, Peterson};
    use hre_core::{Ak, Bk};
    use hre_ring::{catalog, generate};
    use hre_sim::{run, RoundRobinSched, RunOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ak_on_threads_elects_figure1_leader() {
        let ring = catalog::figure1_ring();
        let rep = run_threaded(&Ak::new(3), &ring, ThreadedOptions::default());
        assert!(rep.clean(), "{:?}", rep.outcomes);
        assert_eq!(rep.leader(), Some(0));
    }

    #[test]
    fn bk_on_threads_elects_figure1_leader() {
        let ring = catalog::figure1_ring();
        let rep = run_threaded(&Bk::new(3), &ring, ThreadedOptions::default());
        assert!(rep.clean(), "{:?}", rep.outcomes);
        assert_eq!(rep.leader(), Some(0));
    }

    #[test]
    fn threaded_and_simulated_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let ring = generate::random_a_inter_kk(8, 3, 3, &mut rng);
            let sim =
                run(&Ak::new(3), &ring, &mut RoundRobinSched::default(), RunOptions::default());
            let thr = run_threaded(&Ak::new(3), &ring, ThreadedOptions::default());
            assert!(sim.clean() && thr.clean());
            assert_eq!(thr.leader(), sim.leader, "{ring:?}");
            // Message counts agree too: the algorithms are confluent.
            assert_eq!(thr.messages, sim.metrics.messages, "{ring:?}");
        }
    }

    #[test]
    fn baselines_run_on_threads() {
        let mut rng = StdRng::seed_from_u64(8);
        let ring = generate::random_k1(10, &mut rng);
        for rep in [
            run_threaded(&ChangRoberts, &ring, ThreadedOptions::default()),
            run_threaded(&Peterson, &ring, ThreadedOptions::default()),
            run_threaded(&OracleN::new(10), &ring, ThreadedOptions::default()),
        ] {
            assert!(rep.clean(), "{:?}", rep.outcomes);
        }
    }

    #[test]
    fn bounded_links_work_even_at_capacity_one() {
        // Both algorithms consume before sending and send at most one
        // message per action, so even capacity-1 links cannot deadlock the
        // ring (see the module docs for the counting argument). Outcomes
        // match the unbounded run exactly.
        let ring = catalog::figure1_ring();
        for cap in [1usize, 2, 8] {
            let opts = ThreadedOptions {
                channel_capacity: Some(cap),
                send_timeout: Duration::from_secs(5),
                ..Default::default()
            };
            let ak = run_threaded(&Ak::new(3), &ring, opts);
            assert!(ak.clean(), "Ak cap={cap}: {:?}", ak.outcomes);
            assert_eq!(ak.leader(), Some(0), "cap={cap}");
            let bk = run_threaded(&Bk::new(3), &ring, opts);
            assert!(bk.clean(), "Bk cap={cap}: {:?}", bk.outcomes);
            assert_eq!(bk.leader(), Some(0), "cap={cap}");
        }
    }

    #[test]
    fn bounded_and_unbounded_agree_on_messages() {
        let mut rng = StdRng::seed_from_u64(19);
        let ring = generate::random_a_inter_kk(10, 3, 4, &mut rng);
        let unbounded_rep = run_threaded(&Ak::new(3), &ring, ThreadedOptions::default());
        let bounded_rep = run_threaded(
            &Ak::new(3),
            &ring,
            ThreadedOptions { channel_capacity: Some(2), ..Default::default() },
        );
        assert!(unbounded_rep.clean() && bounded_rep.clean());
        assert_eq!(unbounded_rep.leader(), bounded_rep.leader());
        assert_eq!(unbounded_rep.messages, bounded_rep.messages);
    }

    #[test]
    fn timeout_guards_against_nontermination() {
        // OracleN with a wrong n never elects on this ring; threads must
        // time out rather than hang forever.
        let ring = hre_ring::RingLabeling::from_raw(&[1, 2, 1, 3]);
        let rep = run_threaded(
            &OracleN::new(3),
            &ring,
            ThreadedOptions { idle_timeout: Duration::from_millis(200), ..Default::default() },
        );
        assert!(!rep.clean());
        assert!(rep.outcomes.contains(&ThreadOutcome::TimedOut));
    }
}
