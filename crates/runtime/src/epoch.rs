//! The control plane's epoch clock: a monotone term counter with
//! max-merge semantics.
//!
//! Every coordination artifact the control plane produces — an election
//! round, a committed ring plan, a pushed topology configuration — is
//! stamped with an **epoch**. Epochs only move forward, and every
//! message carrying one is an opportunity to learn a higher value
//! ([`EpochClock::observe`]); a node that was partitioned away and
//! still believes in an old epoch is *fenced*: its stale proposals and
//! config pushes compare below the receiver's clock and are rejected.
//!
//! The clock is deliberately not a Lamport clock over every message —
//! only coordination events advance it — and it carries no identity:
//! ties are impossible for committed plans because a commit requires a
//! strictly larger epoch than anything previously prepared or
//! committed on that node.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone epoch counter shared by a process's control-plane threads.
#[derive(Debug, Default)]
pub struct EpochClock {
    current: AtomicU64,
}

impl EpochClock {
    /// A clock at epoch 0 (no coordination has happened yet).
    pub fn new() -> EpochClock {
        EpochClock { current: AtomicU64::new(0) }
    }

    /// The highest epoch this process has seen.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// Max-merges an epoch seen on the wire; returns the clock after the
    /// merge. Never moves backward.
    pub fn observe(&self, seen: u64) -> u64 {
        let mut cur = self.current.load(Ordering::Acquire);
        while seen > cur {
            match self.current.compare_exchange_weak(cur, seen, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return seen,
                Err(actual) => cur = actual,
            }
        }
        cur
    }

    /// Claims the next epoch for a fresh coordination attempt: advances
    /// the clock past its current value and returns the claimed epoch.
    pub fn next(&self) -> u64 {
        self.current.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Whether `epoch` is stale, i.e. strictly below the clock. A stale
    /// epoch on an incoming proposal or config push means the sender is
    /// behind and must be refused.
    pub fn is_stale(&self, epoch: u64) -> bool {
        epoch < self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_only_forward() {
        let c = EpochClock::new();
        assert_eq!(c.current(), 0);
        assert_eq!(c.observe(5), 5);
        assert_eq!(c.observe(3), 5, "lower observations are no-ops");
        assert_eq!(c.current(), 5);
        assert!(c.is_stale(4));
        assert!(!c.is_stale(5));
        assert!(!c.is_stale(9));
    }

    #[test]
    fn next_claims_past_everything_observed() {
        let c = EpochClock::new();
        c.observe(7);
        assert_eq!(c.next(), 8);
        assert_eq!(c.next(), 9);
        assert_eq!(c.current(), 9);
    }

    #[test]
    fn concurrent_observe_and_next_stay_monotone() {
        let c = std::sync::Arc::new(EpochClock::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for i in 0..500u64 {
                        let e = if i % 2 == 0 { c.next() } else { c.observe(t * 1000 + i) };
                        assert!(e >= last, "clock went backward: {e} < {last}");
                        last = e;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
