//! Flight recorder — a lock-free, fixed-capacity span ring buffer for
//! end-to-end request tracing across the serving stack.
//!
//! Every daemon (the election service, the cluster router, a traced
//! transport run) owns one [`FlightRecorder`]. Recording a span is the
//! hot path and is engineered accordingly:
//!
//! * **No locks.** A global ticket counter (`fetch_add`) claims a slot;
//!   each slot is a seqlock of plain `AtomicU64` fields (this crate
//!   forbids `unsafe`, and needs none). Writers never wait on readers,
//!   readers detect and skip torn slots by re-checking the slot's
//!   sequence word.
//! * **No allocation.** All slots are preallocated at construction;
//!   span payloads are two untyped `u64` attributes whose meaning is
//!   fixed per [`Stage`]. Strings only appear on the cold read side
//!   ([`FlightRecorder::spans`], [`render_tree`]).
//! * **Fixed capacity.** The buffer holds the most recent `capacity`
//!   spans; older spans are overwritten. A capacity of 0 disables
//!   recording entirely (id minting still works, so trace propagation
//!   headers keep flowing) — that is the "tracing off" configuration
//!   the E21 overhead experiment compares against.
//!
//! Timestamps are microseconds on the recorder's own monotonic clock
//! (`Instant` relative to the recorder's creation), so spans from one
//! process order and subtract exactly; spans merged across processes
//! (`src` field) are related only through parent/child edges, never by
//! comparing clocks.
//!
//! Per-stage latency histograms ([`FlightRecorder::stage_snapshots`])
//! are fed by the same `record_span` calls and back the Prometheus
//! `hre_stage_seconds` family on both daemons.

use crate::hist::{HistSnapshot, Log2Histogram};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default flight-recorder capacity (spans retained).
pub const DEFAULT_TRACE_CAP: usize = 4096;

/// Identifier of one end-to-end request trace, propagated across
/// processes via the `X-Trace-Id` header (16 lowercase hex digits).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifier of one span within a trace. `SpanId::NONE` (zero) marks
/// a root span with no parent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl TraceId {
    /// The wire form: 16 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form; `None` for malformed or all-zero ids.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        parse_hex_u64(s).filter(|&v| v != 0).map(TraceId)
    }
}

impl SpanId {
    /// The absent parent.
    pub const NONE: SpanId = SpanId(0);

    /// `true` iff this is [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The wire form: 16 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form; `None` for malformed input (zero is legal:
    /// it is the explicit "no parent").
    pub fn from_hex(s: &str) -> Option<SpanId> {
        parse_hex_u64(s).map(SpanId)
    }
}

/// Splitmix64 mixing step — the common core of the id generators.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Strict 1–16 digit hex parse (the header forms are zero-padded to 16,
/// but shorter forms are accepted for hand-typed CLI arguments).
fn parse_hex_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The fixed vocabulary of span stages across the whole stack. Spans
/// carry the stage as a small integer so recording stays allocation-free;
/// the names appear only on the read side (JSON, trees, metric labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Whole request as seen by one daemon (root span per process).
    Request = 0,
    /// Cluster: canonical-rotation shard-key hash + ring lookup.
    Hash,
    /// Cluster: breaker-state filtering of the candidate backends.
    BreakerCheck,
    /// Cluster: one proxied attempt against one backend.
    Attempt,
    /// Cluster: a hedge fired (instant event; `a` = hedge backend).
    Hedge,
    /// Cluster: failover launched (instant event; `a` = next backend).
    Failover,
    /// Service: time a job spent queued before a worker picked it up.
    QueueWait,
    /// Service: canonical-rotation result-cache probe (`a` = 1 on hit).
    CacheLookup,
    /// Service: worker-side election computation (cache misses only).
    Execute,
    /// Core: one election run (`a` = messages, `b` = time units).
    Election,
    /// Transport: a frame was retransmitted (`a` = seq, `b` = attempt).
    Retransmit,
    /// Transport: reassembly event (`a` = seq; `b` = 1 dup, 2 buffered).
    Reassembly,
    /// Control plane: one membership round — view change through the
    /// `Ak` coordinator election (`a` = epoch, `b` = ring size).
    Membership,
    /// Control plane: a topology config push applied or refused
    /// (`a` = epoch, `b` = 1 accepted / 0 rejected as stale).
    Reconfigure,
}

/// Number of distinct stages (length of [`Stage::ALL`]).
pub const STAGE_COUNT: usize = 14;

impl Stage {
    /// Every stage, indexed by its wire code.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Request,
        Stage::Hash,
        Stage::BreakerCheck,
        Stage::Attempt,
        Stage::Hedge,
        Stage::Failover,
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::Execute,
        Stage::Election,
        Stage::Retransmit,
        Stage::Reassembly,
        Stage::Membership,
        Stage::Reconfigure,
    ];

    /// Stable lowercase name (Prometheus `stage` label, JSON, trees).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Hash => "hash",
            Stage::BreakerCheck => "breaker-check",
            Stage::Attempt => "attempt",
            Stage::Hedge => "hedge",
            Stage::Failover => "failover",
            Stage::QueueWait => "queue-wait",
            Stage::CacheLookup => "cache-lookup",
            Stage::Execute => "execute",
            Stage::Election => "election",
            Stage::Retransmit => "retransmit",
            Stage::Reassembly => "reassembly",
            Stage::Membership => "membership",
            Stage::Reconfigure => "reconfigure",
        }
    }

    /// Inverse of the wire code (`stage as u64`).
    pub fn from_code(code: u64) -> Option<Stage> {
        Self::ALL.get(code as usize).copied()
    }

    /// Inverse of [`Stage::as_str`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Self::ALL.iter().copied().find(|s| s.as_str() == name)
    }

    /// Human rendering of the stage's two attributes ("" when both are
    /// meaningless for this stage).
    pub fn describe(self, a: u64, b: u64) -> String {
        match self {
            Stage::Hash => format!("backend={a} of {b}"),
            Stage::BreakerCheck => format!("admitted={a}/{b}"),
            Stage::Attempt | Stage::Hedge | Stage::Failover => format!("backend={a}"),
            Stage::CacheLookup => (if a == 1 { "hit" } else { "miss" }).to_string(),
            Stage::Election => format!("messages={a} rounds={b}"),
            Stage::Retransmit => format!("seq={a} attempt={b}"),
            Stage::Reassembly => {
                format!("seq={a} {}", if b == 1 { "duplicate" } else { "buffered" })
            }
            Stage::Membership => format!("epoch={a} ring={b}"),
            Stage::Reconfigure => {
                format!("epoch={a} {}", if b == 1 { "accepted" } else { "rejected" })
            }
            Stage::Request | Stage::QueueWait | Stage::Execute => String::new(),
        }
    }
}

/// Optional per-span markers, packed into the slot's stage word.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanAttrs {
    /// First stage-specific attribute (see [`Stage`] docs).
    pub a: u64,
    /// Second stage-specific attribute.
    pub b: u64,
    /// The spanned work failed.
    pub err: bool,
    /// This span is the root this process created for the request
    /// (its parent, if any, lives in another process).
    pub root: bool,
}

const FLAG_ERR: u64 = 1 << 8;
const FLAG_ROOT: u64 = 1 << 9;

/// One decoded span, as read back from the recorder (or parsed from a
/// peer daemon's `/trace/<id>` JSON).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span.
    pub id: SpanId,
    /// Parent span ([`SpanId::NONE`] for an unparented root).
    pub parent: SpanId,
    /// What the span measures.
    pub stage: Stage,
    /// Start, µs on the recording process's monotonic clock.
    pub start_us: u64,
    /// Duration, µs (0 for instant events).
    pub dur_us: u64,
    /// Stage-specific attribute.
    pub a: u64,
    /// Stage-specific attribute.
    pub b: u64,
    /// The spanned work failed.
    pub err: bool,
    /// Root span of its recording process.
    pub root: bool,
    /// Which process recorded it ("" until merged across daemons).
    pub src: String,
}

/// One seqlock slot. `seq` is `2·ticket+1` while a write is in flight
/// and `2·ticket+2` once stable, so a reader can both detect torn reads
/// and recover the slot's logical position in the stream.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    id: AtomicU64,
    parent: AtomicU64,
    stage_flags: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// The flight recorder: see the module docs for the design.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    head: AtomicU64,
    ids: AtomicU64,
    trace_seed: AtomicU64,
    epoch: Instant,
    stage_hist: [Log2Histogram; STAGE_COUNT],
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` spans
    /// (0 disables recording; ids still mint).
    pub fn new(capacity: usize) -> Arc<FlightRecorder> {
        // Seed from wall time *and* a per-process recorder counter:
        // several recorders can share one process (router + backends in
        // a test), and merged traces need their span-id streams disjoint.
        static RECORDER_NONCE: AtomicU64 = AtomicU64::new(0);
        let nonce = RECORDER_NONCE.fetch_add(1, Ordering::Relaxed);
        let seed = std::time::SystemTime::UNIX_EPOCH
            .elapsed()
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            ^ splitmix64(nonce);
        Arc::new(FlightRecorder {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
            ids: AtomicU64::new(splitmix64(seed)),
            trace_seed: AtomicU64::new(seed),
            epoch: Instant::now(),
            stage_hist: std::array::from_fn(|_| Log2Histogram::default()),
        })
    }

    /// A recorder that records nothing (capacity 0).
    pub fn disabled() -> Arc<FlightRecorder> {
        Self::new(0)
    }

    /// Spans retained (0 = recording disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Mints a fresh, non-zero trace id (splitmix64 over a seeded
    /// counter: unique within the process, collision-unlikely across).
    pub fn mint_trace(&self) -> TraceId {
        loop {
            let x = self.trace_seed.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
            let z = splitmix64(x);
            if z != 0 {
                return TraceId(z);
            }
        }
    }

    /// Allocates the next span id — non-zero and drawn from the same
    /// splitmix64 stream as trace ids, **not** a sequential counter:
    /// merged traces parent spans across daemon boundaries, so ids from
    /// different processes must not collide (counters would all start
    /// at 1).
    pub fn next_span_id(&self) -> SpanId {
        loop {
            let x = self.ids.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
            let z = splitmix64(x);
            if z != 0 {
                return SpanId(z);
            }
        }
    }

    /// Microseconds of `t` on this recorder's clock.
    pub fn clock_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros().min(u64::MAX as u128) as u64
    }

    /// Records a completed span and returns its freshly minted id.
    /// Lock-free, allocation-free; a no-op (beyond the id) at capacity 0.
    pub fn record_span(
        &self,
        trace: TraceId,
        parent: SpanId,
        stage: Stage,
        start: Instant,
        end: Instant,
        attrs: SpanAttrs,
    ) -> SpanId {
        let id = self.next_span_id();
        self.record_span_with_id(id, trace, parent, stage, start, end, attrs);
        id
    }

    /// Records a completed span under a pre-allocated id (used when the
    /// id had to be propagated — e.g. as a child's parent — before the
    /// span finished).
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_with_id(
        &self,
        id: SpanId,
        trace: TraceId,
        parent: SpanId,
        stage: Stage,
        start: Instant,
        end: Instant,
        attrs: SpanAttrs,
    ) {
        if self.slots.is_empty() || trace.0 == 0 {
            return;
        }
        let dur = end.saturating_duration_since(start);
        self.stage_hist[stage as usize].record(dur);
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) % self.slots.len()];
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.trace.store(trace.0, Ordering::Relaxed);
        slot.id.store(id.0, Ordering::Relaxed);
        slot.parent.store(parent.0, Ordering::Relaxed);
        let flags = (stage as u64)
            | if attrs.err { FLAG_ERR } else { 0 }
            | if attrs.root { FLAG_ROOT } else { 0 };
        slot.stage_flags.store(flags, Ordering::Relaxed);
        slot.start_us.store(self.clock_us(start), Ordering::Relaxed);
        slot.dur_us.store(dur.as_micros().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        slot.a.store(attrs.a, Ordering::Relaxed);
        slot.b.store(attrs.b, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Records an instant event (a zero-duration span) at `now`.
    pub fn record_event(&self, trace: TraceId, parent: SpanId, stage: Stage, a: u64, b: u64) {
        let now = Instant::now();
        self.record_span(trace, parent, stage, now, now, SpanAttrs { a, b, ..Default::default() });
    }

    /// Every stable span currently retained, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let cap = self.slots.len() as u64;
        if cap == 0 {
            return Vec::new();
        }
        let head = self.head.load(Ordering::Acquire);
        let first = head.saturating_sub(cap);
        let mut out = Vec::new();
        for ticket in first..head {
            let slot = &self.slots[(ticket as usize) % self.slots.len()];
            if slot.seq.load(Ordering::Acquire) != ticket * 2 + 2 {
                continue; // overwritten, or a write is in flight
            }
            let rec = SpanRecord {
                trace: TraceId(slot.trace.load(Ordering::Acquire)),
                id: SpanId(slot.id.load(Ordering::Acquire)),
                parent: SpanId(slot.parent.load(Ordering::Acquire)),
                stage: Stage::Request, // patched below
                start_us: slot.start_us.load(Ordering::Acquire),
                dur_us: slot.dur_us.load(Ordering::Acquire),
                a: slot.a.load(Ordering::Acquire),
                b: slot.b.load(Ordering::Acquire),
                err: false,
                root: false,
                src: String::new(),
            };
            let flags = slot.stage_flags.load(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != ticket * 2 + 2 {
                continue; // torn: the slot was reused mid-read
            }
            let Some(stage) = Stage::from_code(flags & 0xff) else { continue };
            out.push(SpanRecord {
                stage,
                err: flags & FLAG_ERR != 0,
                root: flags & FLAG_ROOT != 0,
                ..rec
            });
        }
        out
    }

    /// The retained spans of one trace, oldest first.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<SpanRecord> {
        let mut spans = self.spans();
        spans.retain(|s| s.trace == trace);
        spans
    }

    /// The most recent root spans (newest first, at most `limit`) — the
    /// index behind `GET /trace/recent`.
    pub fn recent_roots(&self, limit: usize) -> Vec<SpanRecord> {
        let mut roots: Vec<SpanRecord> = self.spans().into_iter().filter(|s| s.root).collect();
        roots.reverse();
        roots.truncate(limit);
        roots
    }

    /// Age of the recorder's clock, µs (for "how long ago" renderings).
    pub fn now_us(&self) -> u64 {
        self.clock_us(Instant::now())
    }

    /// Latency histogram of one stage, fed by every recorded span.
    pub fn stage_snapshot(&self, stage: Stage) -> HistSnapshot {
        self.stage_hist[stage as usize].snapshot()
    }

    /// Snapshots of every stage with at least one sample.
    pub fn stage_snapshots(&self) -> Vec<(Stage, HistSnapshot)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.stage_snapshot(s)))
            .filter(|(_, snap)| snap.count > 0)
            .collect()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<FlightRecorder>, TraceId, SpanId)>> =
        const { RefCell::new(None) };
}

/// Scope guard restoring the previously current span on drop.
pub struct CurrentSpan {
    prev: Option<(Arc<FlightRecorder>, TraceId, SpanId)>,
}

/// Makes `(trace, span)` the calling thread's current span until the
/// returned guard drops. Deep layers with no parameter path to the
/// recorder (the core election hook) attach through this.
pub fn set_current(rec: &Arc<FlightRecorder>, trace: TraceId, span: SpanId) -> CurrentSpan {
    let prev = CURRENT.with(|c| c.borrow_mut().replace((Arc::clone(rec), trace, span)));
    CurrentSpan { prev }
}

impl Drop for CurrentSpan {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Calls `f` with the thread's current span context, if any.
pub fn with_current<R>(f: impl FnOnce(&Arc<FlightRecorder>, TraceId, SpanId) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(rec, t, s)| f(rec, *t, *s)))
}

/// Human-scale duration: integral µs below 1 ms, fractional ms above.
pub fn fmt_dur_us(us: u64) -> String {
    if us >= 1000 {
        format!("{:.1}ms", us as f64 / 1000.0)
    } else {
        format!("{us}µs")
    }
}

/// Renders a set of spans (possibly merged from several daemons) as an
/// indented tree. Spans whose parent is absent from the set are printed
/// as roots; children sort by start time on their recording process's
/// clock. The same rendering backs `hre trace` and the slow-request log.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let ids: HashSet<u64> = spans.iter().map(|s| s.id.0).collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if !s.parent.is_none() && ids.contains(&s.parent.0) && s.parent != s.id {
            children.entry(s.parent.0).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let by_start = |xs: &mut Vec<usize>| {
        xs.sort_by_key(|&i| (spans[i].start_us, spans[i].id.0));
    };
    by_start(&mut roots);
    for xs in children.values_mut() {
        by_start(xs);
    }
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    let mut guard = 0usize;
    while let Some((i, depth)) = stack.pop() {
        guard += 1;
        if guard > spans.len() + 1 {
            break; // cycle in parent links (corrupt input): stop printing
        }
        let s = &spans[i];
        let desc = s.stage.describe(s.a, s.b);
        let _ = write!(out, "{:indent$}{}", "", s.stage.as_str(), indent = depth * 2);
        if !s.src.is_empty() {
            let _ = write!(out, " [{}]", s.src);
        }
        if !desc.is_empty() {
            let _ = write!(out, " {desc}");
        }
        if s.dur_us > 0 || s.stage == Stage::Request {
            let _ = write!(out, " {}", fmt_dur_us(s.dur_us));
        }
        if s.err {
            out.push_str(" ERR");
        }
        out.push('\n');
        if let Some(kids) = children.get(&s.id.0) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no spans)\n");
    }
    out
}

/// `true` iff `spans` form one connected tree: exactly one unparented
/// root, and every other span's parent present in the set. The
/// propagation integration tests assert this end to end.
pub fn is_connected_tree(spans: &[SpanRecord]) -> bool {
    if spans.is_empty() {
        return false;
    }
    let ids: HashSet<u64> = spans.iter().map(|s| s.id.0).collect();
    if ids.len() != spans.len() {
        return false; // duplicate ids
    }
    let mut roots = 0usize;
    for s in spans {
        if s.parent.is_none() || !ids.contains(&s.parent.0) {
            roots += 1;
        } else if s.parent == s.id {
            return false;
        }
    }
    roots == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn rec_with(cap: usize) -> Arc<FlightRecorder> {
        FlightRecorder::new(cap)
    }

    #[test]
    fn ids_parse_and_render_as_hex() {
        let t = TraceId(0xdead_beef_0000_0001);
        assert_eq!(t.to_hex(), "deadbeef00000001");
        assert_eq!(TraceId::from_hex("deadbeef00000001"), Some(t));
        assert_eq!(TraceId::from_hex("0"), None, "zero trace id is invalid");
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(SpanId::from_hex("0"), Some(SpanId::NONE));
        assert_eq!(SpanId::from_hex("1f"), Some(SpanId(0x1f)));
    }

    #[test]
    fn stages_round_trip_codes_and_names() {
        for (code, &stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage as usize, code);
            assert_eq!(Stage::from_code(code as u64), Some(stage));
            assert_eq!(Stage::from_name(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::from_code(999), None);
        assert_eq!(Stage::from_name("nope"), None);
    }

    #[test]
    fn records_and_reads_back_spans_in_order() {
        let rec = rec_with(16);
        let trace = rec.mint_trace();
        let t0 = Instant::now();
        let root = rec.record_span(
            trace,
            SpanId::NONE,
            Stage::Request,
            t0,
            t0 + Duration::from_millis(2),
            SpanAttrs { root: true, ..Default::default() },
        );
        rec.record_span(
            trace,
            root,
            Stage::CacheLookup,
            t0,
            t0 + Duration::from_micros(5),
            SpanAttrs { a: 1, ..Default::default() },
        );
        rec.record_event(trace, root, Stage::Failover, 2, 0);
        let spans = rec.trace_spans(trace);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].stage, Stage::Request);
        assert!(spans[0].root);
        assert_eq!(spans[0].dur_us, 2000);
        assert_eq!(spans[1].parent, root);
        assert_eq!(spans[1].a, 1);
        assert_eq!(spans[2].stage, Stage::Failover);
        assert!(is_connected_tree(&spans));
        // Other traces don't leak in.
        assert!(rec.trace_spans(rec.mint_trace()).is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_recent_roots_index_newest_first() {
        let rec = rec_with(4);
        let now = Instant::now();
        let mut traces = Vec::new();
        for _ in 0..6 {
            let t = rec.mint_trace();
            traces.push(t);
            rec.record_span(
                t,
                SpanId::NONE,
                Stage::Request,
                now,
                now,
                SpanAttrs { root: true, ..Default::default() },
            );
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 4, "fixed capacity holds the newest 4");
        assert!(rec.trace_spans(traces[0]).is_empty(), "oldest overwritten");
        assert!(!rec.trace_spans(traces[5]).is_empty());
        let recent = rec.recent_roots(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].trace, traces[5], "newest first");
        assert_eq!(recent[1].trace, traces[4]);
    }

    #[test]
    fn capacity_zero_disables_recording_but_still_mints() {
        let rec = FlightRecorder::disabled();
        let trace = rec.mint_trace();
        assert_ne!(trace.0, 0);
        let now = Instant::now();
        let id =
            rec.record_span(trace, SpanId::NONE, Stage::Request, now, now, SpanAttrs::default());
        assert!(!id.is_none(), "ids keep flowing for header propagation");
        assert!(rec.spans().is_empty());
        assert_eq!(rec.stage_snapshot(Stage::Request).count, 0);
    }

    #[test]
    fn mint_trace_is_unique_and_nonzero() {
        let rec = rec_with(1);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let t = rec.mint_trace();
            assert_ne!(t.0, 0);
            assert!(seen.insert(t.0), "duplicate trace id");
        }
    }

    #[test]
    fn stage_histograms_follow_spans() {
        let rec = rec_with(8);
        let t = rec.mint_trace();
        let t0 = Instant::now();
        rec.record_span(
            t,
            SpanId::NONE,
            Stage::Execute,
            t0,
            t0 + Duration::from_micros(100),
            SpanAttrs::default(),
        );
        rec.record_span(
            t,
            SpanId::NONE,
            Stage::Execute,
            t0,
            t0 + Duration::from_micros(300),
            SpanAttrs::default(),
        );
        let snap = rec.stage_snapshot(Stage::Execute);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_us, 400);
        let stages: Vec<Stage> = rec.stage_snapshots().iter().map(|(s, _)| *s).collect();
        assert_eq!(stages, vec![Stage::Execute]);
    }

    #[test]
    fn current_span_guard_nests_and_restores() {
        let rec = rec_with(4);
        let t = rec.mint_trace();
        assert!(with_current(|_, _, _| ()).is_none());
        {
            let _g1 = set_current(&rec, t, SpanId(7));
            assert_eq!(with_current(|_, _, s| s), Some(SpanId(7)));
            {
                let _g2 = set_current(&rec, t, SpanId(9));
                assert_eq!(with_current(|_, _, s| s), Some(SpanId(9)));
            }
            assert_eq!(with_current(|_, _, s| s), Some(SpanId(7)));
        }
        assert!(with_current(|_, _, _| ()).is_none());
    }

    #[test]
    fn concurrent_recorders_never_corrupt_the_buffer() {
        let rec = rec_with(64);
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                let trace = TraceId(th + 1);
                let now = Instant::now();
                for i in 0..500 {
                    rec.record_span(
                        trace,
                        SpanId::NONE,
                        Stage::Attempt,
                        now,
                        now,
                        SpanAttrs { a: th, b: i, ..Default::default() },
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let spans = rec.spans();
        assert!(spans.len() <= 64);
        assert!(!spans.is_empty());
        for s in &spans {
            assert!(matches!(s.stage, Stage::Attempt));
            assert!((1..=4).contains(&s.trace.0), "field mix-up: {s:?}");
            assert_eq!(s.a, s.trace.0 - 1, "a/trace torn: {s:?}");
        }
        assert_eq!(rec.stage_snapshot(Stage::Attempt).count, 2000);
    }

    #[test]
    fn render_tree_indents_children_and_marks_errors() {
        let rec = rec_with(16);
        let trace = rec.mint_trace();
        let t0 = Instant::now();
        let root = rec.record_span(
            trace,
            SpanId::NONE,
            Stage::Request,
            t0,
            t0 + Duration::from_millis(3),
            SpanAttrs { root: true, ..Default::default() },
        );
        rec.record_span(
            trace,
            root,
            Stage::Attempt,
            t0,
            t0 + Duration::from_millis(1),
            SpanAttrs { a: 0, err: true, ..Default::default() },
        );
        let exec = rec.record_span(
            trace,
            root,
            Stage::Execute,
            t0 + Duration::from_millis(1),
            t0 + Duration::from_millis(3),
            SpanAttrs::default(),
        );
        rec.record_span(
            trace,
            exec,
            Stage::Election,
            t0 + Duration::from_millis(1),
            t0 + Duration::from_millis(2),
            SpanAttrs { a: 42, b: 7, ..Default::default() },
        );
        let tree = render_tree(&rec.trace_spans(trace));
        assert!(tree.contains("request 3.0ms"), "{tree}");
        assert!(tree.contains("  attempt backend=0 1.0ms ERR"), "{tree}");
        assert!(tree.contains("    election messages=42 rounds=7 1.0ms"), "{tree}");
        assert_eq!(render_tree(&[]), "(no spans)\n");
    }

    #[test]
    fn connectedness_rejects_forests_and_orphans() {
        let mk = |id: u64, parent: u64| SpanRecord {
            trace: TraceId(1),
            id: SpanId(id),
            parent: SpanId(parent),
            stage: Stage::Request,
            start_us: 0,
            dur_us: 0,
            a: 0,
            b: 0,
            err: false,
            root: false,
            src: String::new(),
        };
        assert!(is_connected_tree(&[mk(1, 0), mk(2, 1), mk(3, 1)]));
        // Adopted foreign parent still counts as the single root.
        assert!(is_connected_tree(&[mk(2, 99), mk(3, 2)]));
        assert!(!is_connected_tree(&[mk(1, 0), mk(2, 0)]), "two roots");
        assert!(!is_connected_tree(&[mk(1, 0), mk(3, 99)]), "orphan");
        assert!(!is_connected_tree(&[]));
        assert!(!is_connected_tree(&[mk(1, 0), mk(1, 0)]), "dup ids");
    }

    #[test]
    fn fmt_dur_scales() {
        assert_eq!(fmt_dur_us(0), "0µs");
        assert_eq!(fmt_dur_us(999), "999µs");
        assert_eq!(fmt_dur_us(1000), "1.0ms");
        assert_eq!(fmt_dur_us(12_345), "12.3ms");
    }
}
