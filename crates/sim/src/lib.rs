//! # hre-sim — the paper's computation model, executable
//!
//! This crate implements, faithfully, the model of Section II of
//! *"Leader Election in Asymmetric Labeled Unidirectional Rings"*:
//!
//! * a unidirectional ring of `n ≥ 2` processes, `p(i)` receiving only from
//!   `p(i−1)` and sending only to `p(i+1)`;
//! * reliable **FIFO links**; the function `rcv` is message-blocking and
//!   pattern-matching — a process whose head message matches no enabled
//!   guard is *disabled with a pending message* (a would-be deadlock, which
//!   the simulator detects and reports);
//! * **guarded actions** executed atomically, at most one action
//!   triggerable without a message (the initial action, executed first);
//! * **fair activation** — every continuously-enabled process eventually
//!   fires — provided by all bundled [schedulers](sched);
//! * the paper's **time-unit** metric (message transmission normalized to at
//!   most one unit, processing time zero), implemented as a virtual clock
//!   over the causal order ([`engine::Network`] tracks it online);
//! * an online **specification monitor** ([`spec::SpecMonitor`]) for the
//!   four conditions of process-terminating leader election.
//!
//! The two algorithms of the paper (and the baselines) are written against
//! [`process::ProcessBehavior`] and run unchanged under every scheduler —
//! and, via `hre-runtime`, on real OS threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod explore;
pub mod faults;
pub mod metrics;
pub mod process;
pub mod run;
pub mod sched;
pub mod spec;
pub mod sweep;
pub mod trace;

pub use engine::{NetCounters, Network, TerminalKind};
pub use explore::{explore, ExploreReport, StateKey};
pub use faults::{FaultPlan, LinkFault};
pub use metrics::RunMetrics;
pub use process::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
pub use run::{
    run, run_faulty, run_with_delays, run_with_observer, satisfies_message_terminating, Observer,
    RunOptions, RunReport, Verdict,
};
pub use sched::{
    AdversarialSched, Adversary, RandomSched, RoundRobinSched, Scheduler, Selection, SyncSched,
};
pub use spec::{SpecMonitor, SpecViolation};
pub use sweep::{item_seed, sweep_map, sweep_runs, sweep_runs_seeded};
pub use trace::{ActionEvent, EventKind, Trace};
