//! An exhaustive interleaving explorer — a small model checker.
//!
//! The schedulers in [`crate::sched`] *sample* fair executions; this module
//! instead walks **every** reachable configuration of a (small) ring by
//! branching on all enabled processes at each step, memoizing
//! configurations. It verifies, over the whole reachable state space:
//!
//! * **safety** — at most one `isLeader` in every reachable configuration,
//!   and the irrevocability of `isLeader`/`done` along every edge;
//! * **no deadlock** — no reachable configuration has a disabled process
//!   with a pending head message (Lemmas 11–12, for `Bk`, now exhaustively);
//! * **confluence** — every maximal path ends in the *same single* terminal
//!   configuration (the diamond property the test suite's
//!   scheduler-comparison checks only sample).
//!
//! Feasible because determinism + FIFO make the configuration a function of
//! the per-process progress vector: the state count grows like
//! `(actions/n)^n`, fine for `n ≤ 4–5`.
//!
//! Processes that want to be explored implement [`StateKey`] — an exact,
//! collision-free encoding of their local state (`Debug` of all fields is
//! fine and is what `Ak`/`Bk` use).

use crate::engine::{Network, TerminalKind};
use crate::process::{Algorithm, ProcessBehavior};
use hre_ring::RingLabeling;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;

/// Exact encoding of a process's local state, for configuration
/// memoization. Two states must encode equal iff they are behaviorally
/// identical.
pub trait StateKey {
    /// The encoding (any injective rendering works; `format!("{:?}")` of
    /// every field is the easy, safe choice).
    fn state_key(&self) -> String;
}

/// What the exploration found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations reached (including the initial one).
    pub configurations: u64,
    /// Distinct terminal configurations (confluence ⟺ exactly 1).
    pub terminal_configurations: u64,
    /// Whether some terminal configuration was not all-halted.
    pub bad_termination: bool,
    /// Reachable configurations with two or more leaders.
    pub multi_leader_configurations: u64,
    /// Edges where `isLeader` or `done` was revoked, or `leader` changed
    /// after `done`.
    pub monotonicity_violations: u64,
    /// Reachable deadlocked configurations (pending head at a disabled
    /// process).
    pub deadlock_configurations: u64,
    /// True iff the exploration was cut short by the configuration budget.
    pub truncated: bool,
    /// The elected leader in the terminal configuration(s); `None` if no
    /// terminal was reached, several disagree, or no unique leader exists.
    pub terminal_leader: Option<usize>,
}

impl ExploreReport {
    /// The headline verdict: safe, deadlock-free, confluent, and fully
    /// explored.
    pub fn verified(&self) -> bool {
        !self.truncated
            && self.terminal_configurations == 1
            && !self.bad_termination
            && self.multi_leader_configurations == 0
            && self.monotonicity_violations == 0
            && self.deadlock_configurations == 0
    }
}

fn config_key<P>(net: &Network<P>) -> String
where
    P: ProcessBehavior + StateKey,
    P::Msg: Debug,
{
    let mut key = String::new();
    for i in 0..net.n() {
        key.push_str(&net.process(i).state_key());
        key.push('|');
        key.push_str(&format!("{:?}", net.link_contents(i)));
        key.push(';');
    }
    key
}

/// Explores every reachable configuration of `algo` on `ring`, up to
/// `max_configurations` (pass e.g. `1_000_000`; exceeding it sets
/// `truncated` instead of looping forever on a buggy algorithm).
pub fn explore<A>(algo: &A, ring: &RingLabeling, max_configurations: u64) -> ExploreReport
where
    A: Algorithm,
    A::Proc: StateKey + Clone,
    <A::Proc as ProcessBehavior>::Msg: Debug,
{
    let initial: Network<A::Proc> = Network::new(algo, ring);
    let mut report = ExploreReport {
        configurations: 0,
        terminal_configurations: 0,
        bad_termination: false,
        multi_leader_configurations: 0,
        monotonicity_violations: 0,
        deadlock_configurations: 0,
        truncated: false,
        terminal_leader: None,
    };
    let mut leaders_disagree = false;

    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    let mut frontier: VecDeque<Network<A::Proc>> = VecDeque::new();
    seen.insert(config_key(&initial), ());
    check_config(&initial, &mut report);
    report.configurations = 1;
    frontier.push_back(initial);

    while let Some(net) = frontier.pop_front() {
        let enabled = net.enabled_set();
        if enabled.is_empty() {
            report.terminal_configurations += 1;
            match net.terminal_kind() {
                Some(TerminalKind::AllHalted) => {}
                _ => report.bad_termination = true,
            }
            let leaders: Vec<usize> = (0..net.n()).filter(|&i| net.election(i).is_leader).collect();
            let this = (leaders.len() == 1).then(|| leaders[0]);
            match (report.terminal_leader, this) {
                (None, Some(l)) if !leaders_disagree => report.terminal_leader = Some(l),
                (Some(prev), Some(l)) if prev == l => {}
                _ => {
                    leaders_disagree = true;
                    report.terminal_leader = None;
                }
            }
            continue;
        }
        for &i in &enabled {
            let mut next = net.clone();
            let before = snapshot(&next);
            next.fire(i);
            check_edge(&before, &next, &mut report);
            check_config(&next, &mut report);
            let key = config_key(&next);
            if seen.contains_key(&key) {
                continue;
            }
            seen.insert(key, ());
            report.configurations += 1;
            if report.configurations >= max_configurations {
                report.truncated = true;
                return report;
            }
            frontier.push_back(next);
        }
    }
    report
}

fn snapshot<P: ProcessBehavior>(net: &Network<P>) -> Vec<crate::process::ElectionState> {
    net.elections()
}

fn check_config<P: ProcessBehavior>(net: &Network<P>, report: &mut ExploreReport) {
    let leaders = (0..net.n()).filter(|&i| net.election(i).is_leader).count();
    if leaders >= 2 {
        report.multi_leader_configurations += 1;
    }
    // Deadlock: disabled-with-pending-head while others may still run.
    for i in 0..net.n() {
        let e = net.election(i);
        if !net.enabled(i) && !e.halted && !net.link_contents(i).is_empty() {
            report.deadlock_configurations += 1;
            break;
        }
    }
}

fn check_edge<P: ProcessBehavior>(
    before: &[crate::process::ElectionState],
    net: &Network<P>,
    report: &mut ExploreReport,
) {
    for (i, old) in before.iter().enumerate() {
        let new = net.election(i);
        let revoked = (old.is_leader && !new.is_leader) || (old.done && !new.done);
        let leader_changed_after_done = old.done && old.leader != new.leader;
        if revoked || leader_changed_after_done {
            report.monotonicity_violations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{ElectionState, Outbox, Reaction};
    use hre_words::Label;

    /// A tiny two-phase algorithm for explorer self-tests: circulate one
    /// token per process for exactly one turn (hop-counted), then the
    /// process with the max label wins.
    #[derive(Clone)]
    struct MiniProc {
        id: Label,
        n: usize,
        best: Label,
        seen: usize,
        st: ElectionState,
    }
    struct Mini {
        n: usize,
    }
    impl Algorithm for Mini {
        type Proc = MiniProc;
        fn name(&self) -> String {
            "Mini".into()
        }
        fn spawn(&self, label: Label) -> MiniProc {
            MiniProc { id: label, n: self.n, best: label, seen: 0, st: ElectionState::INITIAL }
        }
    }
    #[derive(Clone, Debug, PartialEq)]
    enum MiniMsg {
        Tok(Label, u32),
        Fin(Label),
    }
    impl ProcessBehavior for MiniProc {
        type Msg = MiniMsg;
        fn on_start(&mut self, out: &mut Outbox<MiniMsg>) {
            out.send(MiniMsg::Tok(self.id, 0));
        }
        fn on_msg(&mut self, msg: &MiniMsg, out: &mut Outbox<MiniMsg>) -> Reaction {
            match *msg {
                MiniMsg::Tok(x, h) => {
                    self.seen += 1;
                    if x > self.best {
                        self.best = x;
                    }
                    if (h as usize) < self.n - 2 {
                        out.send(MiniMsg::Tok(x, h + 1));
                    }
                    if self.seen == self.n - 1 && self.best == self.id {
                        self.st.is_leader = true;
                        self.st.leader = Some(self.id);
                        self.st.done = true;
                        out.send(MiniMsg::Fin(self.id));
                    }
                    Reaction::Consumed
                }
                MiniMsg::Fin(x) => {
                    if self.st.is_leader {
                        self.st.halted = true;
                    } else {
                        self.st.leader = Some(x);
                        self.st.done = true;
                        out.send(MiniMsg::Fin(x));
                        self.st.halted = true;
                    }
                    Reaction::Consumed
                }
            }
        }
        fn election(&self) -> ElectionState {
            self.st
        }
        fn space_bits(&self, b: u32) -> u64 {
            2 * b as u64 + 16
        }
    }
    impl StateKey for MiniProc {
        fn state_key(&self) -> String {
            format!("{:?}/{:?}/{}/{:?}", self.id, self.best, self.seen, self.st)
        }
    }

    #[test]
    fn explorer_verifies_a_correct_algorithm() {
        let ring = RingLabeling::from_raw(&[2, 5, 3]);
        let report = explore(&Mini { n: 3 }, &ring, 1_000_000);
        assert!(report.verified(), "{report:?}");
        assert!(report.configurations > 10, "{report:?}");
        assert_eq!(report.terminal_configurations, 1);
    }

    #[test]
    fn explorer_catches_a_two_leader_bug() {
        // Homonym max labels: both see "their" token logic win.
        let ring = RingLabeling::from_raw(&[5, 1, 5]);
        let report = explore(&Mini { n: 3 }, &ring, 1_000_000);
        assert!(!report.verified(), "{report:?}");
        assert!(report.multi_leader_configurations > 0, "{report:?}");
    }

    #[test]
    fn truncation_is_reported() {
        let ring = RingLabeling::from_raw(&[2, 5, 3]);
        let report = explore(&Mini { n: 3 }, &ring, 5);
        assert!(report.truncated);
        assert!(!report.verified());
    }
}
