//! Process behaviors: the guarded-action programming interface.
//!
//! A distributed algorithm is, per the paper, a collection of identical
//! local algorithms differing only in the label. Here an [`Algorithm`] is a
//! factory that, given a label, spawns one [`ProcessBehavior`].
//!
//! The message-blocking `rcv` of the model maps onto [`ProcessBehavior::on_msg`]:
//! the engine presents the **head** message of the incoming link; the
//! process either fires an enabled action ([`Reaction::Consumed`], the
//! message is removed) or has no enabled action matching it
//! ([`Reaction::Ignored`], the message stays at the head and the process is
//! disabled — permanently, since its state can only change by receiving).

use hre_words::Label;
use std::fmt::Debug;

/// What a process did with the head message offered to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reaction {
    /// An action whose guard matched fired; the message is removed from the
    /// link (each message is received exactly once).
    Consumed,
    /// No enabled action matches the head message. The message stays; the
    /// process is disabled (and, the head being immutable, deadlocked).
    Ignored,
}

/// The three specification variables every process must expose
/// (Section II, "Leader Election"), plus the local-termination flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElectionState {
    /// `p.isLeader` — initially `FALSE`, irrevocable once `TRUE`.
    pub is_leader: bool,
    /// `p.leader` — must equal the elected leader's label at termination.
    /// `None` encodes "not yet assigned".
    pub leader: Option<Label>,
    /// `p.done` — `TRUE` once `p` knows the leader has been elected;
    /// irrevocable.
    pub done: bool,
    /// Whether `p` has executed its halting statement (local termination).
    pub halted: bool,
}

impl ElectionState {
    /// The initial state required by the specification.
    pub const INITIAL: ElectionState =
        ElectionState { is_leader: false, leader: None, done: false, halted: false };
}

/// Buffer of messages a single action sends to the right neighbor.
///
/// The model's `send m` appends `m` at the tail of the outgoing link; an
/// atomic action may send several messages.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<M>,
}

impl<M> Outbox<M> {
    /// An empty outbox (engine-internal, but public for tests and custom
    /// runtimes).
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// `send m` — appended to the tail of the link to the right neighbor.
    pub fn send(&mut self, msg: M) {
        self.msgs.push(msg);
    }

    /// Number of messages queued in this action.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the action sent nothing.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drains the buffered messages (engine-internal).
    pub fn into_msgs(self) -> Vec<M> {
        self.msgs
    }

    /// Drains the buffered messages in place, keeping the allocation — the
    /// engine lends one outbox to every action and reuses its buffer, so
    /// steady-state sends don't allocate.
    pub(crate) fn drain_msgs(&mut self) -> std::vec::Drain<'_, M> {
        self.msgs.drain(..)
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// One process's local algorithm.
pub trait ProcessBehavior {
    /// The message datatype exchanged on the ring.
    type Msg: Clone + Debug;

    /// The unique action triggerable without a message reception, executed
    /// first in every execution (e.g. `Ak`'s action A1, `Bk`'s B1).
    fn on_start(&mut self, out: &mut Outbox<Self::Msg>);

    /// Offered the head message of the incoming link; fire the enabled
    /// action whose `rcv` pattern matches, or report [`Reaction::Ignored`].
    ///
    /// Must not be called after the process halted (the engine guarantees
    /// this; implementations may debug-assert it).
    fn on_msg(&mut self, msg: &Self::Msg, out: &mut Outbox<Self::Msg>) -> Reaction;

    /// Current values of the specification variables.
    fn election(&self) -> ElectionState;

    /// Live storage of the process in bits, given `b` = bits per label —
    /// using the paper's own accounting for the respective algorithm.
    fn space_bits(&self, label_bits: u32) -> u64;

    /// Wire size of one message in bits, given `b` = bits per label. The
    /// default charges a label plus a two-bit tag; algorithms with other
    /// message shapes override it. Used for the bit-complexity metric.
    fn msg_wire_bits(&self, msg: &Self::Msg, label_bits: u32) -> u64 {
        let _ = msg;
        label_bits as u64 + 2
    }
}

/// A distributed algorithm: a label-indexed family of identical local
/// algorithms (plus the constants — such as `k` — baked into the factory).
pub trait Algorithm {
    /// Process type this algorithm spawns.
    type Proc: ProcessBehavior;

    /// Human-readable name for reports ("Ak", "Bk", "ChangRoberts", …).
    fn name(&self) -> String;

    /// Builds the local algorithm of a process labeled `label`.
    fn spawn(&self, label: Label) -> Self::Proc;

    /// Builds the local algorithm of process `i` of `ring`.
    ///
    /// Semantically identical to `spawn(ring.label(i))` — a process still
    /// knows nothing beyond its own label — but the richer signature lets
    /// an implementation share the ring's label storage for zero-copy local
    /// state (`Ak` represents its growing `string` as a window into the
    /// shared labeling). The default forwards to [`Self::spawn`].
    fn spawn_at(&self, ring: &hre_ring::RingLabeling, i: usize) -> Self::Proc {
        self.spawn(ring.label(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_in_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(1u32);
        out.send(2);
        out.send(3);
        assert_eq!(out.len(), 3);
        assert_eq!(out.into_msgs(), vec![1, 2, 3]);
    }

    #[test]
    fn initial_election_state() {
        let s = ElectionState::INITIAL;
        assert!(!s.is_leader && !s.done && !s.halted);
        assert_eq!(s.leader, None);
    }
}
