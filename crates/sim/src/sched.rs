//! Schedulers: fair activation policies driving the network.
//!
//! The model requires only *fairness* (a continuously-enabled process
//! eventually fires). Because the algorithms are deterministic and links
//! are FIFO, the system is **confluent**: every fair schedule produces the
//! same message streams, the same terminal configuration, the same message
//! count, and the same virtual time — only the interleaving differs. The
//! test suite exploits this as a powerful invariant; the schedulers below
//! provide interestingly different interleavings:
//!
//! * [`SyncSched`] — the paper's *synchronous execution*: at each step,
//!   **all** enabled processes execute one action (link heads snapshotted at
//!   step start). This is the execution Lemma 1 counts steps of.
//! * [`RoundRobinSched`] — cycles through processes, firing each enabled one.
//! * [`RandomSched`] — picks a uniformly random enabled process (seeded);
//!   fair with probability 1.
//! * [`AdversarialSched`] — starves a victim process as long as anything
//!   else is enabled, or drains the most/least loaded link first; still
//!   technically fair, but produces extreme interleavings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the scheduler wants fired next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Selection {
    /// Fire every currently-enabled process once, synchronously (heads
    /// snapshotted at step start).
    All,
    /// Fire this one process.
    One(usize),
}

/// A fair activation policy.
pub trait Scheduler {
    /// Chooses from the (non-empty) enabled set.
    fn select(&mut self, enabled: &[usize]) -> Selection;

    /// Name for reports.
    fn name(&self) -> String;
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn select(&mut self, enabled: &[usize]) -> Selection {
        (**self).select(enabled)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn select(&mut self, enabled: &[usize]) -> Selection {
        (**self).select(enabled)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// The synchronous scheduler: every enabled process fires at every step.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncSched;

impl Scheduler for SyncSched {
    fn select(&mut self, _enabled: &[usize]) -> Selection {
        Selection::All
    }
    fn name(&self) -> String {
        "sync".into()
    }
}

/// Round-robin over process indices.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinSched {
    cursor: usize,
}

impl Scheduler for RoundRobinSched {
    fn select(&mut self, enabled: &[usize]) -> Selection {
        // smallest enabled index >= cursor, else smallest enabled
        let pick = enabled.iter().copied().find(|&i| i >= self.cursor).unwrap_or(enabled[0]);
        self.cursor = pick + 1;
        Selection::One(pick)
    }
    fn name(&self) -> String {
        "round-robin".into()
    }
}

/// Uniformly random enabled process; seeded, hence reproducible.
#[derive(Clone, Debug)]
pub struct RandomSched {
    rng: StdRng,
    seed: u64,
}

impl RandomSched {
    /// A random scheduler from a seed (printed in every report).
    pub fn new(seed: u64) -> Self {
        RandomSched { rng: StdRng::seed_from_u64(seed), seed }
    }
}

impl Scheduler for RandomSched {
    fn select(&mut self, enabled: &[usize]) -> Selection {
        Selection::One(enabled[self.rng.gen_range(0..enabled.len())])
    }
    fn name(&self) -> String {
        format!("random(seed={})", self.seed)
    }
}

/// Flavors of adversarial (but still fair) scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adversary {
    /// Never fire `victim` while anything else is enabled — maximizes the
    /// victim's input backlog.
    Starve(usize),
    /// Always fire the lowest enabled index — one process races ahead.
    LowestFirst,
    /// Always fire the highest enabled index.
    HighestFirst,
}

/// Adversarial scheduler; see [`Adversary`].
#[derive(Clone, Copy, Debug)]
pub struct AdversarialSched {
    /// The strategy in force.
    pub strategy: Adversary,
}

impl Scheduler for AdversarialSched {
    fn select(&mut self, enabled: &[usize]) -> Selection {
        let pick = match self.strategy {
            Adversary::Starve(victim) => {
                enabled.iter().copied().find(|&i| i != victim).unwrap_or(enabled[0])
            }
            Adversary::LowestFirst => enabled[0],
            Adversary::HighestFirst => *enabled.last().unwrap(),
        };
        Selection::One(pick)
    }
    fn name(&self) -> String {
        match self.strategy {
            Adversary::Starve(v) => format!("starve({v})"),
            Adversary::LowestFirst => "lowest-first".into(),
            Adversary::HighestFirst => "highest-first".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_selects_all() {
        assert_eq!(SyncSched.select(&[0, 2, 5]), Selection::All);
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobinSched::default();
        assert_eq!(s.select(&[0, 1, 2]), Selection::One(0));
        assert_eq!(s.select(&[0, 1, 2]), Selection::One(1));
        assert_eq!(s.select(&[0, 2]), Selection::One(2));
        assert_eq!(s.select(&[0, 2]), Selection::One(0)); // wraps
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let mut a = RandomSched::new(7);
        let mut b = RandomSched::new(7);
        for _ in 0..100 {
            let ea = a.select(&[3, 5, 9]);
            let eb = b.select(&[3, 5, 9]);
            assert_eq!(ea, eb);
            if let Selection::One(i) = ea {
                assert!([3, 5, 9].contains(&i));
            } else {
                panic!("random picks one");
            }
        }
    }

    #[test]
    fn starve_avoids_victim_when_possible() {
        let mut s = AdversarialSched { strategy: Adversary::Starve(2) };
        assert_eq!(s.select(&[1, 2, 3]), Selection::One(1));
        assert_eq!(s.select(&[2, 3]), Selection::One(3));
        // forced: only the victim is enabled
        assert_eq!(s.select(&[2]), Selection::One(2));
    }

    #[test]
    fn extremal_strategies() {
        let mut lo = AdversarialSched { strategy: Adversary::LowestFirst };
        let mut hi = AdversarialSched { strategy: Adversary::HighestFirst };
        assert_eq!(lo.select(&[1, 4, 6]), Selection::One(1));
        assert_eq!(hi.select(&[1, 4, 6]), Selection::One(6));
    }
}
