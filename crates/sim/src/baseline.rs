//! The **pre-optimization engine**, frozen verbatim as a measurement
//! baseline for experiment E22 (`exp_perf`).
//!
//! This module is a faithful copy of `engine.rs` + `run.rs` as they stood
//! before the zero-copy/pooled-queue rework: per-link `VecDeque` queues,
//! a double `m.clone()` on the fault-capable send path, a freshly
//! allocated `Vec<usize>` enabled set on every scheduler step, and a
//! freshly collected `Vec<ElectionState>` fed to the specification
//! monitor after every action. Keeping it lets the perf experiment
//! measure the optimized engine against the real former hot path —
//! in-process, same compiler, same flags — rather than against committed
//! numbers that rot.
//!
//! Semantics are identical to the optimized engine (E22 and the proptests
//! in `hre-core` assert it); only the constant factors differ. Do not
//! "fix" anything here: the slowness is the point.

use crate::faults::FaultPlan;
use crate::process::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use crate::run::{RunOptions, RunReport, Verdict};
use crate::sched::{Scheduler, Selection};
use crate::spec::SpecMonitor;
use crate::trace::{ActionEvent, EventKind, Trace};
use hre_ring::RingLabeling;
use std::collections::VecDeque;

/// A message in flight, stamped with its virtual send time.
#[derive(Clone, Debug)]
struct InFlight<M> {
    msg: M,
    send_time: u64,
}

/// The incoming FIFO link of one process (heap-churning `VecDeque` form).
#[derive(Clone, Debug)]
struct Link<M> {
    queue: VecDeque<InFlight<M>>,
    last_delivery: u64,
    delay: u64,
}

impl<M> Link<M> {
    fn new() -> Self {
        Link { queue: VecDeque::new(), last_delivery: 0, delay: 1 }
    }
}

/// Per-process bookkeeping around the user-provided behavior.
struct Slot<P: ProcessBehavior> {
    proc: P,
    started: bool,
    clock: u64,
    wedged: bool,
    sent: u64,
    received: u64,
}

/// The pre-PR ring network: clones every in-flight message and rescans
/// all processes for enabledness on every step.
pub struct BaselineNetwork<P: ProcessBehavior> {
    slots: Vec<Slot<P>>,
    links: Vec<Link<P::Msg>>,
    total_sent: u64,
    total_wire_bits: u64,
    actions_fired: u64,
    peak_link_occupancy: usize,
    peak_space_bits: u64,
    label_bits: u32,
    faults: FaultPlan,
    delay_scale: u64,
}

/// Result of firing one baseline action (the old allocating shape: every
/// fire returns the sent messages in a fresh `Vec`).
#[derive(Clone, Debug)]
enum BaselineFired<M> {
    Started { sent: Vec<M> },
    Received { msg: M, sent: Vec<M> },
    Wedged { head: M },
}

impl<P: ProcessBehavior> BaselineNetwork<P> {
    /// Builds the initial configuration, as the old `Network::new` did
    /// (plain `spawn`, no shared-labeling handoff).
    pub fn new<A>(algo: &A, ring: &RingLabeling) -> Self
    where
        A: Algorithm<Proc = P>,
    {
        let n = ring.n();
        let slots = (0..n)
            .map(|i| Slot {
                proc: algo.spawn(ring.label(i)),
                started: false,
                clock: 0,
                wedged: false,
                sent: 0,
                received: 0,
            })
            .collect();
        let links = (0..n).map(|_| Link::new()).collect();
        let mut net = BaselineNetwork {
            slots,
            links,
            total_sent: 0,
            total_wire_bits: 0,
            actions_fired: 0,
            peak_link_occupancy: 0,
            peak_space_bits: 0,
            label_bits: ring.label_bits(),
            faults: FaultPlan::none(),
            delay_scale: 1,
        };
        for i in 0..n {
            net.note_space(i);
        }
        net
    }

    /// Injects a deterministic link-fault plan (applied to every send).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Election-specification variables of process `i`.
    pub fn election(&self, i: usize) -> ElectionState {
        self.slots[i].proc.election()
    }

    /// All election states, in process order — freshly collected, as the
    /// old engine did after every single action.
    pub fn elections(&self) -> Vec<ElectionState> {
        self.slots.iter().map(|s| s.proc.election()).collect()
    }

    /// The execution's virtual time in paper time units.
    pub fn virtual_time(&self) -> u64 {
        let ticks = self.slots.iter().map(|s| s.clock).max().unwrap_or(0);
        ticks.div_ceil(self.delay_scale)
    }

    /// Total messages sent so far.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.links.iter().map(|l| l.queue.len()).sum()
    }

    /// Is process `i` enabled?
    pub fn enabled(&self, i: usize) -> bool {
        let s = &self.slots[i];
        if s.proc.election().halted {
            return false;
        }
        if !s.started {
            return true;
        }
        !s.wedged && !self.links[i].queue.is_empty()
    }

    /// Indices of all enabled processes — a fresh `Vec` per call, the old
    /// engine's per-step allocation.
    pub fn enabled_set(&self) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.enabled(i)).collect()
    }

    /// If no process is enabled, classify the terminal configuration.
    pub fn terminal_kind(&self) -> Option<crate::engine::TerminalKind> {
        use crate::engine::TerminalKind;
        if (0..self.n()).any(|i| self.enabled(i)) {
            return None;
        }
        let any_pending_at_live = (0..self.n())
            .any(|i| !self.links[i].queue.is_empty() && !self.slots[i].proc.election().halted);
        if any_pending_at_live {
            return Some(TerminalKind::Deadlock);
        }
        if self.slots.iter().all(|s| s.proc.election().halted) && self.in_flight() == 0 {
            Some(TerminalKind::AllHalted)
        } else if self.in_flight() == 0 {
            Some(TerminalKind::QuiescentNotHalted)
        } else {
            Some(TerminalKind::Deadlock)
        }
    }

    /// Fires one atomic action of process `i` (old semantics, old
    /// allocation profile).
    fn fire(&mut self, i: usize) -> Option<BaselineFired<P::Msg>> {
        if !self.enabled(i) {
            return None;
        }
        if !self.slots[i].started {
            let mut out = Outbox::new();
            self.slots[i].proc.on_start(&mut out);
            self.slots[i].started = true;
            self.actions_fired += 1;
            let sent = self.dispatch(i, out);
            self.note_space(i);
            return Some(BaselineFired::Started { sent });
        }
        // Offer the head message — cloned out of the queue, as before.
        let head = self.links[i].queue.front().expect("enabled implies head present").clone();
        let mut out = Outbox::new();
        let reaction = self.slots[i].proc.on_msg(&head.msg, &mut out);
        match reaction {
            Reaction::Consumed => {
                let inflight = self.links[i].queue.pop_front().expect("head present");
                let delivery =
                    (inflight.send_time + self.links[i].delay).max(self.links[i].last_delivery);
                self.links[i].last_delivery = delivery;
                let s = &mut self.slots[i];
                s.clock = s.clock.max(delivery);
                s.received += 1;
                self.actions_fired += 1;
                let sent = self.dispatch(i, out);
                self.note_space(i);
                Some(BaselineFired::Received { msg: inflight.msg, sent })
            }
            Reaction::Ignored => {
                assert!(out.is_empty(), "an action that does not fire must not send messages");
                self.slots[i].wedged = true;
                Some(BaselineFired::Wedged { head: head.msg })
            }
        }
    }

    /// The old send path: every message cloned into the queue (twice on
    /// the duplicate-fault path), the full `Vec` returned to the caller.
    fn dispatch(&mut self, i: usize, out: Outbox<P::Msg>) -> Vec<P::Msg> {
        let n = self.n();
        let now = self.slots[i].clock;
        let msgs = out.into_msgs();
        let mut wire = 0u64;
        for m in &msgs {
            wire += self.slots[i].proc.msg_wire_bits(m, self.label_bits);
        }
        self.total_wire_bits += wire;
        let link = &mut self.links[(i + 1) % n];
        for m in &msgs {
            let fate = self.faults.decide();
            if fate.drop {
                continue;
            }
            link.queue.push_back(InFlight { msg: m.clone(), send_time: now });
            if fate.duplicate {
                link.queue.push_back(InFlight { msg: m.clone(), send_time: now });
            }
            if fate.swap_with_previous && link.queue.len() >= 2 {
                let len = link.queue.len();
                link.queue.swap(len - 1, len - 2);
            }
        }
        self.peak_link_occupancy = self.peak_link_occupancy.max(link.queue.len());
        self.slots[i].sent += msgs.len() as u64;
        self.total_sent += msgs.len() as u64;
        msgs
    }

    fn note_space(&mut self, i: usize) {
        let bits = self.slots[i].proc.space_bits(self.label_bits);
        self.peak_space_bits = self.peak_space_bits.max(bits);
    }
}

/// Runs `algo` on `ring` under `sched` with the frozen pre-PR driver loop:
/// a fresh enabled-set `Vec` per step, a fresh election-state `Vec` per
/// action, and a fully materialized `ActionEvent` per action whether or
/// not anyone is listening. Report shape matches [`crate::run::run`].
pub fn run_baseline<A, S>(
    algo: &A,
    ring: &RingLabeling,
    sched: &mut S,
    opts: RunOptions,
) -> RunReport<<A::Proc as ProcessBehavior>::Msg>
where
    A: Algorithm,
    S: Scheduler,
{
    let mut net: BaselineNetwork<A::Proc> = BaselineNetwork::new(algo, ring);
    let mut monitor = SpecMonitor::new(net.elections());
    let mut trace = opts.record_trace.then(Trace::new);
    let mut steps: u64 = 0;
    let mut seq: u64 = 0;
    let mut budget_exhausted = false;
    let mut stopped_on_violation = false;

    loop {
        if opts.stop_on_violation && !monitor.violations().is_empty() {
            stopped_on_violation = true;
            break;
        }
        let enabled = net.enabled_set();
        if enabled.is_empty() {
            break;
        }
        if net.actions_fired >= opts.max_actions {
            budget_exhausted = true;
            break;
        }
        let selection = sched.select(&enabled);
        steps += 1;
        match selection {
            Selection::All => {
                for &i in &enabled {
                    baseline_fire_one(&mut net, i, steps, &mut seq, &mut monitor, &mut trace);
                }
            }
            Selection::One(i) => {
                assert!(enabled.contains(&i), "scheduler picked a disabled process");
                baseline_fire_one(&mut net, i, steps, &mut seq, &mut monitor, &mut trace);
            }
        }
    }

    let terminal = net.terminal_kind();
    let verdict = if stopped_on_violation {
        Verdict::StoppedOnViolation
    } else if budget_exhausted {
        Verdict::ActionLimit
    } else {
        match terminal {
            Some(crate::engine::TerminalKind::AllHalted) => Verdict::Completed,
            Some(crate::engine::TerminalKind::QuiescentNotHalted) => Verdict::QuiescentNotHalted,
            Some(crate::engine::TerminalKind::Deadlock) => Verdict::Deadlock,
            None => Verdict::ActionLimit,
        }
    };
    if !stopped_on_violation {
        monitor.finish(terminal);
    }

    let elections = net.elections();
    let leaders: Vec<usize> =
        elections.iter().enumerate().filter(|(_, e)| e.is_leader).map(|(i, _)| i).collect();

    let metrics = crate::metrics::RunMetrics {
        n: net.n(),
        messages: net.total_sent,
        wire_bits: net.total_wire_bits,
        time_units: net.virtual_time(),
        actions: net.actions_fired,
        steps,
        peak_space_bits: net.peak_space_bits,
        peak_link_occupancy: net.peak_link_occupancy,
        max_received_by_one: net.slots.iter().map(|s| s.received).max().unwrap_or(0),
    };

    RunReport {
        verdict,
        metrics,
        violations: monitor.violations().to_vec(),
        leader: if leaders.len() == 1 { Some(leaders[0]) } else { None },
        trace,
        algorithm: algo.name(),
        scheduler: sched.name(),
    }
}

fn baseline_fire_one<P: ProcessBehavior>(
    net: &mut BaselineNetwork<P>,
    i: usize,
    step: u64,
    seq: &mut u64,
    monitor: &mut SpecMonitor,
    trace: &mut Option<Trace<P::Msg>>,
) {
    let Some(fired) = net.fire(i) else { return };
    let (kind, sent) = match fired {
        BaselineFired::Started { sent } => (EventKind::Start, sent),
        BaselineFired::Received { msg, sent } => (EventKind::Receive(msg), sent),
        BaselineFired::Wedged { head } => (EventKind::Wedge(head), Vec::new()),
    };
    let event = ActionEvent { seq: *seq, step, pid: i, kind, sent, clock: net.slots[i].clock };
    *seq += 1;
    monitor.observe(&net.elections());
    if let Some(t) = trace.as_mut() {
        t.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobinSched;

    // The baseline is exercised head-to-head against the optimized engine
    // in E22 and in `hre-core`'s differential proptests; here we only
    // smoke-test that it still runs the toy workload it was frozen with.
    use crate::process::{ElectionState, Outbox, Reaction};
    use hre_words::Label;

    struct Toy {
        n: usize,
    }
    #[derive(Clone, Debug, PartialEq, Eq)]
    enum ToyMsg {
        Lab(Label),
        Done(Label),
    }
    struct ToyProc {
        id: Label,
        best: Label,
        seen: usize,
        n: usize,
        st: ElectionState,
    }
    impl Algorithm for Toy {
        type Proc = ToyProc;
        fn name(&self) -> String {
            "Toy".into()
        }
        fn spawn(&self, label: Label) -> ToyProc {
            ToyProc { id: label, best: label, seen: 0, n: self.n, st: ElectionState::INITIAL }
        }
    }
    impl ProcessBehavior for ToyProc {
        type Msg = ToyMsg;
        fn on_start(&mut self, out: &mut Outbox<ToyMsg>) {
            out.send(ToyMsg::Lab(self.id));
        }
        fn on_msg(&mut self, msg: &ToyMsg, out: &mut Outbox<ToyMsg>) -> Reaction {
            match msg {
                ToyMsg::Lab(l) => {
                    self.seen += 1;
                    if *l > self.best {
                        self.best = *l;
                    }
                    if self.seen < self.n - 1 {
                        out.send(ToyMsg::Lab(*l));
                    }
                    if self.seen == self.n - 1 && self.best == self.id {
                        self.st.is_leader = true;
                        self.st.leader = Some(self.id);
                        self.st.done = true;
                        out.send(ToyMsg::Done(self.id));
                    }
                }
                ToyMsg::Done(l) => {
                    if self.st.is_leader {
                        self.st.halted = true;
                    } else {
                        self.st.leader = Some(*l);
                        self.st.done = true;
                        self.st.halted = true;
                        out.send(ToyMsg::Done(*l));
                    }
                }
            }
            Reaction::Consumed
        }
        fn election(&self) -> ElectionState {
            self.st
        }
        fn space_bits(&self, b: u32) -> u64 {
            2 * b as u64 + 64
        }
    }

    #[test]
    fn baseline_runs_and_reports() {
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5]);
        let rep = run_baseline(
            &Toy { n: 5 },
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions::default(),
        );
        assert!(rep.clean(), "{:?} {:?}", rep.verdict, rep.violations);
        assert_eq!(rep.leader, Some(4));
        assert_eq!(rep.metrics.messages, rep.metrics.actions - 5);
    }
}
