//! Complexity metrics collected from a run, matching the units the paper's
//! theorems are stated in.

use std::fmt;

/// Measured complexities of one execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMetrics {
    /// Number of processes `n`.
    pub n: usize,
    /// Total messages sent (= received, since every run drains its links).
    pub messages: u64,
    /// Total bits put on the wire (message sizes per the algorithm's own
    /// wire format).
    pub wire_bits: u64,
    /// Virtual time in the paper's time units (longest causal chain of
    /// messages, each message costing at most one unit).
    pub time_units: u64,
    /// Atomic actions fired in total.
    pub actions: u64,
    /// Scheduler steps (synchronous scheduler: one step = all enabled fire;
    /// sequential schedulers: one step = one action).
    pub steps: u64,
    /// Peak per-process space in bits, by the algorithm's own accounting.
    pub peak_space_bits: u64,
    /// Largest backlog observed on a single link.
    pub peak_link_occupancy: usize,
    /// Messages received by the busiest process.
    pub max_received_by_one: u64,
}

impl RunMetrics {
    /// Messages per process on average (reported by some related work).
    pub fn messages_per_process(&self) -> f64 {
        self.messages as f64 / self.n as f64
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} msgs={} ({}b) time={} steps={} actions={} space={}b link≤{} rcv≤{}",
            self.n,
            self.messages,
            self.wire_bits,
            self.time_units,
            self.steps,
            self.actions,
            self.peak_space_bits,
            self.peak_link_occupancy,
            self.max_received_by_one
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_process_average() {
        let m = RunMetrics {
            n: 4,
            messages: 12,
            wire_bits: 60,
            time_units: 5,
            actions: 16,
            steps: 16,
            peak_space_bits: 10,
            peak_link_occupancy: 2,
            max_received_by_one: 3,
        };
        assert!((m.messages_per_process() - 3.0).abs() < 1e-12);
        let s = format!("{m}");
        assert!(s.contains("msgs=12"));
    }
}
