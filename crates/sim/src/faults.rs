//! Link-fault injection: an ablation of the model's assumptions.
//!
//! Section II assumes links are **reliable** and **FIFO**; the paper's
//! correctness proofs lean on both (e.g. `p.string` being a prefix of
//! `LLabels(p)` in `Ak`, and the phase barrier of `Bk`). This module makes
//! those assumptions *removable*, so experiments can show the algorithms
//! break without them — the assumptions are necessary, not decorative.
//!
//! Faults are injected deterministically at send time by a counting rule,
//! so faulty runs are exactly reproducible.

/// One deterministic link-fault rule. The message counter is global across
/// all links and starts at 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Drop every `n`-th sent message (violates reliability).
    DropEveryNth(u64),
    /// Deliver every `n`-th sent message twice (violates
    /// exactly-once reception).
    DuplicateEveryNth(u64),
    /// Swap every `n`-th sent message with the message queued immediately
    /// before it on the same link, if any (violates FIFO).
    SwapEveryNth(u64),
}

/// A deterministic fault plan: every rule is applied independently to each
/// sent message.
///
/// ```
/// use hre_sim::{FaultPlan, LinkFault};
/// let plan = FaultPlan::single(LinkFault::DropEveryNth(5));
/// assert!(!plan.is_benign());
/// assert!(FaultPlan::none().is_benign());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The active rules.
    pub rules: Vec<LinkFault>,
    counter: u64,
}

/// What the plan decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct FaultDecision {
    pub drop: bool,
    pub duplicate: bool,
    pub swap_with_previous: bool,
}

impl FaultPlan {
    /// A plan with a single rule.
    pub fn single(rule: LinkFault) -> Self {
        FaultPlan { rules: vec![rule], counter: 0 }
    }

    /// No faults at all (the model's assumptions hold).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan can never fire.
    pub fn is_benign(&self) -> bool {
        self.rules.is_empty()
    }

    /// Advances the message counter and decides this message's fate.
    pub(crate) fn decide(&mut self) -> FaultDecision {
        self.counter += 1;
        let mut d = FaultDecision { drop: false, duplicate: false, swap_with_previous: false };
        for rule in &self.rules {
            match *rule {
                LinkFault::DropEveryNth(n) if n > 0 && self.counter.is_multiple_of(n) => {
                    d.drop = true
                }
                LinkFault::DuplicateEveryNth(n) if n > 0 && self.counter.is_multiple_of(n) => {
                    d.duplicate = true
                }
                LinkFault::SwapEveryNth(n) if n > 0 && self.counter.is_multiple_of(n) => {
                    d.swap_with_previous = true
                }
                _ => {}
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_rules_fire_on_schedule() {
        let mut plan = FaultPlan::single(LinkFault::DropEveryNth(3));
        let fates: Vec<bool> = (0..9).map(|_| plan.decide().drop).collect();
        assert_eq!(fates, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn rules_compose() {
        let mut plan = FaultPlan {
            rules: vec![LinkFault::DropEveryNth(2), LinkFault::DuplicateEveryNth(3)],
            counter: 0,
        };
        // message 6 is both dropped and duplicated; drop wins in the engine.
        let d6 = (0..6).map(|_| plan.decide()).last().unwrap();
        assert!(d6.drop && d6.duplicate);
    }

    #[test]
    fn benign_plan_never_fires() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_benign());
        for _ in 0..100 {
            let d = plan.decide();
            assert!(!d.drop && !d.duplicate && !d.swap_with_previous);
        }
    }
}
