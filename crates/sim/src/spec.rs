//! Online monitor for the process-terminating leader-election
//! specification (Section II of the paper).
//!
//! The four conditions, checked over the whole execution rather than only
//! at the end:
//!
//! 1. `p.isLeader` starts `FALSE`, never flips back, and **at most one**
//!    process has it `TRUE` in every configuration; exactly one — the
//!    leader `L` — in the terminal configuration.
//! 2. In the terminal configuration, `p.leader = L.id` for every `p`.
//! 3. `p.done` starts `FALSE`, never flips back; once `TRUE`, `L.isLeader`
//!    holds and `p.leader` is permanently set to `L.id`.
//! 4. `p` eventually halts, after `p.done` becomes `TRUE`.

use crate::engine::TerminalKind;
use crate::process::ElectionState;
use hre_words::Label;
use std::fmt;

/// A violation of the leader-election specification, with enough context to
/// debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecViolation {
    /// Two or more processes had `isLeader = TRUE` simultaneously.
    MultipleLeaders {
        /// The offending process indices.
        leaders: Vec<usize>,
    },
    /// `isLeader` flipped from `TRUE` back to `FALSE` at this process.
    LeaderRevoked {
        /// The offending process.
        pid: usize,
    },
    /// `done` flipped from `TRUE` back to `FALSE` at this process.
    DoneRevoked {
        /// The offending process.
        pid: usize,
    },
    /// `leader` changed after `done` was already `TRUE` at this process.
    LeaderChangedAfterDone {
        /// The offending process.
        pid: usize,
    },
    /// A process halted before setting `done`.
    HaltedBeforeDone {
        /// The offending process.
        pid: usize,
    },
    /// A halted process fired an action (engine misuse; should be
    /// impossible).
    ActedAfterHalt {
        /// The offending process.
        pid: usize,
    },
    /// `done` was set while no process had `isLeader = TRUE`.
    DoneWithoutLeader {
        /// The offending process.
        pid: usize,
    },
    /// The run ended in deadlock or an infinite loop instead of a terminal
    /// configuration with all processes halted.
    BadTermination {
        /// How the run actually ended.
        kind: TerminalKind,
    },
    /// Terminal configuration has no leader.
    NoLeaderAtEnd,
    /// Some process's `leader` variable disagrees with the elected leader's
    /// label in the terminal configuration.
    WrongLeaderVariable {
        /// The offending process.
        pid: usize,
        /// What it believed.
        got: Option<Label>,
        /// The elected leader's label.
        expected: Label,
    },
    /// Some process never halted although the execution is over.
    NeverHalted {
        /// The offending process.
        pid: usize,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Monitors a sequence of configurations for specification violations.
///
/// Two observation APIs share the same checks:
///
/// * [`SpecMonitor::observe`] — diff a full configuration snapshot (the
///   pre-optimization driver, kept for [`crate::baseline`]);
/// * [`SpecMonitor::observe_one`] — an atomic action changed exactly one
///   process, so only that process is diffed, in O(1). The global
///   at-most-one-leader condition is tracked by a running leader count;
///   the full leader list is materialized only on the violation path.
///
/// The two record the same violation *kinds* at the same actions; the only
/// difference is multiplicity while a violating condition persists (the
/// full-snapshot path re-reports e.g. `MultipleLeaders` after every
/// subsequent action, the incremental path on each transition into it).
#[derive(Clone, Debug)]
pub struct SpecMonitor {
    prev: Vec<ElectionState>,
    leader_count: usize,
    violations: Vec<SpecViolation>,
}

impl SpecMonitor {
    /// Starts monitoring from the initial configuration.
    pub fn new(initial: Vec<ElectionState>) -> Self {
        let leader_count = initial.iter().filter(|s| s.is_leader).count();
        let mut mon = SpecMonitor { prev: initial.clone(), leader_count, violations: Vec::new() };
        // The specification requires isLeader and done initially FALSE.
        for (pid, st) in initial.iter().enumerate() {
            if st.is_leader {
                mon.violations.push(SpecViolation::MultipleLeaders { leaders: vec![pid] });
            }
            if st.done {
                mon.violations.push(SpecViolation::DoneRevoked { pid });
            }
        }
        mon
    }

    /// Observes that an atomic action of process `pid` produced election
    /// state `new`; every other process is unchanged. O(1) except when a
    /// violation is found.
    pub fn observe_one(&mut self, pid: usize, new: ElectionState) {
        let old = self.prev[pid];
        if old == new {
            self.prev[pid] = new;
            return;
        }
        if new.is_leader && !old.is_leader {
            self.leader_count += 1;
            if self.leader_count > 1 {
                self.prev[pid] = new;
                let leaders: Vec<usize> = self
                    .prev
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_leader)
                    .map(|(i, _)| i)
                    .collect();
                self.violations.push(SpecViolation::MultipleLeaders { leaders });
            }
        } else if old.is_leader && !new.is_leader {
            self.leader_count -= 1;
            self.violations.push(SpecViolation::LeaderRevoked { pid });
        }
        if old.done && !new.done {
            self.violations.push(SpecViolation::DoneRevoked { pid });
        }
        if old.done && old.leader != new.leader {
            self.violations.push(SpecViolation::LeaderChangedAfterDone { pid });
        }
        if new.halted && !new.done {
            self.violations.push(SpecViolation::HaltedBeforeDone { pid });
        }
        if !old.done && new.done && self.leader_count == 0 {
            self.violations.push(SpecViolation::DoneWithoutLeader { pid });
        }
        if old.halted
            && (old.done != new.done || old.is_leader != new.is_leader || old.leader != new.leader)
        {
            self.violations.push(SpecViolation::ActedAfterHalt { pid });
        }
        self.prev[pid] = new;
    }

    /// Observes the configuration after an atomic step.
    pub fn observe(&mut self, states: &[ElectionState]) {
        let leaders: Vec<usize> =
            states.iter().enumerate().filter(|(_, s)| s.is_leader).map(|(i, _)| i).collect();
        if leaders.len() > 1 {
            self.violations.push(SpecViolation::MultipleLeaders { leaders: leaders.clone() });
        }
        let any_leader = !leaders.is_empty();
        for (pid, (old, new)) in self.prev.iter().zip(states.iter()).enumerate() {
            if old.is_leader && !new.is_leader {
                self.violations.push(SpecViolation::LeaderRevoked { pid });
            }
            if old.done && !new.done {
                self.violations.push(SpecViolation::DoneRevoked { pid });
            }
            if old.done && old.leader != new.leader {
                self.violations.push(SpecViolation::LeaderChangedAfterDone { pid });
            }
            if new.halted && !new.done {
                self.violations.push(SpecViolation::HaltedBeforeDone { pid });
            }
            if !old.done && new.done && !any_leader {
                self.violations.push(SpecViolation::DoneWithoutLeader { pid });
            }
            if old.halted
                && (old.done != new.done
                    || old.is_leader != new.is_leader
                    || old.leader != new.leader)
            {
                self.violations.push(SpecViolation::ActedAfterHalt { pid });
            }
        }
        self.leader_count = leaders.len();
        self.prev = states.to_vec();
    }

    /// Final checks once the run has ended.
    pub fn finish(&mut self, terminal: Option<TerminalKind>) {
        match terminal {
            Some(TerminalKind::AllHalted) => {}
            Some(kind) => self.violations.push(SpecViolation::BadTermination { kind }),
            None => self
                .violations
                .push(SpecViolation::BadTermination { kind: TerminalKind::QuiescentNotHalted }),
        }
        let leaders: Vec<usize> =
            self.prev.iter().enumerate().filter(|(_, s)| s.is_leader).map(|(i, _)| i).collect();
        match leaders.as_slice() {
            [] => self.violations.push(SpecViolation::NoLeaderAtEnd),
            [single] => {
                let expected = self.prev[*single].leader;
                if let Some(expected) = expected {
                    for (pid, st) in self.prev.iter().enumerate() {
                        if st.leader != Some(expected) {
                            self.violations.push(SpecViolation::WrongLeaderVariable {
                                pid,
                                got: st.leader,
                                expected,
                            });
                        }
                        if !st.halted {
                            self.violations.push(SpecViolation::NeverHalted { pid });
                        }
                        if !st.done {
                            self.violations.push(SpecViolation::HaltedBeforeDone { pid });
                        }
                    }
                } else {
                    self.violations.push(SpecViolation::WrongLeaderVariable {
                        pid: *single,
                        got: None,
                        expected: Label::new(u64::MAX),
                    });
                }
            }
            many => self.violations.push(SpecViolation::MultipleLeaders { leaders: many.to_vec() }),
        }
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[SpecViolation] {
        &self.violations
    }

    /// `true` iff no violation was recorded.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(is_leader: bool, leader: Option<u64>, done: bool, halted: bool) -> ElectionState {
        ElectionState { is_leader, leader: leader.map(Label::new), done, halted }
    }

    fn initial(n: usize) -> Vec<ElectionState> {
        vec![ElectionState::INITIAL; n]
    }

    #[test]
    fn clean_run_passes() {
        let mut m = SpecMonitor::new(initial(2));
        // p0 becomes leader & done
        m.observe(&[st(true, Some(9), true, false), st(false, None, false, false)]);
        // p1 learns, halts
        m.observe(&[st(true, Some(9), true, false), st(false, Some(9), true, true)]);
        // p0 halts
        m.observe(&[st(true, Some(9), true, true), st(false, Some(9), true, true)]);
        m.finish(Some(TerminalKind::AllHalted));
        assert!(m.clean(), "{:?}", m.violations());
    }

    #[test]
    fn detects_two_leaders() {
        let mut m = SpecMonitor::new(initial(3));
        m.observe(&[
            st(true, Some(1), true, false),
            st(true, Some(2), true, false),
            st(false, None, false, false),
        ]);
        assert!(m.violations().iter().any(
            |v| matches!(v, SpecViolation::MultipleLeaders { leaders } if leaders == &vec![0, 1])
        ));
    }

    #[test]
    fn detects_leader_revocation() {
        let mut m = SpecMonitor::new(initial(1));
        m.observe(&[st(true, Some(1), true, false)]);
        m.observe(&[st(false, Some(1), true, false)]);
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, SpecViolation::LeaderRevoked { pid: 0 })));
    }

    #[test]
    fn detects_done_revocation_and_leader_change_after_done() {
        let mut m = SpecMonitor::new(initial(1));
        m.observe(&[st(true, Some(1), true, false)]);
        m.observe(&[st(true, Some(2), true, false)]); // changed leader after done
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, SpecViolation::LeaderChangedAfterDone { pid: 0 })));

        let mut m2 = SpecMonitor::new(initial(1));
        m2.observe(&[st(true, Some(1), true, false)]);
        m2.observe(&[st(true, Some(1), false, false)]);
        assert!(m2.violations().iter().any(|v| matches!(v, SpecViolation::DoneRevoked { pid: 0 })));
    }

    #[test]
    fn detects_halt_before_done() {
        let mut m = SpecMonitor::new(initial(1));
        m.observe(&[st(false, None, false, true)]);
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, SpecViolation::HaltedBeforeDone { pid: 0 })));
    }

    #[test]
    fn detects_bad_termination_and_missing_leader() {
        let mut m = SpecMonitor::new(initial(2));
        m.finish(Some(TerminalKind::Deadlock));
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, SpecViolation::BadTermination { kind: TerminalKind::Deadlock })));
        assert!(m.violations().iter().any(|v| matches!(v, SpecViolation::NoLeaderAtEnd)));
    }

    #[test]
    fn detects_wrong_leader_variable() {
        let mut m = SpecMonitor::new(initial(2));
        m.observe(&[st(true, Some(1), true, true), st(false, Some(2), true, true)]);
        m.finish(Some(TerminalKind::AllHalted));
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, SpecViolation::WrongLeaderVariable { pid: 1, .. })));
    }

    #[test]
    fn observe_one_agrees_with_full_observe() {
        // Feed the same history through the full-snapshot diff and the
        // incremental single-process diff: same violation kinds.
        let seq = [
            vec![st(false, None, false, false), st(true, Some(2), true, false)],
            vec![st(true, Some(1), true, false), st(true, Some(2), true, false)],
            vec![st(true, Some(1), true, false), st(false, Some(2), true, true)],
        ];
        let changed = [1usize, 0, 1];
        let mut full = SpecMonitor::new(initial(2));
        let mut inc = SpecMonitor::new(initial(2));
        for (states, &pid) in seq.iter().zip(&changed) {
            full.observe(states);
            inc.observe_one(pid, states[pid]);
        }
        let kinds = |m: &SpecMonitor| {
            let mut v: Vec<String> = m.violations().iter().map(|x| format!("{x:?}")).collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(kinds(&full), kinds(&inc));
        assert!(inc.violations().iter().any(
            |v| matches!(v, SpecViolation::MultipleLeaders { leaders } if leaders == &vec![0, 1])
        ));
        assert!(inc
            .violations()
            .iter()
            .any(|v| matches!(v, SpecViolation::LeaderRevoked { pid: 1 })));
    }

    #[test]
    fn detects_never_halted() {
        let mut m = SpecMonitor::new(initial(2));
        m.observe(&[st(true, Some(1), true, true), st(false, Some(1), true, false)]);
        m.finish(Some(TerminalKind::QuiescentNotHalted));
        assert!(m.violations().iter().any(|v| matches!(v, SpecViolation::NeverHalted { pid: 1 })));
    }
}
