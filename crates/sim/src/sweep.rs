//! Parallel sweep runner: fan a ring catalog (or any work list) across OS
//! threads with **deterministic, enumeration-order results**.
//!
//! The experiments enumerate hundreds of rings (E03/E04/E10/E17) and run
//! each independently — embarrassingly parallel, but the reports must not
//! depend on thread count or finish order. The contract here:
//!
//! * **work stealing** — workers claim items from a shared atomic cursor,
//!   so an expensive item (a big ring) doesn't leave a statically-assigned
//!   worker idle;
//! * **order restoration** — results are returned in input order, whatever
//!   order they completed in;
//! * **per-item determinism** — anything random is derived from
//!   [`item_seed`]`(base, index)`, a pure function of the caller's base
//!   seed and the item's *position*, never of the worker thread. Hence
//!   `threads = 1` and `threads = 64` produce byte-identical results,
//!   which E22 asserts.
//!
//! Results travel back over a vendored crossbeam channel; threads are
//! scoped (`std::thread::scope`), so borrowing the items is safe and panics
//! propagate to the caller.

use crate::process::{Algorithm, ProcessBehavior};
use crate::run::{run, RunOptions, RunReport};
use crate::sched::{RandomSched, RoundRobinSched};
use hre_ring::RingLabeling;
use std::sync::atomic::{AtomicUsize, Ordering};

/// SplitMix64 of `base` and the item index: a statistically-independent
/// per-item seed that depends only on the enumeration position, so a
/// seeded sweep is reproducible at any thread count.
pub fn item_seed(base: u64, idx: usize) -> u64 {
    let mut z = base.wrapping_add((idx as u64).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f(index, item)` to every item on `threads` work-stealing scoped
/// threads and returns the results **in input order**. `threads <= 1` (or a
/// single item) runs inline on the caller's thread.
pub fn sweep_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(idx, &items[idx]);
                if tx.send((idx, r)).is_err() {
                    break;
                }
            });
        }
    });
    // All workers have joined: exactly `items.len()` results are buffered.
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for _ in 0..items.len() {
        let (idx, r) = rx.recv().expect("every scoped worker sent its results");
        debug_assert!(out[idx].is_none(), "one result per item");
        out[idx] = Some(r);
    }
    out.into_iter().map(|o| o.expect("every item produced a result")).collect()
}

/// Sweeps `algo` over a ring catalog under the (deterministic) round-robin
/// scheduler, one run per ring, in parallel; reports come back in catalog
/// order.
pub fn sweep_runs<A>(
    algo: &A,
    rings: &[RingLabeling],
    threads: usize,
    opts: RunOptions,
) -> Vec<RunReport<<A::Proc as ProcessBehavior>::Msg>>
where
    A: Algorithm + Sync,
    <A::Proc as ProcessBehavior>::Msg: Send,
{
    sweep_map(rings, threads, |_, ring| run(algo, ring, &mut RoundRobinSched::default(), opts))
}

/// Sweeps `algo` over a ring catalog under per-item seeded random
/// schedulers: ring `i` always runs under `RandomSched::new(item_seed(base,
/// i))`, so the whole sweep is reproducible and thread-count-invariant.
pub fn sweep_runs_seeded<A>(
    algo: &A,
    rings: &[RingLabeling],
    threads: usize,
    opts: RunOptions,
    base_seed: u64,
) -> Vec<RunReport<<A::Proc as ProcessBehavior>::Msg>>
where
    A: Algorithm + Sync,
    <A::Proc as ProcessBehavior>::Msg: Send,
{
    sweep_map(rings, threads, |idx, ring| {
        run(algo, ring, &mut RandomSched::new(item_seed(base_seed, idx)), opts)
    })
}

/// Explores every ring of a catalog exhaustively (see [`crate::explore`])
/// in parallel, reports in catalog order.
pub fn explore_many<A>(
    algo: &A,
    rings: &[RingLabeling],
    threads: usize,
    max_configurations: u64,
) -> Vec<crate::explore::ExploreReport>
where
    A: Algorithm + Sync,
    A::Proc: crate::explore::StateKey + Clone,
    <A::Proc as ProcessBehavior>::Msg: std::fmt::Debug,
{
    sweep_map(rings, threads, |_, ring| crate::explore::explore(algo, ring, max_configurations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 7] {
            let out = sweep_map(&items, threads, |idx, &x| {
                assert_eq!(idx as u64, x);
                x * x
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(sweep_map(&[] as &[u8], 4, |_, &x| x), Vec::<u8>::new());
        assert_eq!(sweep_map(&[9u8], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn item_seed_is_positional_and_spread() {
        // same (base, idx) → same seed; different idx → different seeds
        assert_eq!(item_seed(42, 3), item_seed(42, 3));
        let seeds: Vec<u64> = (0..100).map(|i| item_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "positional seeds must not collide");
    }

    #[test]
    fn seeded_sweeps_are_thread_count_invariant() {
        use hre_words::Label;
        // A tiny catalog of asymmetric rings; the seeded random scheduler
        // must produce identical reports at every thread count.
        let rings: Vec<RingLabeling> = vec![
            RingLabeling::from_raw(&[1, 2, 2]),
            RingLabeling::from_raw(&[3, 1, 4, 1, 5]),
            RingLabeling::from_raw(&[2, 9, 4]),
            RingLabeling::from_raw(&[1, 3, 1, 3, 2, 2, 1, 2]),
        ];
        // Toy election stand-in: forward max label n-1 times (same as the
        // engine's test double, minus the wrapper noise).
        struct Max {
            n: usize,
        }
        struct MaxProc {
            id: Label,
            best: Label,
            seen: usize,
            n: usize,
            st: crate::process::ElectionState,
        }
        impl Algorithm for Max {
            type Proc = MaxProc;
            fn name(&self) -> String {
                "Max".into()
            }
            fn spawn(&self, label: Label) -> MaxProc {
                MaxProc {
                    id: label,
                    best: label,
                    seen: 0,
                    n: self.n,
                    st: crate::process::ElectionState::INITIAL,
                }
            }
        }
        impl ProcessBehavior for MaxProc {
            type Msg = Label;
            fn on_start(&mut self, out: &mut crate::process::Outbox<Label>) {
                out.send(self.id);
            }
            fn on_msg(
                &mut self,
                msg: &Label,
                out: &mut crate::process::Outbox<Label>,
            ) -> crate::process::Reaction {
                self.seen += 1;
                if *msg > self.best {
                    self.best = *msg;
                }
                if self.seen < self.n - 1 {
                    out.send(*msg);
                }
                if self.seen == self.n - 1 {
                    self.st.is_leader = self.best == self.id;
                    self.st.leader = Some(self.best);
                    self.st.done = true;
                    self.st.halted = true;
                }
                crate::process::Reaction::Consumed
            }
            fn election(&self) -> crate::process::ElectionState {
                self.st
            }
            fn space_bits(&self, b: u32) -> u64 {
                2 * b as u64
            }
        }
        // Run each ring with the algorithm sized to it, via sweep_map so
        // the catalog is heterogeneous.
        let sweep = |threads: usize| -> Vec<(Option<usize>, u64, u64)> {
            sweep_map(&rings, threads, |idx, ring| {
                let rep = run(
                    &Max { n: ring.n() },
                    ring,
                    &mut RandomSched::new(item_seed(77, idx)),
                    RunOptions::default(),
                );
                (rep.leader, rep.metrics.messages, rep.metrics.steps)
            })
        };
        let one = sweep(1);
        for threads in [2, 4] {
            assert_eq!(sweep(threads), one, "threads={threads}");
        }
    }
}
