//! The ring network engine: configurations, steps, virtual time, terminal
//! detection.
//!
//! A **configuration** is the vector of process states plus the contents of
//! every link (Section II). The engine owns both, fires atomic actions, and
//! maintains the paper's time-unit metric online:
//!
//! * every message carries the virtual time at which it was sent;
//! * its delivery time is `max(send_time + 1, previous delivery on the same
//!   link)` — transmission takes at most one unit and links are FIFO;
//! * a process's clock is the max delivery time it has processed
//!   (processing itself takes zero time);
//! * the execution's duration is the largest clock reached.
//!
//! This is exactly the classical normalization ("the longest message delay
//! becomes one unit of time") the paper cites from Tel's book.
//!
//! # Hot-path design
//!
//! The engine is the inner loop of every experiment, so steady-state
//! stepping is **allocation- and clone-free**:
//!
//! * link queues are intrusive lists threaded through a single slab
//!   [`Pool`] with a free list — consuming a message recycles its node, so
//!   after warm-up no send or receive touches the allocator;
//! * messages **move**: from the outbox into the pool on send, out of the
//!   pool on receive. The engine clones a message only when the fault plan
//!   duplicates it, when a caller asks for a recorded copy
//!   ([`Network::fire_with_record`]), or on the rare wedge path;
//! * the enabled set is maintained **incrementally** as a sorted index list
//!   ([`Network::enabled_slice`]): each fired action can only change the
//!   enabledness of the firing process and its right neighbor, so the list
//!   is patched in place instead of being rebuilt (and reallocated) every
//!   scheduler step. Keeping it sorted ascending preserves the exact
//!   scheduling decisions of the pre-optimization engine (see
//!   [`crate::baseline`]), which rebuilt the set in ascending order.

use crate::faults::FaultPlan;
use crate::process::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_ring::RingLabeling;

/// Sentinel for "no node" in the intrusive link lists.
const NIL: u32 = u32::MAX;

/// One slab cell: a message in flight (or a free-list hole), stamped with
/// its virtual send time and threaded onto its link's queue via `next`.
#[derive(Clone, Debug)]
struct Node<M> {
    msg: Option<M>,
    send_time: u64,
    next: u32,
}

/// Slab-backed message pool with free-list recycling. Nodes are allocated
/// once and reused for the rest of the run.
#[derive(Clone, Debug)]
struct Pool<M> {
    nodes: Vec<Node<M>>,
    free: u32,
}

impl<M> Pool<M> {
    fn new() -> Self {
        Pool { nodes: Vec::new(), free: NIL }
    }

    fn alloc(&mut self, msg: M, send_time: u64) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.msg = Some(msg);
            node.send_time = send_time;
            node.next = NIL;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("pool of < 2^32 in-flight messages");
            self.nodes.push(Node { msg: Some(msg), send_time, next: NIL });
            idx
        }
    }

    /// Unlinks nothing (the caller owns the list); takes the message out and
    /// returns the node to the free list.
    fn release(&mut self, idx: u32) -> (M, u64) {
        let node = &mut self.nodes[idx as usize];
        let msg = node.msg.take().expect("released node holds a message");
        let send_time = node.send_time;
        node.next = self.free;
        self.free = idx;
        (msg, send_time)
    }

    fn msg(&self, idx: u32) -> &M {
        self.nodes[idx as usize].msg.as_ref().expect("live node holds a message")
    }
}

/// The incoming FIFO link of one process: an intrusive list of pool nodes.
#[derive(Clone, Copy, Debug)]
struct Link {
    head: u32,
    tail: u32,
    len: u32,
    /// Delivery time of the last message received on this link (FIFO links
    /// deliver in non-decreasing virtual time).
    last_delivery: u64,
    /// Transmission time of this link in clock ticks. The paper's model
    /// says "at most one time unit": with [`Network::set_link_delays`],
    /// one unit = `delay_scale` ticks and each link takes `delay ≤ scale`.
    delay: u64,
}

impl Link {
    fn new() -> Self {
        Link { head: NIL, tail: NIL, len: 0, last_delivery: 0, delay: 1 }
    }

    fn push_back<M>(&mut self, pool: &mut Pool<M>, idx: u32) {
        if self.tail == NIL {
            self.head = idx;
        } else {
            pool.nodes[self.tail as usize].next = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    /// Pops the head node index (the caller releases it to the pool).
    fn pop_front<M>(&mut self, pool: &Pool<M>) -> u32 {
        let idx = self.head;
        debug_assert!(idx != NIL, "pop on empty link");
        self.head = pool.nodes[idx as usize].next;
        if self.head == NIL {
            self.tail = NIL;
        }
        self.len -= 1;
        idx
    }

    /// Swaps the payloads of the last two queued messages (FIFO-violation
    /// fault). O(len) walk to find the tail's predecessor — fault runs only.
    fn swap_last_two<M>(&self, pool: &mut Pool<M>) {
        debug_assert!(self.len >= 2);
        let mut prev = self.head;
        while pool.nodes[prev as usize].next != self.tail {
            prev = pool.nodes[prev as usize].next;
        }
        let (lo, hi) = (prev.min(self.tail) as usize, prev.max(self.tail) as usize);
        let (a, b) = pool.nodes.split_at_mut(hi);
        std::mem::swap(&mut a[lo].msg, &mut b[0].msg);
        std::mem::swap(&mut a[lo].send_time, &mut b[0].send_time);
    }
}

/// Per-process bookkeeping around the user-provided behavior.
struct Slot<P: ProcessBehavior> {
    proc: P,
    started: bool,
    /// Virtual local clock.
    clock: u64,
    /// The head message was offered and ignored: the process is disabled
    /// until its state changes — which cannot happen — so it is deadlocked.
    wedged: bool,
    sent: u64,
    received: u64,
}

/// Why the network stopped being able to take steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminalKind {
    /// Every process has halted and no messages remain: the outcome the
    /// specification demands.
    AllHalted,
    /// No process is enabled, no messages remain, but some process never
    /// halted (message-terminating but not process-terminating behavior).
    QuiescentNotHalted,
    /// Some process has a pending head message it cannot receive (disabled
    /// with a non-empty link) — a deadlock. Lemmas 11–12 prove `Bk` never
    /// does this; the engine checks rather than assumes.
    Deadlock,
}

impl<P: ProcessBehavior + Clone> Clone for Slot<P> {
    fn clone(&self) -> Self {
        Slot {
            proc: self.proc.clone(),
            started: self.started,
            clock: self.clock,
            wedged: self.wedged,
            sent: self.sent,
            received: self.received,
        }
    }
}

/// The network-wide counters, accumulated in place as actions fire and
/// exposed as one borrowed snapshot via [`Network::counters`] — no
/// per-step re-collection.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetCounters {
    /// Total messages sent so far.
    pub total_sent: u64,
    /// Total bits put on the wire so far.
    pub total_wire_bits: u64,
    /// Total atomic actions fired so far.
    pub actions_fired: u64,
    /// Largest single-link queue length observed so far.
    pub peak_link_occupancy: usize,
    /// Largest per-process space (bits) observed so far.
    pub peak_space_bits: u64,
}

/// The ring network: `n` processes and `n` FIFO links.
///
/// Link `i` is the incoming link of process `i` (i.e. the link from
/// `p(i−1)` to `p(i)`).
pub struct Network<P: ProcessBehavior> {
    slots: Vec<Slot<P>>,
    links: Vec<Link>,
    pool: Pool<P::Msg>,
    /// Sorted indices of the currently-enabled processes, patched
    /// incrementally after every fire.
    enabled_list: Vec<usize>,
    counters: NetCounters,
    label_bits: u32,
    faults: FaultPlan,
    /// How many clock ticks make one of the paper's time units (the
    /// longest link delay). 1 unless heterogeneous delays are configured.
    delay_scale: u64,
    /// Reusable outbox: its buffer is lent to each firing action and taken
    /// back after dispatch, so sends stop allocating once warm.
    scratch: Outbox<P::Msg>,
}

impl<P: ProcessBehavior> Network<P> {
    /// Builds the initial configuration: every process in its initial state
    /// (`on_start` not yet fired), all links empty.
    ///
    /// Processes are spawned via [`Algorithm::spawn_at`], so algorithms that
    /// can share the ring labeling (zero-copy state) do.
    pub fn new<A>(algo: &A, ring: &RingLabeling) -> Self
    where
        A: Algorithm<Proc = P>,
    {
        let n = ring.n();
        let slots: Vec<Slot<P>> = (0..n)
            .map(|i| Slot {
                proc: algo.spawn_at(ring, i),
                started: false,
                clock: 0,
                wedged: false,
                sent: 0,
                received: 0,
            })
            .collect();
        let links = (0..n).map(|_| Link::new()).collect();
        let mut net = Network {
            slots,
            links,
            pool: Pool::new(),
            enabled_list: Vec::with_capacity(n),
            counters: NetCounters::default(),
            label_bits: ring.label_bits(),
            faults: FaultPlan::none(),
            delay_scale: 1,
            scratch: Outbox::new(),
        };
        for i in 0..n {
            net.note_space(i);
            if net.enabled(i) {
                net.enabled_list.push(i);
            }
        }
        net
    }

    /// Injects a deterministic link-fault plan (see [`crate::faults`]);
    /// applied to every subsequent send. The default plan is benign.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Configures **heterogeneous link delays**: `delays[i]` ticks on the
    /// incoming link of process `i` (each `≥ 1`). The paper's time unit is
    /// the *longest* delay ("message transmission time is at most one time
    /// unit"), so [`Self::virtual_time`] and the metrics normalize by
    /// `max(delays)`. Call before the first action fires.
    pub fn set_link_delays(&mut self, delays: &[u64]) {
        assert_eq!(delays.len(), self.n(), "one delay per link");
        assert!(delays.iter().all(|&d| d >= 1), "delays are at least one tick");
        assert_eq!(self.counters.actions_fired, 0, "configure delays before running");
        for (link, &d) in self.links.iter_mut().zip(delays) {
            link.delay = d;
        }
        self.delay_scale = delays.iter().copied().max().unwrap_or(1);
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Immutable view of process `i`'s behavior (for observers and
    /// algorithm-specific analyses).
    pub fn process(&self, i: usize) -> &P {
        &self.slots[i].proc
    }

    /// Election-specification variables of process `i`.
    pub fn election(&self, i: usize) -> ElectionState {
        self.slots[i].proc.election()
    }

    /// All election states, in process order (allocates; the run loop uses
    /// [`Self::election`] per fired process instead).
    pub fn elections(&self) -> Vec<ElectionState> {
        self.slots.iter().map(|s| s.proc.election()).collect()
    }

    /// Virtual clock of process `i`.
    pub fn clock(&self, i: usize) -> u64 {
        self.slots[i].clock
    }

    /// The execution's virtual time so far, in the paper's time units: max
    /// process clock, normalized so the longest link delay is one unit
    /// (rounded up).
    pub fn virtual_time(&self) -> u64 {
        let ticks = self.slots.iter().map(|s| s.clock).max().unwrap_or(0);
        ticks.div_ceil(self.delay_scale)
    }

    /// The accumulated network-wide counters, as one borrowed snapshot.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// Total messages sent so far.
    pub fn total_sent(&self) -> u64 {
        self.counters.total_sent
    }

    /// Total bits put on the wire so far (per-message sizes from
    /// [`ProcessBehavior::msg_wire_bits`]).
    pub fn total_wire_bits(&self) -> u64 {
        self.counters.total_wire_bits
    }

    /// Total atomic actions fired so far.
    pub fn actions_fired(&self) -> u64 {
        self.counters.actions_fired
    }

    /// Messages sent by process `i` so far.
    pub fn sent_by(&self, i: usize) -> u64 {
        self.slots[i].sent
    }

    /// Messages received by process `i` so far.
    pub fn received_by(&self, i: usize) -> u64 {
        self.slots[i].received
    }

    /// Messages currently in flight (sum of link queue lengths).
    pub fn in_flight(&self) -> usize {
        self.links.iter().map(|l| l.len as usize).sum()
    }

    /// Largest single-link queue length observed so far.
    pub fn peak_link_occupancy(&self) -> usize {
        self.counters.peak_link_occupancy
    }

    /// Largest per-process space (bits) observed so far, per the
    /// algorithm's own accounting.
    pub fn peak_space_bits(&self) -> u64 {
        self.counters.peak_space_bits
    }

    /// Contents of the incoming link of process `i`, oldest first (for
    /// tests and observers).
    pub fn link_contents(&self, i: usize) -> Vec<P::Msg> {
        let mut out = Vec::with_capacity(self.links[i].len as usize);
        let mut idx = self.links[i].head;
        while idx != NIL {
            out.push(self.pool.msg(idx).clone());
            idx = self.pool.nodes[idx as usize].next;
        }
        out
    }

    /// Is process `i` enabled? Either its initial action has not fired, or
    /// a head message is present and the process is not halted/wedged.
    pub fn enabled(&self, i: usize) -> bool {
        let s = &self.slots[i];
        if s.proc.election().halted {
            return false;
        }
        if !s.started {
            return true;
        }
        !s.wedged && self.links[i].len > 0
    }

    /// Sorted indices of all enabled processes — a borrowed view of the
    /// incrementally-maintained list (no allocation).
    pub fn enabled_slice(&self) -> &[usize] {
        &self.enabled_list
    }

    /// Indices of all enabled processes (allocating compatibility wrapper
    /// around [`Self::enabled_slice`]).
    pub fn enabled_set(&self) -> Vec<usize> {
        self.enabled_list.clone()
    }

    /// Re-derives `enabled(i)` and patches the sorted enabled list.
    fn refresh_enabled(&mut self, i: usize) {
        let now = self.enabled(i);
        match self.enabled_list.binary_search(&i) {
            Ok(pos) => {
                if !now {
                    self.enabled_list.remove(pos);
                }
            }
            Err(pos) => {
                if now {
                    self.enabled_list.insert(pos, i);
                }
            }
        }
    }

    /// If no process is enabled, classify the terminal configuration.
    pub fn terminal_kind(&self) -> Option<TerminalKind> {
        if !self.enabled_list.is_empty() {
            return None;
        }
        let any_pending_at_live =
            (0..self.n()).any(|i| self.links[i].len > 0 && !self.slots[i].proc.election().halted);
        if any_pending_at_live {
            return Some(TerminalKind::Deadlock);
        }
        // NOTE: a message pending at a *halted* process is unreceivable too;
        // the spec monitor reports it as a violation of clean termination.
        if self.slots.iter().all(|s| s.proc.election().halted) && self.in_flight() == 0 {
            Some(TerminalKind::AllHalted)
        } else if self.in_flight() == 0 {
            Some(TerminalKind::QuiescentNotHalted)
        } else {
            Some(TerminalKind::Deadlock)
        }
    }

    /// Fires one atomic action of process `i`. Returns what happened, or
    /// `None` if `i` was not enabled.
    ///
    /// The caller (scheduler driver) is responsible for fairness.
    pub fn fire(&mut self, i: usize) -> Option<Fired<P::Msg>> {
        self.fire_with_record(i, None)
    }

    /// Like [`Self::fire`], but when `record` is given, clones every sent
    /// message into it (in send order, dropped-by-fault messages included) —
    /// the tracing path. With `record = None` the benign path performs no
    /// message clones at all.
    pub fn fire_with_record(
        &mut self,
        i: usize,
        record: Option<&mut Vec<P::Msg>>,
    ) -> Option<Fired<P::Msg>> {
        if !self.enabled(i) {
            return None;
        }
        let n = self.n();
        if !self.slots[i].started {
            let mut out = std::mem::take(&mut self.scratch);
            self.slots[i].proc.on_start(&mut out);
            self.slots[i].started = true;
            self.counters.actions_fired += 1;
            let sent = self.dispatch(i, &mut out, record);
            self.scratch = out;
            self.note_space(i);
            self.refresh_enabled(i);
            self.refresh_enabled((i + 1) % n);
            return Some(Fired::Started { sent });
        }
        // Offer the head message in place (no clone).
        let head_idx = self.links[i].head;
        let mut out = std::mem::take(&mut self.scratch);
        let reaction = {
            let Network { slots, pool, .. } = self;
            slots[i].proc.on_msg(pool.msg(head_idx), &mut out)
        };
        match reaction {
            Reaction::Consumed => {
                let idx = self.links[i].pop_front(&self.pool);
                debug_assert_eq!(idx, head_idx);
                let (msg, send_time) = self.pool.release(idx);
                let delivery = (send_time + self.links[i].delay).max(self.links[i].last_delivery);
                self.links[i].last_delivery = delivery;
                let s = &mut self.slots[i];
                s.clock = s.clock.max(delivery);
                s.received += 1;
                self.counters.actions_fired += 1;
                let sent = self.dispatch(i, &mut out, record);
                self.scratch = out;
                self.note_space(i);
                self.refresh_enabled(i);
                self.refresh_enabled((i + 1) % n);
                Some(Fired::Received { msg, sent })
            }
            Reaction::Ignored => {
                assert!(out.is_empty(), "an action that does not fire must not send messages");
                self.scratch = out;
                self.slots[i].wedged = true;
                self.refresh_enabled(i);
                Some(Fired::Wedged { head: self.pool.msg(head_idx).clone() })
            }
        }
    }

    /// Moves the action's sends to the outgoing link of `i` (the incoming
    /// link of `i+1`), stamped with `i`'s clock, applying the fault plan
    /// (benign by default: reliable FIFO exactly-once). Returns how many
    /// messages the action sent.
    fn dispatch(
        &mut self,
        i: usize,
        out: &mut Outbox<P::Msg>,
        mut record: Option<&mut Vec<P::Msg>>,
    ) -> u32 {
        let n = self.slots.len();
        let now = self.slots[i].clock;
        let count = out.len() as u32;
        let Network { slots, links, pool, counters, faults, label_bits, .. } = self;
        {
            let proc = &slots[i].proc;
            let link = &mut links[(i + 1) % n];
            for m in out.drain_msgs() {
                counters.total_wire_bits += proc.msg_wire_bits(&m, *label_bits);
                if let Some(rec) = record.as_deref_mut() {
                    rec.push(m.clone());
                }
                let fate = faults.decide();
                if fate.drop {
                    continue;
                }
                let dup = fate.duplicate.then(|| m.clone());
                let idx = pool.alloc(m, now);
                link.push_back(pool, idx);
                if let Some(d) = dup {
                    let idx2 = pool.alloc(d, now);
                    link.push_back(pool, idx2);
                }
                if fate.swap_with_previous && link.len >= 2 {
                    link.swap_last_two(pool);
                }
            }
            counters.peak_link_occupancy = counters.peak_link_occupancy.max(link.len as usize);
        }
        slots[i].sent += count as u64;
        counters.total_sent += count as u64;
        count
    }

    fn note_space(&mut self, i: usize) {
        let bits = self.slots[i].proc.space_bits(self.label_bits);
        self.counters.peak_space_bits = self.counters.peak_space_bits.max(bits);
    }
}

impl<P: ProcessBehavior + Clone> Clone for Network<P> {
    fn clone(&self) -> Self {
        Network {
            slots: self.slots.clone(),
            links: self.links.clone(),
            pool: self.pool.clone(),
            enabled_list: self.enabled_list.clone(),
            counters: self.counters,
            label_bits: self.label_bits,
            faults: self.faults.clone(),
            delay_scale: self.delay_scale,
            scratch: Outbox::new(),
        }
    }
}

/// Result of firing one action. Sent messages are reported by **count**;
/// callers that need the messages themselves (tracing) pass a record buffer
/// to [`Network::fire_with_record`].
#[derive(Clone, Debug)]
pub enum Fired<M> {
    /// The initial action ran.
    Started {
        /// How many messages the initial action sent.
        sent: u32,
    },
    /// A receive action ran on `msg` (moved out of the link, not cloned).
    Received {
        /// The consumed head message.
        msg: M,
        /// How many messages the action sent.
        sent: u32,
    },
    /// The process ignored its head message and is now permanently disabled.
    Wedged {
        /// The unreceivable head message.
        head: M,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Algorithm;
    use hre_words::Label;

    /// A toy algorithm: each process sends its label once; every process
    /// consumes exactly `n_expected` labels then declares the max label the
    /// leader (it knows n — this is only an engine test, not a real
    /// election).
    struct Toy {
        n: usize,
    }

    struct ToyProc {
        id: Label,
        best: Label,
        seen: usize,
        n: usize,
        st: ElectionState,
    }

    impl Algorithm for Toy {
        type Proc = ToyProc;
        fn name(&self) -> String {
            "Toy".into()
        }
        fn spawn(&self, label: Label) -> ToyProc {
            ToyProc { id: label, best: label, seen: 0, n: self.n, st: ElectionState::INITIAL }
        }
    }

    impl ProcessBehavior for ToyProc {
        type Msg = Label;
        fn on_start(&mut self, out: &mut Outbox<Label>) {
            out.send(self.id);
        }
        fn on_msg(&mut self, msg: &Label, out: &mut Outbox<Label>) -> Reaction {
            self.seen += 1;
            if *msg > self.best {
                self.best = *msg;
            }
            if self.seen < self.n - 1 {
                out.send(*msg);
            }
            if self.seen == self.n - 1 {
                self.st.is_leader = self.best == self.id;
                self.st.leader = Some(self.best);
                self.st.done = true;
                self.st.halted = true;
            }
            Reaction::Consumed
        }
        fn election(&self) -> ElectionState {
            self.st
        }
        fn space_bits(&self, b: u32) -> u64 {
            2 * b as u64 + 64
        }
    }

    fn drive<P: ProcessBehavior>(net: &mut Network<P>) {
        let mut guard = 0;
        while let Some(&i) = net.enabled_slice().first() {
            net.fire(i);
            guard += 1;
            assert!(guard < 100_000, "runaway");
        }
    }

    #[test]
    fn toy_terminates_all_halted() {
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5]);
        let mut net = Network::new(&Toy { n: 5 }, &ring);
        drive(&mut net);
        assert_eq!(net.terminal_kind(), Some(TerminalKind::AllHalted));
        for i in 0..5 {
            let e = net.election(i);
            assert!(e.done && e.halted);
            assert_eq!(e.leader, Some(Label::new(5)));
        }
        // exactly one leader, at index 4
        let leaders: Vec<usize> = (0..5).filter(|&i| net.election(i).is_leader).collect();
        assert_eq!(leaders, vec![4]);
    }

    #[test]
    fn message_counts_are_tracked() {
        let ring = RingLabeling::from_raw(&[2, 1, 3]);
        let mut net = Network::new(&Toy { n: 3 }, &ring);
        drive(&mut net);
        // each process sends its own label + forwards each of the other
        // labels except the last received: 1 + 1 = 2 sends each
        assert_eq!(net.total_sent(), 6);
        for i in 0..3 {
            assert_eq!(net.sent_by(i), 2);
            assert_eq!(net.received_by(i), 2);
        }
    }

    #[test]
    fn virtual_time_equals_longest_chain() {
        // In Toy on n processes, the label that travels farthest makes
        // n-1 hops, each costing one unit: virtual time = n - 1.
        for n in 2..8usize {
            let raw: Vec<u64> = (1..=n as u64).collect();
            let ring = RingLabeling::from_raw(&raw);
            let mut net = Network::new(&Toy { n }, &ring);
            drive(&mut net);
            assert_eq!(net.virtual_time(), (n - 1) as u64, "n={n}");
        }
    }

    #[test]
    fn initial_configuration_is_clean() {
        let ring = RingLabeling::from_raw(&[1, 2]);
        let net = Network::new(&Toy { n: 2 }, &ring);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.total_sent(), 0);
        assert_eq!(net.virtual_time(), 0);
        assert!(net.enabled(0) && net.enabled(1)); // initial actions pending
        assert_eq!(net.terminal_kind(), None);
    }

    /// A process that ignores every message: the engine must classify the
    /// result as a deadlock, not completion.
    struct Stubborn;
    struct StubbornProc {
        id: Label,
    }
    impl Algorithm for Stubborn {
        type Proc = StubbornProc;
        fn name(&self) -> String {
            "Stubborn".into()
        }
        fn spawn(&self, label: Label) -> StubbornProc {
            StubbornProc { id: label }
        }
    }
    impl ProcessBehavior for StubbornProc {
        type Msg = Label;
        fn on_start(&mut self, out: &mut Outbox<Label>) {
            out.send(self.id);
        }
        fn on_msg(&mut self, _msg: &Label, _out: &mut Outbox<Label>) -> Reaction {
            Reaction::Ignored
        }
        fn election(&self) -> ElectionState {
            ElectionState::INITIAL
        }
        fn space_bits(&self, b: u32) -> u64 {
            b as u64
        }
    }

    #[test]
    fn ignored_head_wedges_and_deadlocks() {
        let ring = RingLabeling::from_raw(&[1, 2]);
        let mut net = Network::new(&Stubborn, &ring);
        let mut guard = 0;
        loop {
            let en = net.enabled_set();
            if en.is_empty() {
                break;
            }
            net.fire(en[0]);
            guard += 1;
            assert!(guard < 100, "wedging must terminate the run");
        }
        assert_eq!(net.terminal_kind(), Some(TerminalKind::Deadlock));
        assert_eq!(net.in_flight(), 2); // both labels stuck at the heads
    }

    #[test]
    fn fire_on_disabled_process_returns_none() {
        let ring = RingLabeling::from_raw(&[1, 2]);
        let mut net = Network::new(&Toy { n: 2 }, &ring);
        net.fire(0);
        net.fire(1);
        net.fire(0);
        net.fire(1);
        assert_eq!(net.terminal_kind(), Some(TerminalKind::AllHalted));
        assert!(net.fire(0).is_none());
    }

    #[test]
    fn enabled_slice_matches_recomputation_throughout() {
        // Fire in an arbitrary (but deterministic) pattern and check the
        // incrementally-patched list against brute-force recomputation
        // after every action.
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let mut net = Network::new(&Toy { n: 8 }, &ring);
        let mut turn = 0usize;
        loop {
            let en = net.enabled_slice().to_vec();
            if en.is_empty() {
                break;
            }
            let brute: Vec<usize> = (0..net.n()).filter(|&i| net.enabled(i)).collect();
            assert_eq!(en, brute, "incremental enabled list diverged");
            net.fire(en[turn % en.len()]);
            turn += 1;
        }
        let brute: Vec<usize> = (0..net.n()).filter(|&i| net.enabled(i)).collect();
        assert!(brute.is_empty());
    }

    #[test]
    fn pool_recycles_nodes_in_steady_state() {
        // Toy keeps at most `n` messages in flight; the slab must stay at
        // the high-water mark of concurrent in-flight messages instead of
        // growing with total sends.
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let mut net = Network::new(&Toy { n: 8 }, &ring);
        drive(&mut net);
        assert!(net.total_sent() > net.pool.nodes.len() as u64, "nodes were recycled");
        assert!(
            net.pool.nodes.len() <= net.counters.peak_link_occupancy * net.n(),
            "slab bounded by peak in-flight: {} nodes vs peak {} per link",
            net.pool.nodes.len(),
            net.counters.peak_link_occupancy
        );
    }

    // --- clone accounting (the former send path cloned every message once,
    // twice under a duplicate fault) -------------------------------------

    thread_local! {
        static CLONES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// A label wrapper whose `Clone` impl counts — a probe for engine-level
    /// copies.
    #[derive(Debug, PartialEq, Eq)]
    struct ProbeMsg(Label);

    impl Clone for ProbeMsg {
        fn clone(&self) -> Self {
            CLONES.with(|c| c.set(c.get() + 1));
            ProbeMsg(self.0)
        }
    }

    struct ProbeToy {
        n: usize,
    }
    struct ProbeProc {
        inner: ToyProc,
    }
    impl Algorithm for ProbeToy {
        type Proc = ProbeProc;
        fn name(&self) -> String {
            "ProbeToy".into()
        }
        fn spawn(&self, label: Label) -> ProbeProc {
            ProbeProc { inner: Toy { n: self.n }.spawn(label) }
        }
    }
    impl ProcessBehavior for ProbeProc {
        type Msg = ProbeMsg;
        fn on_start(&mut self, out: &mut Outbox<ProbeMsg>) {
            let mut inner_out = Outbox::new();
            self.inner.on_start(&mut inner_out);
            for l in inner_out.into_msgs() {
                out.send(ProbeMsg(l));
            }
        }
        fn on_msg(&mut self, msg: &ProbeMsg, out: &mut Outbox<ProbeMsg>) -> Reaction {
            let mut inner_out = Outbox::new();
            let r = self.inner.on_msg(&msg.0, &mut inner_out);
            for l in inner_out.into_msgs() {
                out.send(ProbeMsg(l));
            }
            r
        }
        fn election(&self) -> ElectionState {
            self.inner.election()
        }
        fn space_bits(&self, b: u32) -> u64 {
            self.inner.space_bits(b)
        }
    }

    fn count_clones(f: impl FnOnce()) -> u64 {
        CLONES.with(|c| c.set(0));
        f();
        CLONES.with(|c| c.get())
    }

    #[test]
    fn benign_run_clones_no_messages() {
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5]);
        let clones = count_clones(|| {
            let mut net = Network::new(&ProbeToy { n: 5 }, &ring);
            drive(&mut net);
            assert_eq!(net.terminal_kind(), Some(TerminalKind::AllHalted));
        });
        assert_eq!(clones, 0, "the benign path must move messages, not clone them");
    }

    #[test]
    fn duplicate_fault_clones_exactly_the_duplicates() {
        use crate::faults::{FaultPlan, LinkFault};
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5]);
        let clones = count_clones(|| {
            let mut net = Network::new(&ProbeToy { n: 5 }, &ring);
            net.set_fault_plan(FaultPlan::single(LinkFault::DuplicateEveryNth(3)));
            let mut guard = 0;
            while let Some(&i) = net.enabled_slice().first() {
                net.fire(i);
                guard += 1;
                assert!(guard < 100_000, "runaway");
            }
            // every 3rd send was duplicated — one clone per duplicate
            assert_eq!(CLONES.with(|c| c.get()), net.total_sent() / 3);
        });
        assert!(clones > 0);
    }

    #[test]
    fn recording_clones_once_per_sent_message() {
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5]);
        let clones = count_clones(|| {
            let mut net = Network::new(&ProbeToy { n: 5 }, &ring);
            let mut buf = Vec::new();
            let mut recorded = 0u64;
            let mut guard = 0;
            while let Some(&i) = net.enabled_slice().first() {
                buf.clear();
                net.fire_with_record(i, Some(&mut buf));
                recorded += buf.len() as u64;
                guard += 1;
                assert!(guard < 100_000, "runaway");
            }
            assert_eq!(recorded, net.total_sent());
            assert_eq!(CLONES.with(|c| c.get()), recorded);
        });
        assert!(clones > 0);
    }
}
