//! The ring network engine: configurations, steps, virtual time, terminal
//! detection.
//!
//! A **configuration** is the vector of process states plus the contents of
//! every link (Section II). The engine owns both, fires atomic actions, and
//! maintains the paper's time-unit metric online:
//!
//! * every message carries the virtual time at which it was sent;
//! * its delivery time is `max(send_time + 1, previous delivery on the same
//!   link)` — transmission takes at most one unit and links are FIFO;
//! * a process's clock is the max delivery time it has processed
//!   (processing itself takes zero time);
//! * the execution's duration is the largest clock reached.
//!
//! This is exactly the classical normalization ("the longest message delay
//! becomes one unit of time") the paper cites from Tel's book.

use crate::faults::FaultPlan;
use crate::process::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_ring::RingLabeling;
use std::collections::VecDeque;

/// A message in flight, stamped with its virtual send time.
#[derive(Clone, Debug)]
struct InFlight<M> {
    msg: M,
    send_time: u64,
}

/// The incoming FIFO link of one process.
#[derive(Clone, Debug)]
struct Link<M> {
    queue: VecDeque<InFlight<M>>,
    /// Delivery time of the last message received on this link (FIFO links
    /// deliver in non-decreasing virtual time).
    last_delivery: u64,
    /// Transmission time of this link in clock ticks. The paper's model
    /// says "at most one time unit": with [`Network::set_link_delays`],
    /// one unit = `delay_scale` ticks and each link takes `delay ≤ scale`.
    delay: u64,
}

impl<M> Link<M> {
    fn new() -> Self {
        Link { queue: VecDeque::new(), last_delivery: 0, delay: 1 }
    }
}

/// Per-process bookkeeping around the user-provided behavior.
struct Slot<P: ProcessBehavior> {
    proc: P,
    started: bool,
    /// Virtual local clock.
    clock: u64,
    /// The head message was offered and ignored: the process is disabled
    /// until its state changes — which cannot happen — so it is deadlocked.
    wedged: bool,
    sent: u64,
    received: u64,
}

/// Why the network stopped being able to take steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminalKind {
    /// Every process has halted and no messages remain: the outcome the
    /// specification demands.
    AllHalted,
    /// No process is enabled, no messages remain, but some process never
    /// halted (message-terminating but not process-terminating behavior).
    QuiescentNotHalted,
    /// Some process has a pending head message it cannot receive (disabled
    /// with a non-empty link) — a deadlock. Lemmas 11–12 prove `Bk` never
    /// does this; the engine checks rather than assumes.
    Deadlock,
}

impl<P: ProcessBehavior + Clone> Clone for Slot<P> {
    fn clone(&self) -> Self {
        Slot {
            proc: self.proc.clone(),
            started: self.started,
            clock: self.clock,
            wedged: self.wedged,
            sent: self.sent,
            received: self.received,
        }
    }
}

/// The ring network: `n` processes and `n` FIFO links.
///
/// Link `i` is the incoming link of process `i` (i.e. the link from
/// `p(i−1)` to `p(i)`).
pub struct Network<P: ProcessBehavior> {
    slots: Vec<Slot<P>>,
    links: Vec<Link<P::Msg>>,
    total_sent: u64,
    total_wire_bits: u64,
    actions_fired: u64,
    peak_link_occupancy: usize,
    peak_space_bits: u64,
    label_bits: u32,
    faults: FaultPlan,
    /// How many clock ticks make one of the paper's time units (the
    /// longest link delay). 1 unless heterogeneous delays are configured.
    delay_scale: u64,
}

impl<P: ProcessBehavior> Network<P> {
    /// Builds the initial configuration: every process in its initial state
    /// (`on_start` not yet fired), all links empty.
    pub fn new<A>(algo: &A, ring: &RingLabeling) -> Self
    where
        A: Algorithm<Proc = P>,
    {
        let n = ring.n();
        let slots = (0..n)
            .map(|i| Slot {
                proc: algo.spawn(ring.label(i)),
                started: false,
                clock: 0,
                wedged: false,
                sent: 0,
                received: 0,
            })
            .collect();
        let links = (0..n).map(|_| Link::new()).collect();
        let mut net = Network {
            slots,
            links,
            total_sent: 0,
            total_wire_bits: 0,
            actions_fired: 0,
            peak_link_occupancy: 0,
            peak_space_bits: 0,
            label_bits: ring.label_bits(),
            faults: FaultPlan::none(),
            delay_scale: 1,
        };
        for i in 0..n {
            net.note_space(i);
        }
        net
    }

    /// Injects a deterministic link-fault plan (see [`crate::faults`]);
    /// applied to every subsequent send. The default plan is benign.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Configures **heterogeneous link delays**: `delays[i]` ticks on the
    /// incoming link of process `i` (each `≥ 1`). The paper's time unit is
    /// the *longest* delay ("message transmission time is at most one time
    /// unit"), so [`Self::virtual_time`] and the metrics normalize by
    /// `max(delays)`. Call before the first action fires.
    pub fn set_link_delays(&mut self, delays: &[u64]) {
        assert_eq!(delays.len(), self.n(), "one delay per link");
        assert!(delays.iter().all(|&d| d >= 1), "delays are at least one tick");
        assert_eq!(self.actions_fired, 0, "configure delays before running");
        for (link, &d) in self.links.iter_mut().zip(delays) {
            link.delay = d;
        }
        self.delay_scale = delays.iter().copied().max().unwrap_or(1);
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Immutable view of process `i`'s behavior (for observers and
    /// algorithm-specific analyses).
    pub fn process(&self, i: usize) -> &P {
        &self.slots[i].proc
    }

    /// Election-specification variables of process `i`.
    pub fn election(&self, i: usize) -> ElectionState {
        self.slots[i].proc.election()
    }

    /// All election states, in process order.
    pub fn elections(&self) -> Vec<ElectionState> {
        self.slots.iter().map(|s| s.proc.election()).collect()
    }

    /// Virtual clock of process `i`.
    pub fn clock(&self, i: usize) -> u64 {
        self.slots[i].clock
    }

    /// The execution's virtual time so far, in the paper's time units: max
    /// process clock, normalized so the longest link delay is one unit
    /// (rounded up).
    pub fn virtual_time(&self) -> u64 {
        let ticks = self.slots.iter().map(|s| s.clock).max().unwrap_or(0);
        ticks.div_ceil(self.delay_scale)
    }

    /// Total messages sent so far.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total bits put on the wire so far (per-message sizes from
    /// [`ProcessBehavior::msg_wire_bits`]).
    pub fn total_wire_bits(&self) -> u64 {
        self.total_wire_bits
    }

    /// Total atomic actions fired so far.
    pub fn actions_fired(&self) -> u64 {
        self.actions_fired
    }

    /// Messages sent by process `i` so far.
    pub fn sent_by(&self, i: usize) -> u64 {
        self.slots[i].sent
    }

    /// Messages received by process `i` so far.
    pub fn received_by(&self, i: usize) -> u64 {
        self.slots[i].received
    }

    /// Messages currently in flight (sum of link queue lengths).
    pub fn in_flight(&self) -> usize {
        self.links.iter().map(|l| l.queue.len()).sum()
    }

    /// Largest single-link queue length observed so far.
    pub fn peak_link_occupancy(&self) -> usize {
        self.peak_link_occupancy
    }

    /// Largest per-process space (bits) observed so far, per the
    /// algorithm's own accounting.
    pub fn peak_space_bits(&self) -> u64 {
        self.peak_space_bits
    }

    /// Contents of the incoming link of process `i`, oldest first (for
    /// tests and observers).
    pub fn link_contents(&self, i: usize) -> Vec<P::Msg> {
        self.links[i].queue.iter().map(|f| f.msg.clone()).collect()
    }

    /// Is process `i` enabled? Either its initial action has not fired, or
    /// a head message is present and the process is not halted/wedged.
    pub fn enabled(&self, i: usize) -> bool {
        let s = &self.slots[i];
        if s.proc.election().halted {
            return false;
        }
        if !s.started {
            return true;
        }
        !s.wedged && !self.links[i].queue.is_empty()
    }

    /// Indices of all enabled processes.
    pub fn enabled_set(&self) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.enabled(i)).collect()
    }

    /// If no process is enabled, classify the terminal configuration.
    pub fn terminal_kind(&self) -> Option<TerminalKind> {
        if self.slots.iter().enumerate().any(|(i, _)| self.enabled(i)) {
            return None;
        }
        let any_pending_at_live = (0..self.n())
            .any(|i| !self.links[i].queue.is_empty() && !self.slots[i].proc.election().halted);
        if any_pending_at_live {
            return Some(TerminalKind::Deadlock);
        }
        // NOTE: a message pending at a *halted* process is unreceivable too;
        // the spec monitor reports it as a violation of clean termination.
        if self.slots.iter().all(|s| s.proc.election().halted) && self.in_flight() == 0 {
            Some(TerminalKind::AllHalted)
        } else if self.in_flight() == 0 {
            Some(TerminalKind::QuiescentNotHalted)
        } else {
            Some(TerminalKind::Deadlock)
        }
    }

    /// Fires one atomic action of process `i`. Returns what happened, or
    /// `None` if `i` was not enabled.
    ///
    /// The caller (scheduler driver) is responsible for fairness.
    pub fn fire(&mut self, i: usize) -> Option<Fired<P::Msg>> {
        if !self.enabled(i) {
            return None;
        }
        if !self.slots[i].started {
            let mut out = Outbox::new();
            self.slots[i].proc.on_start(&mut out);
            self.slots[i].started = true;
            self.actions_fired += 1;
            let sent = self.dispatch(i, out);
            self.note_space(i);
            return Some(Fired::Started { sent });
        }
        // Offer the head message.
        let head = self.links[i].queue.front().expect("enabled implies head present").clone();
        let mut out = Outbox::new();
        let reaction = self.slots[i].proc.on_msg(&head.msg, &mut out);
        match reaction {
            Reaction::Consumed => {
                let inflight = self.links[i].queue.pop_front().expect("head present");
                let delivery =
                    (inflight.send_time + self.links[i].delay).max(self.links[i].last_delivery);
                self.links[i].last_delivery = delivery;
                let s = &mut self.slots[i];
                s.clock = s.clock.max(delivery);
                s.received += 1;
                self.actions_fired += 1;
                let sent = self.dispatch(i, out);
                self.note_space(i);
                Some(Fired::Received { msg: inflight.msg, sent })
            }
            Reaction::Ignored => {
                assert!(out.is_empty(), "an action that does not fire must not send messages");
                self.slots[i].wedged = true;
                Some(Fired::Wedged { head: head.msg })
            }
        }
    }

    /// Appends the action's sends to the outgoing link of `i` (the incoming
    /// link of `i+1`), stamped with `i`'s clock, applying the fault plan
    /// (benign by default: reliable FIFO exactly-once).
    fn dispatch(&mut self, i: usize, out: Outbox<P::Msg>) -> Vec<P::Msg> {
        let n = self.n();
        let now = self.slots[i].clock;
        let msgs = out.into_msgs();
        let mut wire = 0u64;
        for m in &msgs {
            wire += self.slots[i].proc.msg_wire_bits(m, self.label_bits);
        }
        self.total_wire_bits += wire;
        let link = &mut self.links[(i + 1) % n];
        for m in &msgs {
            let fate = self.faults.decide();
            if fate.drop {
                continue;
            }
            link.queue.push_back(InFlight { msg: m.clone(), send_time: now });
            if fate.duplicate {
                link.queue.push_back(InFlight { msg: m.clone(), send_time: now });
            }
            if fate.swap_with_previous && link.queue.len() >= 2 {
                let len = link.queue.len();
                link.queue.swap(len - 1, len - 2);
            }
        }
        self.peak_link_occupancy = self.peak_link_occupancy.max(link.queue.len());
        self.slots[i].sent += msgs.len() as u64;
        self.total_sent += msgs.len() as u64;
        msgs
    }

    fn note_space(&mut self, i: usize) {
        let bits = self.slots[i].proc.space_bits(self.label_bits);
        self.peak_space_bits = self.peak_space_bits.max(bits);
    }
}

impl<P: ProcessBehavior + Clone> Clone for Network<P> {
    fn clone(&self) -> Self {
        Network {
            slots: self.slots.clone(),
            links: self.links.clone(),
            total_sent: self.total_sent,
            total_wire_bits: self.total_wire_bits,
            actions_fired: self.actions_fired,
            peak_link_occupancy: self.peak_link_occupancy,
            peak_space_bits: self.peak_space_bits,
            label_bits: self.label_bits,
            faults: self.faults.clone(),
            delay_scale: self.delay_scale,
        }
    }
}

/// Result of firing one action.
#[derive(Clone, Debug)]
pub enum Fired<M> {
    /// The initial action ran; `sent` lists the messages it sent.
    Started {
        /// Messages sent by the initial action.
        sent: Vec<M>,
    },
    /// A receive action ran on `msg`; `sent` lists the messages it sent.
    Received {
        /// The consumed head message.
        msg: M,
        /// Messages sent by the action.
        sent: Vec<M>,
    },
    /// The process ignored its head message and is now permanently disabled.
    Wedged {
        /// The unreceivable head message.
        head: M,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Algorithm;
    use hre_words::Label;

    /// A toy algorithm: each process sends its label once; every process
    /// consumes exactly `n_expected` labels then declares the max label the
    /// leader (it knows n — this is only an engine test, not a real
    /// election).
    struct Toy {
        n: usize,
    }

    struct ToyProc {
        id: Label,
        best: Label,
        seen: usize,
        n: usize,
        st: ElectionState,
    }

    impl Algorithm for Toy {
        type Proc = ToyProc;
        fn name(&self) -> String {
            "Toy".into()
        }
        fn spawn(&self, label: Label) -> ToyProc {
            ToyProc { id: label, best: label, seen: 0, n: self.n, st: ElectionState::INITIAL }
        }
    }

    impl ProcessBehavior for ToyProc {
        type Msg = Label;
        fn on_start(&mut self, out: &mut Outbox<Label>) {
            out.send(self.id);
        }
        fn on_msg(&mut self, msg: &Label, out: &mut Outbox<Label>) -> Reaction {
            self.seen += 1;
            if *msg > self.best {
                self.best = *msg;
            }
            if self.seen < self.n - 1 {
                out.send(*msg);
            }
            if self.seen == self.n - 1 {
                self.st.is_leader = self.best == self.id;
                self.st.leader = Some(self.best);
                self.st.done = true;
                self.st.halted = true;
            }
            Reaction::Consumed
        }
        fn election(&self) -> ElectionState {
            self.st
        }
        fn space_bits(&self, b: u32) -> u64 {
            2 * b as u64 + 64
        }
    }

    fn drive<P: ProcessBehavior>(net: &mut Network<P>) {
        let mut guard = 0;
        while let Some(&i) = net.enabled_set().first() {
            net.fire(i);
            guard += 1;
            assert!(guard < 100_000, "runaway");
        }
    }

    #[test]
    fn toy_terminates_all_halted() {
        let ring = RingLabeling::from_raw(&[3, 1, 4, 1, 5]);
        let mut net = Network::new(&Toy { n: 5 }, &ring);
        drive(&mut net);
        assert_eq!(net.terminal_kind(), Some(TerminalKind::AllHalted));
        for i in 0..5 {
            let e = net.election(i);
            assert!(e.done && e.halted);
            assert_eq!(e.leader, Some(Label::new(5)));
        }
        // exactly one leader, at index 4
        let leaders: Vec<usize> = (0..5).filter(|&i| net.election(i).is_leader).collect();
        assert_eq!(leaders, vec![4]);
    }

    #[test]
    fn message_counts_are_tracked() {
        let ring = RingLabeling::from_raw(&[2, 1, 3]);
        let mut net = Network::new(&Toy { n: 3 }, &ring);
        drive(&mut net);
        // each process sends its own label + forwards each of the other
        // labels except the last received: 1 + 1 = 2 sends each
        assert_eq!(net.total_sent(), 6);
        for i in 0..3 {
            assert_eq!(net.sent_by(i), 2);
            assert_eq!(net.received_by(i), 2);
        }
    }

    #[test]
    fn virtual_time_equals_longest_chain() {
        // In Toy on n processes, the label that travels farthest makes
        // n-1 hops, each costing one unit: virtual time = n - 1.
        for n in 2..8usize {
            let raw: Vec<u64> = (1..=n as u64).collect();
            let ring = RingLabeling::from_raw(&raw);
            let mut net = Network::new(&Toy { n }, &ring);
            drive(&mut net);
            assert_eq!(net.virtual_time(), (n - 1) as u64, "n={n}");
        }
    }

    #[test]
    fn initial_configuration_is_clean() {
        let ring = RingLabeling::from_raw(&[1, 2]);
        let net = Network::new(&Toy { n: 2 }, &ring);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.total_sent(), 0);
        assert_eq!(net.virtual_time(), 0);
        assert!(net.enabled(0) && net.enabled(1)); // initial actions pending
        assert_eq!(net.terminal_kind(), None);
    }

    /// A process that ignores every message: the engine must classify the
    /// result as a deadlock, not completion.
    struct Stubborn;
    struct StubbornProc {
        id: Label,
    }
    impl Algorithm for Stubborn {
        type Proc = StubbornProc;
        fn name(&self) -> String {
            "Stubborn".into()
        }
        fn spawn(&self, label: Label) -> StubbornProc {
            StubbornProc { id: label }
        }
    }
    impl ProcessBehavior for StubbornProc {
        type Msg = Label;
        fn on_start(&mut self, out: &mut Outbox<Label>) {
            out.send(self.id);
        }
        fn on_msg(&mut self, _msg: &Label, _out: &mut Outbox<Label>) -> Reaction {
            Reaction::Ignored
        }
        fn election(&self) -> ElectionState {
            ElectionState::INITIAL
        }
        fn space_bits(&self, b: u32) -> u64 {
            b as u64
        }
    }

    #[test]
    fn ignored_head_wedges_and_deadlocks() {
        let ring = RingLabeling::from_raw(&[1, 2]);
        let mut net = Network::new(&Stubborn, &ring);
        let mut guard = 0;
        loop {
            let en = net.enabled_set();
            if en.is_empty() {
                break;
            }
            net.fire(en[0]);
            guard += 1;
            assert!(guard < 100, "wedging must terminate the run");
        }
        assert_eq!(net.terminal_kind(), Some(TerminalKind::Deadlock));
        assert_eq!(net.in_flight(), 2); // both labels stuck at the heads
    }

    #[test]
    fn fire_on_disabled_process_returns_none() {
        let ring = RingLabeling::from_raw(&[1, 2]);
        let mut net = Network::new(&Toy { n: 2 }, &ring);
        net.fire(0);
        net.fire(1);
        net.fire(0);
        net.fire(1);
        assert_eq!(net.terminal_kind(), Some(TerminalKind::AllHalted));
        assert!(net.fire(0).is_none());
    }
}
