//! Execution traces: the sequence of atomic events, for debugging, for the
//! figure-reproduction experiments, and for state-diagram conformance
//! checking.

use std::fmt::Debug;

/// What kind of atomic event occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind<M> {
    /// The process's initial (message-free) action fired.
    Start,
    /// The process received (consumed) this message.
    Receive(M),
    /// The process ignored its head message and is permanently disabled.
    Wedge(M),
}

/// One atomic event: which process, what happened, what it sent, and the
/// virtual time afterwards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActionEvent<M> {
    /// Global sequence number of the event (0-based).
    pub seq: u64,
    /// Scheduler step in which the event fired.
    pub step: u64,
    /// The process that fired.
    pub pid: usize,
    /// What fired.
    pub kind: EventKind<M>,
    /// Messages the action sent, in order.
    pub sent: Vec<M>,
    /// The process's virtual clock after the event.
    pub clock: u64,
}

/// A recorded execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace<M> {
    events: Vec<ActionEvent<M>>,
}

impl<M: Clone + Debug> Trace<M> {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Appends an event.
    pub fn push(&mut self, ev: ActionEvent<M>) {
        self.events.push(ev);
    }

    /// All events in order.
    pub fn events(&self) -> &[ActionEvent<M>] {
        &self.events
    }

    /// Events fired by one process, in order.
    pub fn by_process(&self, pid: usize) -> impl Iterator<Item = &ActionEvent<M>> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// The messages received by `pid`, in order — the process's input
    /// stream. By FIFO confluence this stream is schedule-invariant.
    pub fn received_stream(&self, pid: usize) -> Vec<M> {
        self.by_process(pid)
            .filter_map(|e| match &e.kind {
                EventKind::Receive(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    /// The messages sent by `pid`, in order — its output stream.
    pub fn sent_stream(&self, pid: usize) -> Vec<M> {
        self.by_process(pid).flat_map(|e| e.sent.iter().cloned()).collect()
    }

    /// Serializes the trace as JSON Lines (one object per event) for
    /// external tooling — hand-rolled, message payloads rendered via their
    /// `Debug` form and properly escaped.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let (kind, msg) = match &e.kind {
                EventKind::Start => ("start", String::new()),
                EventKind::Receive(m) => ("receive", format!("{m:?}")),
                EventKind::Wedge(m) => ("wedge", format!("{m:?}")),
            };
            let sent: Vec<String> = e.sent.iter().map(|m| json_string(&format!("{m:?}"))).collect();
            out.push_str(&format!(
                "{{\"seq\":{},\"step\":{},\"pid\":{},\"kind\":{},\"msg\":{},\"sent\":[{}],\"clock\":{}}}\n",
                e.seq,
                e.step,
                e.pid,
                json_string(kind),
                json_string(&msg),
                sent.join(","),
                e.clock
            ));
        }
        out
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, pid: usize, kind: EventKind<u8>, sent: Vec<u8>) -> ActionEvent<u8> {
        ActionEvent { seq, step: seq, pid, kind, sent, clock: 0 }
    }

    #[test]
    fn json_lines_export() {
        let mut t = Trace::new();
        t.push(ev(0, 0, EventKind::Start, vec![7]));
        t.push(ev(1, 1, EventKind::Receive(7), vec![]));
        let json = t.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"start\""), "{json}");
        assert!(lines[0].contains("\"sent\":[\"7\"]"), "{json}");
        assert!(lines[1].contains("\"kind\":\"receive\""), "{json}");
        assert!(lines[1].contains("\"msg\":\"7\""), "{json}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(super::json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(super::json_string("x\\y"), "\"x\\\\y\"");
        assert_eq!(super::json_string("n\nl"), "\"n\\nl\"");
        assert_eq!(super::json_string("tab\t"), "\"tab\\t\"");
    }

    #[test]
    fn streams_are_per_process_and_ordered() {
        let mut t = Trace::new();
        t.push(ev(0, 0, EventKind::Start, vec![1]));
        t.push(ev(1, 1, EventKind::Receive(1), vec![2]));
        t.push(ev(2, 0, EventKind::Receive(2), vec![3, 4]));
        t.push(ev(3, 1, EventKind::Receive(3), vec![]));
        t.push(ev(4, 1, EventKind::Wedge(4), vec![]));

        assert_eq!(t.len(), 5);
        assert_eq!(t.received_stream(0), vec![2]);
        assert_eq!(t.received_stream(1), vec![1, 3]);
        assert_eq!(t.sent_stream(0), vec![1, 3, 4]);
        assert_eq!(t.sent_stream(1), vec![2]);
        assert_eq!(t.by_process(1).count(), 3);
    }
}
