//! High-level drivers: run an algorithm on a ring under a scheduler, with
//! online specification monitoring, metrics, and optional tracing.

use crate::engine::{Fired, Network, TerminalKind};
use crate::faults::FaultPlan;
use crate::metrics::RunMetrics;
use crate::process::{Algorithm, ProcessBehavior};
use crate::sched::{Scheduler, Selection};
use crate::spec::{SpecMonitor, SpecViolation};
use crate::trace::{ActionEvent, EventKind, Trace};
use hre_ring::RingLabeling;

/// Options for a run.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Abort after this many atomic actions (defends against livelock).
    pub max_actions: u64,
    /// Record the full event trace (off by default; traces can be large).
    pub record_trace: bool,
    /// Stop as soon as the specification monitor records a violation —
    /// used by the impossibility experiments, which only need the
    /// counterexample, not the (possibly endless) aftermath.
    pub stop_on_violation: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { max_actions: 20_000_000, record_trace: false, stop_on_violation: false }
    }
}

/// How the run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Terminal configuration with every process halted — what the
    /// specification demands.
    Completed,
    /// Terminal, quiescent, but some process never halted.
    QuiescentNotHalted,
    /// Some process is disabled with a pending head message.
    Deadlock,
    /// The action budget ran out (livelock or a genuinely long run).
    ActionLimit,
    /// The run was cut short by `stop_on_violation` after the first
    /// specification violation.
    StoppedOnViolation,
}

/// Everything measured and observed in one run.
#[derive(Clone, Debug)]
pub struct RunReport<M> {
    /// How the run ended.
    pub verdict: Verdict,
    /// Complexity metrics.
    pub metrics: RunMetrics,
    /// Violations of the leader-election specification (empty for a correct
    /// algorithm on a ring of its class).
    pub violations: Vec<SpecViolation>,
    /// Index of the elected leader, if the terminal configuration has
    /// exactly one.
    pub leader: Option<usize>,
    /// The event trace, when requested.
    pub trace: Option<Trace<M>>,
    /// Algorithm name (for reports).
    pub algorithm: String,
    /// Scheduler name (for reports).
    pub scheduler: String,
}

impl<M> RunReport<M> {
    /// `true` iff the run completed and satisfied the whole specification.
    pub fn clean(&self) -> bool {
        self.verdict == Verdict::Completed && self.violations.is_empty()
    }
}

/// Checks the **message-terminating** leader-election specification (the
/// weaker notion used by some related work, e.g. Delporte et al.): the run
/// reaches quiescence after finitely many messages with a unique agreed
/// leader, but processes are *not* required to halt. Exactly the paper's
/// conditions 1–3 without condition 4.
pub fn satisfies_message_terminating<M>(rep: &RunReport<M>) -> bool {
    let verdict_ok = matches!(rep.verdict, Verdict::Completed | Verdict::QuiescentNotHalted);
    let violations_ok = rep.violations.iter().all(|v| {
        matches!(
            v,
            SpecViolation::NeverHalted { .. }
                | SpecViolation::BadTermination { kind: TerminalKind::QuiescentNotHalted }
        )
    });
    verdict_ok && violations_ok && rep.leader.is_some()
}

/// Hook invoked after every atomic event, with full read access to the
/// network (process states included). Used by the figure-reproduction and
/// state-diagram experiments.
pub trait Observer<P: ProcessBehavior> {
    /// Called after each event, before the next scheduling decision.
    fn after_event(&mut self, net: &Network<P>, event: &ActionEvent<P::Msg>);

    /// Whether this observer actually reads the events. The default is
    /// `true`; [`NullObserver`] returns `false`, which lets the driver skip
    /// materializing [`ActionEvent`]s (and the per-action message clones
    /// they imply) on the hot path.
    fn wants_events(&self) -> bool {
        true
    }
}

/// The no-op observer.
pub struct NullObserver;

impl<P: ProcessBehavior> Observer<P> for NullObserver {
    fn after_event(&mut self, _net: &Network<P>, _event: &ActionEvent<P::Msg>) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Runs `algo` on `ring` under `sched` with default observation.
pub fn run<A, S>(
    algo: &A,
    ring: &RingLabeling,
    sched: &mut S,
    opts: RunOptions,
) -> RunReport<<A::Proc as ProcessBehavior>::Msg>
where
    A: Algorithm,
    S: Scheduler,
{
    run_with_observer(algo, ring, sched, opts, &mut NullObserver)
}

/// Runs `algo` on `ring` under `sched`, reporting every event to `obs`.
pub fn run_with_observer<A, S, O>(
    algo: &A,
    ring: &RingLabeling,
    sched: &mut S,
    opts: RunOptions,
    obs: &mut O,
) -> RunReport<<A::Proc as ProcessBehavior>::Msg>
where
    A: Algorithm,
    S: Scheduler,
    O: Observer<A::Proc>,
{
    let net: Network<A::Proc> = Network::new(algo, ring);
    run_network(net, algo.name(), sched, opts, obs)
}

/// Runs `algo` on `ring` with a deterministic link-[`FaultPlan`] in force —
/// the assumption-ablation entry point. With a benign plan this is
/// identical to [`run`].
pub fn run_faulty<A, S>(
    algo: &A,
    ring: &RingLabeling,
    sched: &mut S,
    opts: RunOptions,
    plan: FaultPlan,
) -> RunReport<<A::Proc as ProcessBehavior>::Msg>
where
    A: Algorithm,
    S: Scheduler,
{
    let mut net: Network<A::Proc> = Network::new(algo, ring);
    net.set_fault_plan(plan);
    run_network(net, algo.name(), sched, opts, &mut NullObserver)
}

/// Runs `algo` on `ring` with **heterogeneous link delays** (`delays[i]`
/// ticks on the incoming link of process `i`): the paper's model with
/// "transmission time at most one unit" made concrete. The reported
/// `time_units` are normalized by the longest delay, so the paper's time
/// bounds still apply verbatim.
pub fn run_with_delays<A, S>(
    algo: &A,
    ring: &RingLabeling,
    sched: &mut S,
    opts: RunOptions,
    delays: &[u64],
) -> RunReport<<A::Proc as ProcessBehavior>::Msg>
where
    A: Algorithm,
    S: Scheduler,
{
    let mut net: Network<A::Proc> = Network::new(algo, ring);
    net.set_link_delays(delays);
    run_network(net, algo.name(), sched, opts, &mut NullObserver)
}

/// Drives a pre-built network to completion (shared by the fault-free and
/// faulty entry points).
fn run_network<P, S, O>(
    mut net: Network<P>,
    algorithm: String,
    sched: &mut S,
    opts: RunOptions,
    obs: &mut O,
) -> RunReport<P::Msg>
where
    P: ProcessBehavior,
    S: Scheduler,
    O: Observer<P>,
{
    let mut monitor = SpecMonitor::new(net.elections());
    let mut trace = opts.record_trace.then(Trace::new);
    // The fast path skips event materialization entirely; it is taken when
    // nobody will read the events.
    let needs_events = opts.record_trace || obs.wants_events();
    let mut steps: u64 = 0;
    let mut seq: u64 = 0;
    let mut budget_exhausted = false;
    let mut stopped_on_violation = false;
    // Reusable snapshot of the enabled set for synchronous steps (the live
    // list mutates as processes fire).
    let mut all_buf: Vec<usize> = Vec::new();

    loop {
        if opts.stop_on_violation && !monitor.violations().is_empty() {
            stopped_on_violation = true;
            break;
        }
        if net.enabled_slice().is_empty() {
            break;
        }
        if net.actions_fired() >= opts.max_actions {
            budget_exhausted = true;
            break;
        }
        let selection = sched.select(net.enabled_slice());
        steps += 1;
        match selection {
            Selection::All => {
                all_buf.clear();
                all_buf.extend_from_slice(net.enabled_slice());
                for &i in &all_buf {
                    fire_one(
                        &mut net,
                        i,
                        steps,
                        &mut seq,
                        &mut monitor,
                        &mut trace,
                        obs,
                        needs_events,
                    );
                }
            }
            Selection::One(i) => {
                assert!(net.enabled(i), "scheduler picked a disabled process");
                fire_one(&mut net, i, steps, &mut seq, &mut monitor, &mut trace, obs, needs_events);
            }
        }
    }

    let terminal = net.terminal_kind();
    let verdict = if stopped_on_violation {
        Verdict::StoppedOnViolation
    } else if budget_exhausted {
        Verdict::ActionLimit
    } else {
        match terminal {
            Some(TerminalKind::AllHalted) => Verdict::Completed,
            Some(TerminalKind::QuiescentNotHalted) => Verdict::QuiescentNotHalted,
            Some(TerminalKind::Deadlock) => Verdict::Deadlock,
            None => Verdict::ActionLimit,
        }
    };
    if !stopped_on_violation {
        monitor.finish(terminal);
    }

    let elections = net.elections();
    let leaders: Vec<usize> =
        elections.iter().enumerate().filter(|(_, e)| e.is_leader).map(|(i, _)| i).collect();

    let metrics = RunMetrics {
        n: net.n(),
        messages: net.total_sent(),
        wire_bits: net.total_wire_bits(),
        time_units: net.virtual_time(),
        actions: net.actions_fired(),
        steps,
        peak_space_bits: net.peak_space_bits(),
        peak_link_occupancy: net.peak_link_occupancy(),
        max_received_by_one: (0..net.n()).map(|i| net.received_by(i)).max().unwrap_or(0),
    };

    RunReport {
        verdict,
        metrics,
        violations: monitor.violations().to_vec(),
        leader: if leaders.len() == 1 { Some(leaders[0]) } else { None },
        trace,
        algorithm,
        scheduler: sched.name(),
    }
}

#[allow(clippy::too_many_arguments)]
fn fire_one<P, O>(
    net: &mut Network<P>,
    i: usize,
    step: u64,
    seq: &mut u64,
    monitor: &mut SpecMonitor,
    trace: &mut Option<Trace<P::Msg>>,
    obs: &mut O,
    needs_events: bool,
) where
    P: ProcessBehavior,
    O: Observer<P>,
{
    if !needs_events {
        // Hot path: no event construction, no sent-message clones, O(1)
        // incremental spec check of the one process that acted.
        if net.fire(i).is_some() {
            monitor.observe_one(i, net.election(i));
        }
        return;
    }
    let mut sent: Vec<P::Msg> = Vec::new();
    let Some(fired) = net.fire_with_record(i, Some(&mut sent)) else { return };
    let kind = match fired {
        Fired::Started { .. } => EventKind::Start,
        Fired::Received { msg, .. } => EventKind::Receive(msg),
        Fired::Wedged { head } => EventKind::Wedge(head),
    };
    let event = ActionEvent { seq: *seq, step, pid: i, kind, sent, clock: net.clock(i) };
    *seq += 1;
    monitor.observe_one(i, net.election(i));
    obs.after_event(net, &event);
    if let Some(t) = trace.as_mut() {
        t.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{ElectionState, Outbox, Reaction};
    use crate::sched::{RandomSched, RoundRobinSched, SyncSched};
    use hre_words::Label;

    /// Minimal correct election for K1 rings with known n: circulate all
    /// labels; after n-1 receptions everyone knows the max label; the max
    /// then sends a DONE token that halts everyone. (Test double for the
    /// driver, not a paper algorithm.)
    struct KnownN {
        n: usize,
    }
    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Msg {
        Lab(Label),
        Done(Label),
    }
    struct KnownNProc {
        id: Label,
        best: Label,
        seen: usize,
        n: usize,
        st: ElectionState,
    }
    impl Algorithm for KnownN {
        type Proc = KnownNProc;
        fn name(&self) -> String {
            "KnownN".into()
        }
        fn spawn(&self, label: Label) -> KnownNProc {
            KnownNProc { id: label, best: label, seen: 0, n: self.n, st: ElectionState::INITIAL }
        }
    }
    impl ProcessBehavior for KnownNProc {
        type Msg = Msg;
        fn on_start(&mut self, out: &mut Outbox<Msg>) {
            out.send(Msg::Lab(self.id));
        }
        fn on_msg(&mut self, msg: &Msg, out: &mut Outbox<Msg>) -> Reaction {
            match msg {
                Msg::Lab(l) => {
                    self.seen += 1;
                    if *l > self.best {
                        self.best = *l;
                    }
                    if self.seen < self.n - 1 {
                        out.send(Msg::Lab(*l));
                    }
                    if self.seen == self.n - 1 && self.best == self.id {
                        self.st.is_leader = true;
                        self.st.leader = Some(self.id);
                        self.st.done = true;
                        out.send(Msg::Done(self.id));
                    }
                    Reaction::Consumed
                }
                Msg::Done(l) => {
                    if self.st.is_leader {
                        self.st.halted = true;
                    } else {
                        self.st.leader = Some(*l);
                        self.st.done = true;
                        self.st.halted = true;
                        out.send(Msg::Done(*l));
                    }
                    Reaction::Consumed
                }
            }
        }
        fn election(&self) -> ElectionState {
            self.st
        }
        fn space_bits(&self, b: u32) -> u64 {
            2 * b as u64 + 67
        }
    }

    fn ring5() -> RingLabeling {
        RingLabeling::from_raw(&[3, 1, 4, 1 + 4, 5 + 4])
    }

    #[test]
    fn run_completes_cleanly_under_every_scheduler() {
        let algo = KnownN { n: 5 };
        let ring = ring5();
        let r1 = run(&algo, &ring, &mut SyncSched, RunOptions::default());
        let r2 = run(&algo, &ring, &mut RoundRobinSched::default(), RunOptions::default());
        let r3 = run(&algo, &ring, &mut RandomSched::new(99), RunOptions::default());
        for r in [&r1, &r2, &r3] {
            assert!(r.clean(), "{:?} {:?}", r.verdict, r.violations);
            assert_eq!(r.leader, Some(4)); // label 9 is max
        }
        // Confluence: message counts and virtual time agree across
        // schedulers.
        assert_eq!(r1.metrics.messages, r2.metrics.messages);
        assert_eq!(r2.metrics.messages, r3.metrics.messages);
        assert_eq!(r1.metrics.time_units, r2.metrics.time_units);
        assert_eq!(r2.metrics.time_units, r3.metrics.time_units);
    }

    #[test]
    fn trace_recording_captures_streams() {
        let algo = KnownN { n: 3 };
        let ring = RingLabeling::from_raw(&[2, 9, 4]);
        let mut sched = RoundRobinSched::default();
        let opts = RunOptions { record_trace: true, ..Default::default() };
        let rep = run(&algo, &ring, &mut sched, opts);
        assert!(rep.clean());
        let trace = rep.trace.expect("requested");
        assert_eq!(trace.events().len() as u64, rep.metrics.actions);
        // p2 (label 4) receives p1's label 9 first.
        assert_eq!(trace.received_stream(2)[0], Msg::Lab(Label::new(9)));
    }

    #[test]
    fn action_limit_verdict() {
        let algo = KnownN { n: 4 }; // wrong n for a 3-ring: never terminates cleanly
        let ring = RingLabeling::from_raw(&[2, 9, 4]);
        let rep = run(
            &algo,
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions { max_actions: 5, ..Default::default() },
        );
        assert_eq!(rep.verdict, Verdict::ActionLimit);
        assert!(!rep.clean());
    }

    #[test]
    fn wrong_knowledge_violates_spec() {
        // KnownN with n too small on a bigger ring: two processes may both
        // decide early; at minimum the run cannot be clean.
        let algo = KnownN { n: 3 };
        let ring = RingLabeling::from_raw(&[1, 2, 3, 4, 5, 6]);
        let rep = run(&algo, &ring, &mut SyncSched, RunOptions::default());
        assert!(!rep.clean());
    }

    #[test]
    fn observer_sees_every_event() {
        struct Counter(u64);
        impl Observer<KnownNProc> for Counter {
            fn after_event(&mut self, _n: &Network<KnownNProc>, _e: &ActionEvent<Msg>) {
                self.0 += 1;
            }
        }
        let algo = KnownN { n: 5 };
        let mut counter = Counter(0);
        let rep =
            run_with_observer(&algo, &ring5(), &mut SyncSched, RunOptions::default(), &mut counter);
        assert_eq!(counter.0, rep.metrics.actions);
    }
}
