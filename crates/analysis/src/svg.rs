//! Hand-rolled SVG rendering of ring executions — regenerating the
//! paper's **Figure 1** as an actual vector figure (no dependencies; the
//! output is a plain string the caller writes to a `.svg` file).
//!
//! The visual language matches the paper: processes on a circle, arrows in
//! message-flow direction, white fill for processes *active* at the start
//! of the phase and black for passive ones, the process label inside the
//! node and the phase's guest label in gray beside it.

use crate::phases::PhaseTable;
use hre_ring::RingLabeling;
use std::f64::consts::PI;

const NODE_R: f64 = 14.0;
const RING_R: f64 = 80.0;
const PANEL: f64 = 240.0;

fn node_xy(i: usize, n: usize, cx: f64, cy: f64) -> (f64, f64) {
    // p0 at the top, clockwise placement like the paper's drawing.
    let theta = -PI / 2.0 + 2.0 * PI * i as f64 / n as f64;
    (cx + RING_R * theta.cos(), cy + RING_R * theta.sin())
}

/// Renders one phase of a `Bk` execution as a `<g>` panel at the given
/// offset. Shown to the user via [`figure_svg`].
fn phase_panel(
    ring: &RingLabeling,
    table: &PhaseTable,
    phase: usize,
    ox: f64,
    oy: f64,
    caption: &str,
) -> String {
    let n = ring.n();
    let (cx, cy) = (ox + PANEL / 2.0, oy + PANEL / 2.0 - 10.0);
    let active = table.active_set(phase);
    let mut s = String::new();
    s.push_str("  <g font-family=\"sans-serif\" font-size=\"11\">\n");
    // directed edges p(i) -> p(i+1)
    for i in 0..n {
        let (x1, y1) = node_xy(i, n, cx, cy);
        let (x2, y2) = node_xy((i + 1) % n, n, cx, cy);
        // shorten the segment so arrowheads sit outside the node circles
        let (dx, dy) = (x2 - x1, y2 - y1);
        let len = (dx * dx + dy * dy).sqrt();
        let (ux, uy) = (dx / len, dy / len);
        let (sx, sy) = (x1 + ux * NODE_R, y1 + uy * NODE_R);
        let (tx, ty) = (x2 - ux * (NODE_R + 4.0), y2 - uy * (NODE_R + 4.0));
        s.push_str(&format!(
            "    <line x1=\"{sx:.1}\" y1=\"{sy:.1}\" x2=\"{tx:.1}\" y2=\"{ty:.1}\" \
             stroke=\"#888\" marker-end=\"url(#arrow)\"/>\n"
        ));
    }
    // nodes
    for i in 0..n {
        let (x, y) = node_xy(i, n, cx, cy);
        let is_active = active.contains(&i);
        let (fill, text_fill) = if is_active { ("white", "black") } else { ("#222", "white") };
        s.push_str(&format!(
            "    <circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{NODE_R}\" fill=\"{fill}\" stroke=\"black\"/>\n"
        ));
        s.push_str(&format!(
            "    <text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\" fill=\"{text_fill}\">{}</text>\n",
            y + 4.0,
            ring.label(i)
        ));
        // guest label, gray, placed radially outward
        if let Some(g) = table.guest(phase, i) {
            let (gx, gy) = {
                let theta = -PI / 2.0 + 2.0 * PI * i as f64 / n as f64;
                (cx + (RING_R + 26.0) * theta.cos(), cy + (RING_R + 26.0) * theta.sin())
            };
            s.push_str(&format!(
                "    <text x=\"{gx:.1}\" y=\"{:.1}\" text-anchor=\"middle\" fill=\"#999\">{g}</text>\n",
                gy + 4.0
            ));
        }
        // process name, small, inside radius
        let (px, py) = {
            let theta = -PI / 2.0 + 2.0 * PI * i as f64 / n as f64;
            (cx + (RING_R - 30.0) * theta.cos(), cy + (RING_R - 30.0) * theta.sin())
        };
        s.push_str(&format!(
            "    <text x=\"{px:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"9\" fill=\"#555\">p{i}</text>\n",
            py + 3.0
        ));
    }
    s.push_str(&format!(
        "    <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"12\">{caption}</text>\n",
        ox + PANEL / 2.0,
        oy + PANEL - 8.0
    ));
    s.push_str("  </g>\n");
    s
}

/// Renders a grid of phase panels (the paper's Figure 1 layout: phases
/// 1–4 in a 2×2 grid for the catalog ring, but any ring / any phase list
/// works). Returns a complete standalone SVG document.
pub fn figure_svg(ring: &RingLabeling, table: &PhaseTable, phases: &[usize]) -> String {
    let cols = phases.len().clamp(1, 2);
    let rows = phases.len().div_ceil(cols);
    let (w, h) = (PANEL * cols as f64, PANEL * rows as f64);
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">\n"
    ));
    s.push_str(
        "  <defs>\n    <marker id=\"arrow\" markerWidth=\"8\" markerHeight=\"8\" refX=\"6\" \
         refY=\"3\" orient=\"auto\">\n      <path d=\"M0,0 L6,3 L0,6 z\" fill=\"#888\"/>\n    \
         </marker>\n  </defs>\n",
    );
    s.push_str(&format!("  <rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n"));
    for (idx, &phase) in phases.iter().enumerate() {
        let ox = (idx % cols) as f64 * PANEL;
        let oy = (idx / cols) as f64 * PANEL;
        let caption = format!("({}) phase {phase}", (b'a' + idx as u8) as char);
        s.push_str(&phase_panel(ring, table, phase, ox, oy, &caption));
    }
    s.push_str("</svg>\n");
    s
}

/// Convenience: the paper's Figure 1 (phases 1–4 of `Bk`, `k = 3`, on the
/// catalog ring) as an SVG document.
pub fn figure1_svg() -> String {
    let ring = hre_ring::catalog::figure1_ring();
    let table = crate::phases::reconstruct_phases(&ring, hre_ring::catalog::FIGURE1_K);
    figure_svg(&ring, &table, &[1, 2, 3, 4])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::catalog;

    #[test]
    fn figure1_svg_is_well_formed_and_complete() {
        let svg = figure1_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 4 panels × 8 nodes = 32 circles
        assert_eq!(svg.matches("<circle").count(), 32);
        // 4 panels × 8 directed edges
        assert_eq!(svg.matches("<line").count(), 32);
        // captions (a)..(d)
        for c in ["(a) phase 1", "(b) phase 2", "(c) phase 3", "(d) phase 4"] {
            assert!(svg.contains(c), "{c}");
        }
        // balanced tags
        assert_eq!(svg.matches("<g ").count(), svg.matches("</g>").count());
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn active_nodes_are_white_passive_black() {
        let ring = catalog::figure1_ring();
        let table = crate::phases::reconstruct_phases(&ring, 3);
        // Phase 2: 3 active (white), 5 passive (#222).
        let svg = figure_svg(&ring, &table, &[2]);
        assert_eq!(svg.matches("fill=\"white\" stroke=\"black\"").count(), 3);
        assert_eq!(svg.matches("fill=\"#222\" stroke=\"black\"").count(), 5);
    }

    #[test]
    fn single_phase_layout() {
        let ring = catalog::ring_122();
        let table = crate::phases::reconstruct_phases(&ring, 2);
        let svg = figure_svg(&ring, &table, &[1]);
        assert_eq!(svg.matches("<circle").count(), 3);
    }
}
