//! Plain-text rendering of rings and executions for the CLI and examples.

use hre_ring::RingLabeling;
use hre_words::Label;

/// Renders the ring on one line in message-flow order, marking a process
/// (typically the leader) with a star:
/// `p0[1]* → p1[3] → … → p7[2] ⟲`.
pub fn render_ring(ring: &RingLabeling, star: Option<usize>) -> String {
    let mut parts = Vec::with_capacity(ring.n());
    for i in 0..ring.n() {
        let mark = if star == Some(i) { "*" } else { "" };
        parts.push(format!("p{i}[{}]{mark}", ring.label(i)));
    }
    format!("{} ⟲", parts.join(" → "))
}

/// Renders one Figure 1-style phase line: active processes uppercase with
/// `●`, passive ones with `○`, each with its guest label:
/// `●p0(g=2) ○p1(g=1) …`.
pub fn render_phase(guests: &[Option<Label>], active: &[usize]) -> String {
    guests
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let dot = if active.contains(&i) { "●" } else { "○" };
            match g {
                Some(g) => format!("{dot}p{i}(g={g})"),
                None => format!("{dot}p{i}(—)"),
            }
        })
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_rendering_marks_the_star() {
        let ring = RingLabeling::from_raw(&[1, 2, 2]);
        let s = render_ring(&ring, Some(0));
        assert_eq!(s, "p0[1]* → p1[2] → p2[2] ⟲");
        let s = render_ring(&ring, None);
        assert!(!s.contains('*'));
    }

    #[test]
    fn phase_rendering_distinguishes_active() {
        let guests = vec![Some(Label::new(2)), Some(Label::new(1)), None];
        let s = render_phase(&guests, &[0]);
        assert!(s.contains("●p0(g=2)"));
        assert!(s.contains("○p1(g=1)"));
        assert!(s.contains("○p2(—)"));
    }
}
