//! Minimal column-aligned plain-text / markdown table rendering for the
//! experiment binaries. No dependency needed — just careful padding.

use std::fmt::Display;

/// A simple table builder.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; must have exactly as many cells as there are headers.
    pub fn row<S: Display, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders with unicode box-drawing separators, right-padding.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let line = |cells: &[String], w: &[usize]| -> String {
            let body: Vec<String> =
                cells.iter().zip(w).map(|(c, &width)| format!("{c:<width$}")).collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&line(&self.headers, &w));
        let sep: Vec<String> = w.iter().map(|&width| "-".repeat(width)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&line(row, &w));
        }
        out
    }
}

impl Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["n", "messages"]);
        t.row([format!("{}", 8), format!("{}", 123456)]);
        t.row(["16".to_string(), "7".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{s}");
        assert!(lines[0].contains("messages"));
        assert!(lines[2].contains("123456"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
