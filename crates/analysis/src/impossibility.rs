//! Theorem 1 / Corollary 3, executable: no algorithm solves
//! process-terminating leader election for `U*` (hence none for `A`).
//!
//! The proof is constructive, so we can *run* it. Given any candidate
//! algorithm `ALG` (every concrete algorithm must commit to its code — for
//! `Ak`/`Bk` that includes some fixed parameter `k0`):
//!
//! 1. run `ALG` synchronously on a `K1` ring `Rn`; it terminates in `T`
//!    steps (if `ALG` is at least correct on `K1`);
//! 2. pick `k` with `1 + (k−2)n > T` — i.e. `k = ⌈(T−1)/n⌉ + 3` is ample;
//! 3. build `R_{n,k} ∈ U* ∩ Kk ⊆ U*` and run `ALG` on it;
//! 4. by indistinguishability, two replicas of the step-`T` leader declare
//!    themselves — a specification violation, which we capture live.
//!
//! [`demonstrate_impossibility`] performs the four steps and returns the
//! full certificate.

use hre_ring::{generate, RingLabeling};
use hre_sim::{
    run_with_observer, ActionEvent, Algorithm, Network, Observer, ProcessBehavior, RunOptions,
    SpecViolation, SyncSched,
};

/// Evidence that a candidate `U*` algorithm failed, with every ingredient
/// of the Theorem 1 construction.
#[derive(Clone, Debug)]
pub struct ImpossibilityCertificate {
    /// The `K1` base ring `Rn`.
    pub base: RingLabeling,
    /// Steps of the synchronous execution on `Rn`.
    pub t_steps: u64,
    /// The replication factor chosen so that `1 + (k−2)n > T`.
    pub k: usize,
    /// The constructed ring `R_{n,k}` on which the algorithm fails.
    pub big: RingLabeling,
    /// First synchronous step of the big run at which two or more
    /// processes simultaneously claimed leadership (None if the failure
    /// manifested as another violation).
    pub two_leaders_step: Option<u64>,
    /// The process indices claiming leadership at that step.
    pub leaders: Vec<usize>,
    /// All specification violations observed on `R_{n,k}`.
    pub violations: Vec<SpecViolation>,
}

impl ImpossibilityCertificate {
    /// Whether the construction succeeded in exhibiting a violation.
    pub fn refutes(&self) -> bool {
        !self.violations.is_empty()
    }
}

struct LeaderWatch {
    first_multi: Option<(u64, Vec<usize>)>,
}

impl<P: ProcessBehavior> Observer<P> for LeaderWatch {
    fn after_event(&mut self, net: &Network<P>, event: &ActionEvent<P::Msg>) {
        if self.first_multi.is_some() {
            return;
        }
        let leaders: Vec<usize> = (0..net.n()).filter(|&i| net.election(i).is_leader).collect();
        if leaders.len() >= 2 {
            self.first_multi = Some((event.step, leaders));
        }
    }
}

/// Runs the Theorem 1 construction against `algo`.
///
/// ```
/// use hre_analysis::demonstrate_impossibility;
/// use hre_core::Ak;
/// use hre_ring::RingLabeling;
///
/// let base = RingLabeling::from_raw(&[4, 1, 3]); // any K1 ring
/// let cert = demonstrate_impossibility(&Ak::new(2), &base);
/// assert!(cert.refutes());                    // two replicas claimed leadership
/// assert!(cert.two_leaders_step.is_some());
/// assert!(cert.big.in_ustar());               // … on a ring of U*
/// ```
///
/// `algo` plays the role of the hypothetical leader-election algorithm for
/// `U*`. `base` must be a `K1` ring (on which any credible candidate
/// terminates). The run on `R_{n,k}` is action-capped: a candidate that
/// never terminates on `R_{n,k}` *also* violates the (process-terminating)
/// specification, and the certificate records that instead.
pub fn demonstrate_impossibility<A: Algorithm>(
    algo: &A,
    base: &RingLabeling,
) -> ImpossibilityCertificate {
    assert!(base.all_distinct(), "the construction starts from a K1 ring");
    let n = base.n();

    // Step 1: synchronous execution on the base ring.
    let base_rep = run_with_observer(
        algo,
        base,
        &mut SyncSched,
        RunOptions::default(),
        &mut LeaderWatch { first_multi: None },
    );
    assert!(base_rep.clean(), "the candidate must at least solve K1 for the construction to apply");
    let t = base_rep.metrics.steps;

    // Step 2: choose k with 1 + (k-2)n > T.
    let k = (t as usize).div_ceil(n) + 3;

    // Step 3: the replicated ring.
    let big = generate::lemma1_ring(base, k);

    // Step 4: run and watch for the predicted double election.
    let mut watch = LeaderWatch { first_multi: None };
    let big_rep = run_with_observer(
        algo,
        &big,
        &mut SyncSched,
        // The violation appears within ~T synchronous steps (the replicas
        // mirror the base run); stop right there instead of simulating the
        // broken aftermath.
        RunOptions { stop_on_violation: true, ..Default::default() },
        &mut watch,
    );

    let (two_leaders_step, leaders) = match watch.first_multi {
        Some((step, l)) => (Some(step), l),
        None => (None, Vec::new()),
    };

    ImpossibilityCertificate {
        base: base.clone(),
        t_steps: t,
        k,
        big,
        two_leaders_step,
        leaders,
        violations: big_rep.violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_core::{Ak, Bk};
    use hre_ring::generate::random_k1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ak_cannot_solve_ustar() {
        // Ak with any fixed k0 is a candidate U* algorithm; the
        // construction must defeat it.
        let mut rng = StdRng::seed_from_u64(4);
        let base = random_k1(4, &mut rng);
        for k0 in 1..=2usize {
            let cert = demonstrate_impossibility(&Ak::new(k0), &base);
            assert!(cert.refutes(), "k0={k0}: {cert:?}");
            assert!(
                cert.two_leaders_step.is_some(),
                "the predicted double election should be observed: {cert:?}"
            );
            assert!(cert.leaders.len() >= 2);
            // The chosen k really satisfies 1 + (k-2)n > T.
            let n = cert.base.n() as u64;
            assert!(1 + (cert.k as u64 - 2) * n > cert.t_steps);
            // And the two leaders are replicas: same position mod n.
            let l0 = cert.leaders[0] % cert.base.n();
            assert!(cert.leaders.iter().all(|l| l % cert.base.n() == l0));
        }
    }

    #[test]
    fn bk_cannot_solve_ustar() {
        let mut rng = StdRng::seed_from_u64(6);
        let base = random_k1(3, &mut rng);
        let cert = demonstrate_impossibility(&Bk::new(2), &base);
        assert!(cert.refutes(), "{cert:?}");
        assert!(cert.two_leaders_step.is_some());
    }

    #[test]
    fn certificate_construction_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(10);
        let base = random_k1(3, &mut rng);
        let cert = demonstrate_impossibility(&Ak::new(1), &base);
        assert_eq!(cert.big.n(), cert.k * cert.base.n() + 1);
        assert!(cert.big.in_ustar());
        assert!(cert.big.in_kk(cert.k));
    }

    #[test]
    #[should_panic(expected = "K1")]
    fn rejects_homonym_base() {
        demonstrate_impossibility(&Ak::new(2), &RingLabeling::from_raw(&[1, 1, 2]));
    }
}
