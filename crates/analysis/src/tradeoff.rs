//! The `Ak` vs `Bk` time/space trade-off (the abstract's headline claim),
//! as a sweep producing one row per (ring, algorithm).

use hre_core::{Ak, Bk};
use hre_ring::{generate, RingLabeling};
use hre_sim::{run, Algorithm, ProcessBehavior, RoundRobinSched, RunOptions};

/// One measured data point of the trade-off experiment (E7).
#[derive(Clone, Debug)]
pub struct TradeoffRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Ring size.
    pub n: usize,
    /// Multiplicity bound used.
    pub k: usize,
    /// Bits per label.
    pub label_bits: u32,
    /// Time units measured.
    pub time_units: u64,
    /// Messages measured.
    pub messages: u64,
    /// Peak per-process space, bits.
    pub space_bits: u64,
    /// Paper's time bound for this algorithm, for side-by-side display.
    pub time_bound: u64,
    /// Paper's space bound, bits.
    pub space_bound: u64,
}

fn measure<A: Algorithm>(
    algo: &A,
    ring: &RingLabeling,
    k: usize,
    time_bound: u64,
    space_bound: u64,
) -> TradeoffRow
where
    <A::Proc as ProcessBehavior>::Msg: Clone + std::fmt::Debug,
{
    let rep = run(algo, ring, &mut RoundRobinSched::default(), RunOptions::default());
    assert!(rep.clean(), "{}: {:?} on {:?}", algo.name(), rep.violations, ring);
    TradeoffRow {
        algorithm: algo.name(),
        n: ring.n(),
        k,
        label_bits: ring.label_bits(),
        time_units: rep.metrics.time_units,
        messages: rep.metrics.messages,
        space_bits: rep.metrics.peak_space_bits,
        time_bound,
        space_bound,
    }
}

/// Measures `Ak` and `Bk` on one ring; returns `[ak_row, bk_row]`.
pub fn tradeoff_pair(ring: &RingLabeling, k: usize) -> [TradeoffRow; 2] {
    assert!(k >= 2, "Bk needs k >= 2");
    let n = ring.n() as u64;
    let k64 = k as u64;
    let b = ring.label_bits() as u64;
    let ak = measure(&Ak::new(k), ring, k, (2 * k64 + 2) * n, (2 * k64 + 1) * n * b + 2 * b + 3);
    let log_k = ((k64 - 1).max(1).ilog2() + 1) as u64;
    let bk = measure(
        &Bk::new(k),
        ring,
        k,
        // Theorem 4 gives O(k²n²); the explicit constant from the proof's
        // phase accounting is (k+1)²n².
        (k64 + 1) * (k64 + 1) * n * n,
        2 * log_k + 3 * b + 5,
    );
    [ak, bk]
}

/// Sweeps rings of sizes `ns` with exact multiplicity `k`, seeded.
pub fn tradeoff_sweep(ns: &[usize], k: usize, seed: u64) -> Vec<TradeoffRow> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for &n in ns {
        let ring = generate::random_exact_multiplicity(n, k.min(n - 1), &mut rng);
        for row in tradeoff_pair(&ring, k) {
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::catalog;

    #[test]
    fn both_algorithms_within_their_bounds() {
        let rows = tradeoff_sweep(&[6, 9, 12], 3, 42);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.time_units <= r.time_bound, "{r:?}");
            assert!(r.space_bits <= r.space_bound, "{r:?}");
        }
    }

    #[test]
    fn tradeoff_direction_is_as_claimed() {
        // On the same ring: Ak is at least as fast, Bk uses (much) less
        // space — the classical trade-off.
        let ring = catalog::figure1_ring();
        let [ak, bk] = tradeoff_pair(&ring, 3);
        assert!(ak.time_units <= bk.time_units, "ak={ak:?} bk={bk:?}");
        assert!(bk.space_bits < ak.space_bits, "ak={ak:?} bk={bk:?}");
    }

    #[test]
    fn bk_space_is_n_independent() {
        let rows = tradeoff_sweep(&[6, 12, 18], 2, 7);
        // Bk's space is exactly 2⌈log k⌉ + 3b + 5 — it depends on b but not
        // on n.
        for r in rows.iter().filter(|r| r.algorithm.starts_with("Bk")) {
            let expect = 2 + 3 * r.label_bits as u64 + 5; // ⌈log 2⌉ = 1
            assert_eq!(r.space_bits, expect, "{r:?}");
        }
        let ak_spaces: Vec<u64> =
            rows.iter().filter(|r| r.algorithm.starts_with("Ak")).map(|r| r.space_bits).collect();
        assert!(ak_spaces.windows(2).all(|w| w[0] < w[1]), "Ak space grows: {ak_spaces:?}");
    }
}
