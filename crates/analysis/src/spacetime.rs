//! Space-time views of executions: a per-event log and a virtual-time
//! activity grid, both plain text. Used by the CLI (`hre elect --diagram`)
//! and handy when debugging a new algorithm against the model.

use hre_sim::{ActionEvent, EventKind, Trace};
use std::fmt::Debug;

/// Renders the first `limit` events as one line each:
/// `#seq t=clock p⟨i⟩ ⟨what⟩ → [sends]`.
pub fn render_event_log<M: Clone + Debug>(trace: &Trace<M>, limit: usize) -> String {
    let mut out = String::new();
    for ev in trace.events().iter().take(limit) {
        out.push_str(&render_event(ev));
        out.push('\n');
    }
    if trace.len() > limit {
        out.push_str(&format!("… {} more events\n", trace.len() - limit));
    }
    out
}

fn render_event<M: Debug>(ev: &ActionEvent<M>) -> String {
    let what = match &ev.kind {
        EventKind::Start => "START".to_string(),
        EventKind::Receive(m) => format!("RECV {m:?}"),
        EventKind::Wedge(m) => format!("WEDGE on {m:?}"),
    };
    let sends = if ev.sent.is_empty() {
        String::new()
    } else {
        format!(" → [{}]", ev.sent.iter().map(|m| format!("{m:?}")).collect::<Vec<_>>().join(", "))
    };
    format!("#{:<4} t={:<4} p{} {}{}", ev.seq, ev.clock, ev.pid, what, sends)
}

/// Renders a virtual-time × process activity grid: one row per time unit,
/// `●` where the process received at least one message at that time, `◐`
/// where it only fired its initial action, `·` otherwise. Gives the
/// "wavefront" picture of how information moves around the ring.
pub fn render_activity_grid<M: Clone + Debug>(trace: &Trace<M>, n: usize) -> String {
    let max_t = trace.events().iter().map(|e| e.clock).max().unwrap_or(0);
    // activity[t][p]
    let mut grid = vec![vec![0u8; n]; (max_t + 1) as usize];
    for ev in trace.events() {
        let cell = &mut grid[ev.clock as usize][ev.pid];
        match ev.kind {
            EventKind::Receive(_) | EventKind::Wedge(_) => *cell = 2,
            EventKind::Start => *cell = (*cell).max(1),
        }
    }
    let mut out = String::new();
    out.push_str("  t |");
    for p in 0..n {
        out.push_str(&format!("{p:>3}"));
    }
    out.push('\n');
    out.push_str(&format!("----+{}\n", "-".repeat(3 * n)));
    for (t, row) in grid.iter().enumerate() {
        out.push_str(&format!("{t:>3} |"));
        for &c in row {
            out.push_str(match c {
                2 => "  ●",
                1 => "  ◐",
                _ => "  ·",
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_core::{Ak, AkMsg};
    use hre_ring::catalog;
    use hre_sim::{run, RoundRobinSched, RunOptions};

    fn figure1_trace() -> (Trace<AkMsg>, usize) {
        let ring = catalog::figure1_ring();
        let rep = run(
            &Ak::new(3),
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions { record_trace: true, ..Default::default() },
        );
        assert!(rep.clean());
        (rep.trace.unwrap(), ring.n())
    }

    #[test]
    fn event_log_has_one_line_per_event_up_to_limit() {
        let (trace, _) = figure1_trace();
        let log = render_event_log(&trace, 10);
        assert_eq!(log.lines().count(), 11); // 10 events + "… more"
        assert!(log.lines().next().unwrap().contains("START"));
        assert!(log.contains("more events"));
        let full = render_event_log(&trace, usize::MAX);
        assert_eq!(full.lines().count(), trace.len());
    }

    #[test]
    fn activity_grid_covers_all_times_and_processes() {
        let (trace, n) = figure1_trace();
        let grid = render_activity_grid(&trace, n);
        let max_t = trace.events().iter().map(|e| e.clock).max().unwrap();
        // header + separator + one row per time 0..=max_t
        assert_eq!(grid.lines().count() as u64, 2 + max_t + 1);
        // every process receives something at time 1 (the first tokens):
        let t1 = grid.lines().nth(3).unwrap();
        assert_eq!(t1.matches('●').count(), n);
        // time 0 is all initial actions:
        let t0 = grid.lines().nth(2).unwrap();
        assert_eq!(t0.matches('◐').count(), n);
    }

    #[test]
    fn wedge_events_render() {
        use hre_core::Bk;
        use hre_sim::{run_faulty, FaultPlan, LinkFault};
        let ring = catalog::figure1_ring();
        let rep = run_faulty(
            &Bk::new(3),
            &ring,
            &mut RoundRobinSched::default(),
            RunOptions { record_trace: true, max_actions: 100_000, ..Default::default() },
            FaultPlan::single(LinkFault::SwapEveryNth(7)),
        );
        // FIFO violation wedges Bk somewhere; the log must show it.
        let trace = rep.trace.unwrap();
        let log = render_event_log(&trace, usize::MAX);
        assert!(log.contains("WEDGE"), "{log}");
    }
}
