//! Lemma 1 and Corollaries 2/4, executable.
//!
//! **Lemma 1.** If `ALG` solves leader election for `U* ∩ Kk` (`k ≥ 2`),
//! then on every ring of `K1` its *synchronous* execution takes at least
//! `1 + (k−2)n` steps.
//!
//! The proof replicates a `K1` ring `k` times plus one fresh label
//! (`R_{n,k}`, built by [`hre_ring::generate::lemma1_ring`]); for the first
//! `j` steps, process `q(j)` of the big ring is indistinguishable from
//! `p(j mod n)` of the base ring (information from the fresh label has not
//! reached it yet). A too-fast algorithm would therefore crown two
//! replicas simultaneously.
//!
//! This module measures synchronous step counts and checks them against
//! the bound — empirically confirming that `Ak` (time `Θ(kn)`) is
//! asymptotically optimal, the paper's Corollary 2 story.

use hre_ring::{generate, RingLabeling};
use hre_sim::{run, Algorithm, ProcessBehavior, RunOptions, RunReport, SyncSched};

/// Runs `algo` on `ring` under the synchronous scheduler and returns the
/// step count together with the full report.
pub fn sync_steps<A: Algorithm>(
    algo: &A,
    ring: &RingLabeling,
) -> (u64, RunReport<<A::Proc as ProcessBehavior>::Msg>) {
    let rep = run(algo, ring, &mut SyncSched, RunOptions::default());
    (rep.metrics.steps, rep)
}

/// One row of the lower-bound experiment (E1).
#[derive(Clone, Debug)]
pub struct LowerBoundRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Ring size of the `K1` base ring.
    pub n: usize,
    /// Multiplicity bound the algorithm was parameterized with.
    pub k: usize,
    /// Lemma 1's bound: `1 + (k−2)n`.
    pub bound: u64,
    /// Measured synchronous steps on the base ring.
    pub measured_steps: u64,
    /// Whether the measured count respects the bound.
    pub respects_bound: bool,
    /// Whether the run was specification-clean.
    pub clean: bool,
}

/// Runs the Lemma 1 measurement for one algorithm and one `K1` ring.
///
/// The algorithm must be a leader-election algorithm for `U* ∩ Kk` (both
/// `Ak` and `Bk` are, since `U* ∩ Kk ⊆ A ∩ Kk`).
pub fn lower_bound_row<A: Algorithm>(algo: &A, base: &RingLabeling, k: usize) -> LowerBoundRow {
    assert!(base.all_distinct(), "Lemma 1 measures K1 rings");
    let (steps, rep) = sync_steps(algo, base);
    let n = base.n() as u64;
    let bound = if k >= 2 { 1 + (k as u64 - 2) * n } else { 1 };
    LowerBoundRow {
        algorithm: algo.name(),
        n: base.n(),
        k,
        bound,
        measured_steps: steps,
        respects_bound: steps >= bound,
        clean: rep.clean(),
    }
}

/// Sweeps `n × k` over `K1` rings with a seeded generator; returns one row
/// per combination for each of `Ak` and `Bk`.
pub fn lower_bound_sweep(ns: &[usize], ks: &[usize], seed: u64) -> Vec<LowerBoundRow> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for &n in ns {
        let base = generate::random_k1(n, &mut rng);
        for &k in ks {
            rows.push(lower_bound_row(&hre_core::Ak::new(k), &base, k));
            if k >= 2 {
                rows.push(lower_bound_row(&hre_core::Bk::new(k), &base, k));
            }
        }
    }
    rows
}

/// Verifies the proof's indistinguishability property (*) on the `R_{n,k}`
/// construction for `Ak`: after `t ≤ j` synchronous steps, replica `q(j)`
/// has received exactly the same message stream as `p(j mod n)` — checked
/// via recorded traces. Returns the number of (process, prefix) pairs
/// checked.
pub fn verify_replication_property(base: &RingLabeling, k: usize) -> usize {
    assert!(base.all_distinct());
    let n = base.n();
    let big = generate::lemma1_ring(base, k);
    let algo = hre_core::Ak::new(k);
    let opts = RunOptions { record_trace: true, ..Default::default() };
    let base_rep = run(&algo, base, &mut SyncSched, opts);
    let big_rep = run(&algo, &big, &mut SyncSched, opts);
    let base_trace = base_rep.trace.expect("trace requested");
    let big_trace = big_rep.trace.expect("trace requested");

    let mut checked = 0;
    for j in 0..big.n() - 1 {
        // Events of q(j) within its first j steps, vs p(j mod n).
        let q_stream: Vec<_> = big_trace
            .by_process(j)
            .filter(|e| e.step <= j as u64)
            .map(|e| format!("{:?}", e.kind))
            .collect();
        let p_stream: Vec<_> = base_trace
            .by_process(j % n)
            .filter(|e| e.step <= j as u64)
            .map(|e| format!("{:?}", e.kind))
            .collect();
        // The base run may have terminated before step j; property (*)
        // applies to the common prefix.
        let len = q_stream.len().min(p_stream.len());
        assert_eq!(&q_stream[..len], &p_stream[..len], "property (*) violated at q({j})");
        checked += len;
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_core::{Ak, Bk};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ak_and_bk_respect_lemma1_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [3usize, 5, 8] {
            let base = generate::random_k1(n, &mut rng);
            for k in 2..=4usize {
                let row_a = lower_bound_row(&Ak::new(k), &base, k);
                assert!(row_a.clean, "{row_a:?}");
                assert!(row_a.respects_bound, "{row_a:?}");
                let row_b = lower_bound_row(&Bk::new(k), &base, k);
                assert!(row_b.clean, "{row_b:?}");
                assert!(row_b.respects_bound, "{row_b:?}");
            }
        }
    }

    #[test]
    fn sweep_produces_rows_for_both_algorithms() {
        let rows = lower_bound_sweep(&[3, 4], &[2, 3], 99);
        assert_eq!(rows.len(), 2 * 2 * 2);
        assert!(rows.iter().all(|r| r.clean && r.respects_bound));
        assert!(rows.iter().any(|r| r.algorithm.starts_with("Ak")));
        assert!(rows.iter().any(|r| r.algorithm.starts_with("Bk")));
    }

    #[test]
    fn replication_property_holds() {
        let base = RingLabeling::from_raw(&[2, 5, 3]);
        let checked = verify_replication_property(&base, 3);
        assert!(checked > 0);
    }

    #[test]
    #[should_panic(expected = "K1")]
    fn rejects_non_k1_base() {
        let ring = RingLabeling::from_raw(&[1, 1, 2]);
        lower_bound_row(&Ak::new(2), &ring, 2);
    }
}
