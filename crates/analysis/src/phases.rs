//! Reconstruction of `Bk`'s phase structure — regenerating **Figure 1**.
//!
//! Figure 1 of the paper walks `Bk` (`k = 3`) through the ring
//! `(1,3,1,3,2,2,1,2)`, showing for each phase which processes are still
//! active (white) and each process's guest label (gray). This module
//! replays any `Bk` run with an observer and extracts exactly that data,
//! using the phase numbering of Appendix A (a process enters phase `i+1`
//! when it assigns `guest` upon a `⟨PHASE SHIFT⟩`).

use hre_core::{Bk, BkProc};
use hre_ring::RingLabeling;
use hre_sim::{
    run_with_observer, ActionEvent, EventKind, Network, Observer, RoundRobinSched, RunOptions,
};
use hre_words::Label;

/// What one process did in one phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRecord {
    /// The guest label the process held during this phase.
    pub guest: Label,
    /// Whether the process was active (competing) at the *start* of the
    /// phase — "white" in Figure 1.
    pub active_at_start: bool,
}

/// Per-phase, per-process reconstruction of a `Bk` execution.
#[derive(Clone, Debug)]
pub struct PhaseTable {
    /// `records[i][p]` = what process `p` did in phase `i+1`; `None` if the
    /// process never entered that phase (the run ended first).
    pub records: Vec<Vec<Option<PhaseRecord>>>,
    /// The elected leader.
    pub leader: usize,
    /// Total phases entered by the leader (`X` in the paper).
    pub leader_phases: u64,
    /// Messages received while the receiver was in phase `i+1` — the
    /// proof of Theorem 4 claims `O(kn²)` for phase 1 and `O(kn)` for
    /// every later phase.
    pub messages_per_phase: Vec<u64>,
}

impl PhaseTable {
    /// Number of reconstructed phases.
    pub fn phases(&self) -> usize {
        self.records.len()
    }

    /// The indices active at the start of phase `i` (1-based).
    pub fn active_set(&self, phase: usize) -> Vec<usize> {
        self.records[phase - 1]
            .iter()
            .enumerate()
            .filter(|(_, r)| r.as_ref().is_some_and(|r| r.active_at_start))
            .map(|(p, _)| p)
            .collect()
    }

    /// The guest of process `p` during phase `i` (1-based), if entered.
    pub fn guest(&self, phase: usize, p: usize) -> Option<Label> {
        self.records[phase - 1][p].as_ref().map(|r| r.guest)
    }
}

struct PhaseWatch {
    n: usize,
    /// Last phase number seen per process, to detect transitions.
    last_phase: Vec<u64>,
    /// records[phase-1][pid]
    records: Vec<Vec<Option<PhaseRecord>>>,
    /// receive events charged to the receiver's phase at reception time
    messages_per_phase: Vec<u64>,
}

impl PhaseWatch {
    fn note(&mut self, net: &Network<BkProc>, pid: usize, received: bool) {
        let proc = net.process(pid);
        let phase = proc.phase();
        if phase == 0 {
            return;
        }
        let idx = (phase - 1) as usize;
        if received {
            while self.messages_per_phase.len() <= idx {
                self.messages_per_phase.push(0);
            }
            self.messages_per_phase[idx] += 1;
        }
        if phase == self.last_phase[pid] {
            return;
        }
        self.last_phase[pid] = phase;
        while self.records.len() <= idx {
            self.records.push(vec![None; self.n]);
        }
        self.records[idx][pid] =
            Some(PhaseRecord { guest: proc.guest(), active_at_start: proc.is_active() });
    }
}

impl Observer<BkProc> for PhaseWatch {
    fn after_event(
        &mut self,
        net: &Network<BkProc>,
        event: &ActionEvent<<BkProc as hre_sim::ProcessBehavior>::Msg>,
    ) {
        let received = matches!(event.kind, EventKind::Receive(_));
        self.note(net, event.pid, received);
    }
}

/// Runs `Bk(k)` on `ring` and reconstructs its phase table.
///
/// ```
/// use hre_analysis::reconstruct_phases;
/// use hre_ring::catalog;
///
/// let table = reconstruct_phases(&catalog::figure1_ring(), 3);
/// assert_eq!(table.leader, 0);
/// assert_eq!(table.leader_phases, 9);                 // X = 9
/// assert_eq!(table.active_set(2), vec![0, 2, 6]);     // Fig. 1b's white nodes
/// ```
///
/// Panics if the run is not specification-clean (the ring must be in
/// `A ∩ Kk`).
pub fn reconstruct_phases(ring: &RingLabeling, k: usize) -> PhaseTable {
    let algo = Bk::new(k);
    let mut watch = PhaseWatch {
        n: ring.n(),
        last_phase: vec![0; ring.n()],
        records: Vec::new(),
        messages_per_phase: Vec::new(),
    };
    let rep = run_with_observer(
        &algo,
        ring,
        &mut RoundRobinSched::default(),
        RunOptions::default(),
        &mut watch,
    );
    assert!(rep.clean(), "phase reconstruction requires a clean run: {:?}", rep.violations);
    let leader = rep.leader.expect("clean run has a leader");
    PhaseTable {
        records: watch.records,
        leader,
        leader_phases: watch.last_phase[leader],
        messages_per_phase: watch.messages_per_phase,
    }
}

/// The paper's **Figure 1** expected data for phases 1–4 on the ring
/// `(1,3,1,3,2,2,1,2)` with `k = 3`: `(active set, guests)` per phase.
/// Guests are given for every process (Figure 1 shows them in gray).
pub fn figure1_expected() -> Vec<(Vec<usize>, Vec<u64>)> {
    vec![
        // Phase 1 (Fig. 1a): everyone active, guest = own label.
        (vec![0, 1, 2, 3, 4, 5, 6, 7], vec![1, 3, 1, 3, 2, 2, 1, 2]),
        // Phase 2 (Fig. 1b): survivors = label-1 processes; guests shifted
        // one step clockwise: guest(p) = label(p-1).
        (vec![0, 2, 6], vec![2, 1, 3, 1, 3, 2, 2, 1]),
        // Phase 3 (Fig. 1c): survivors p0 and p6 (p2's guest 3 lost to 2).
        (vec![0, 6], vec![1, 2, 1, 3, 1, 3, 2, 2]),
        // Phase 4 (Fig. 1d): p0 alone (p6's guest 2 lost to p0's 1).
        (vec![0], vec![2, 1, 2, 1, 3, 1, 3, 2]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::catalog;

    #[test]
    fn figure1_phases_match_paper() {
        let ring = catalog::figure1_ring();
        let table = reconstruct_phases(&ring, catalog::FIGURE1_K);
        assert_eq!(table.leader, catalog::FIGURE1_LEADER);
        let expected = figure1_expected();
        assert!(table.phases() >= expected.len());
        for (i, (active, guests)) in expected.iter().enumerate() {
            let phase = i + 1;
            assert_eq!(&table.active_set(phase), active, "phase {phase} active set");
            for (p, &g) in guests.iter().enumerate() {
                // Every process that entered this phase must hold the
                // figure's guest; processes that never entered it (the run
                // ended) are exempt — but for phases 1..4 all enter.
                assert_eq!(
                    table.guest(phase, p),
                    Some(Label::new(g)),
                    "phase {phase}, process {p}"
                );
            }
        }
    }

    #[test]
    fn guests_track_llabels_for_active_processes() {
        // The algorithm's invariant (Lemma 8): in phase i, an active
        // process p holds guest = LLabels(p)[i].
        let ring = catalog::figure1_ring();
        let table = reconstruct_phases(&ring, 3);
        for phase in 1..=table.phases() {
            for p in table.active_set(phase) {
                let expect = ring.llabels(p, phase)[phase - 1];
                assert_eq!(table.guest(phase, p), Some(expect), "phase {phase} p={p}");
            }
        }
    }

    #[test]
    fn leader_enters_exactly_x_phases() {
        // X = min{x : LLabels(L)_x contains L.id (k+1) times} = 9 for the
        // Figure 1 ring (label 1 at positions 1,3,7,9).
        let ring = catalog::figure1_ring();
        let table = reconstruct_phases(&ring, 3);
        assert_eq!(table.leader_phases, 9);
    }

    #[test]
    fn active_sets_shrink_to_leader() {
        let ring = catalog::figure1_ring();
        let table = reconstruct_phases(&ring, 3);
        let mut prev = usize::MAX;
        for phase in 1..=table.phases() {
            let a = table.active_set(phase).len();
            assert!(a <= prev, "actives cannot grow (phase {phase})");
            prev = a;
        }
        assert_eq!(table.active_set(table.phases()), vec![table.leader]);
    }

    #[test]
    fn per_phase_message_counts_follow_theorem4_proof() {
        // Proof of Theorem 4: phase 1 exchanges O(kn²) messages, each later
        // phase O(kn). Check with explicit constants on several rings.
        use hre_ring::generate::random_exact_multiplicity;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        for &(n, k) in &[(8usize, 2usize), (12, 3), (16, 4)] {
            let ring = random_exact_multiplicity(n, k, &mut rng);
            let table = reconstruct_phases(&ring, k);
            let (n64, k64) = (n as u64, k as u64);
            assert!(
                table.messages_per_phase[0] <= 2 * (k64 + 1) * n64 * n64,
                "phase 1: {} messages on {ring:?}",
                table.messages_per_phase[0]
            );
            for (i, &m) in table.messages_per_phase.iter().enumerate().skip(1) {
                assert!(m <= 4 * (k64 + 1) * n64, "phase {}: {} messages on {ring:?}", i + 1, m);
            }
            // conservation: phase charges sum to total receives
            let total: u64 = table.messages_per_phase.iter().sum();
            assert!(total > 0);
        }
    }

    #[test]
    fn ring_122_has_three_phase_x() {
        // LLabels(p0) for (1,2,2) = 1,2,2 ; occurrences of label 1 at
        // positions 1,4,7 → with k = 2, X = 7.
        let table = reconstruct_phases(&catalog::ring_122(), 2);
        assert_eq!(table.leader, 0);
        assert_eq!(table.leader_phases, 7);
    }
}
