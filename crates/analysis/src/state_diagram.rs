//! Conformance checking against **Figure 2** — `Bk`'s state diagram.
//!
//! Figure 2 allows exactly these transitions:
//!
//! ```text
//! INIT    --B1-->  COMPUTE
//! COMPUTE --B2,B3--> COMPUTE      COMPUTE --B4--> PASSIVE
//! COMPUTE --B5-->  SHIFT          SHIFT   --B6--> COMPUTE
//! SHIFT   --B9-->  WIN            PASSIVE --B7,B8--> PASSIVE
//! PASSIVE --B10--> HALT           WIN     --B11--> HALT
//! ```
//!
//! We record every `(state-before, action, state-after)` triple observed
//! across runs and assert the set is a subset of the diagram's edges, then
//! report the transition counts — an executable version of the figure.

use hre_core::{Bk, BkAction, BkProc, BkState};
use hre_ring::RingLabeling;
use hre_sim::{run_with_observer, ActionEvent, Network, Observer, RunOptions, Scheduler};
use std::collections::BTreeMap;

/// The edges of Figure 2: `(from, action, to)`.
pub const ALLOWED_TRANSITIONS: &[(BkState, BkAction, BkState)] = &[
    (BkState::Init, BkAction::B1, BkState::Compute),
    (BkState::Compute, BkAction::B2, BkState::Compute),
    (BkState::Compute, BkAction::B3, BkState::Compute),
    (BkState::Compute, BkAction::B4, BkState::Passive),
    (BkState::Compute, BkAction::B5, BkState::Shift),
    (BkState::Shift, BkAction::B6, BkState::Compute),
    (BkState::Shift, BkAction::B9, BkState::Win),
    (BkState::Passive, BkAction::B7, BkState::Passive),
    (BkState::Passive, BkAction::B8, BkState::Passive),
    (BkState::Passive, BkAction::B10, BkState::Halt),
    (BkState::Win, BkAction::B11, BkState::Halt),
];

/// Observed-transition report for one or more runs.
#[derive(Clone, Debug, Default)]
pub struct DiagramReport {
    /// Count per observed `(from, action, to)` triple.
    pub counts: BTreeMap<(String, String, String), u64>,
    /// Transitions observed that Figure 2 does not allow (empty for a
    /// faithful implementation).
    pub violations: Vec<(BkState, BkAction, BkState)>,
}

impl DiagramReport {
    /// Whether every observed transition is allowed by the figure.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of distinct edges exercised.
    pub fn distinct_edges(&self) -> usize {
        self.counts.len()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: DiagramReport) {
        for (k, v) in other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        self.violations.extend(other.violations);
    }
}

struct DiagramWatch {
    prev_state: Vec<BkState>,
    report: DiagramReport,
}

impl Observer<BkProc> for DiagramWatch {
    fn after_event(
        &mut self,
        net: &Network<BkProc>,
        event: &ActionEvent<<BkProc as hre_sim::ProcessBehavior>::Msg>,
    ) {
        let pid = event.pid;
        let proc = net.process(pid);
        let from = self.prev_state[pid];
        let to = proc.state();
        self.prev_state[pid] = to;
        let Some(action) = proc.last_action() else { return };
        let allowed =
            ALLOWED_TRANSITIONS.iter().any(|&(f, a, t)| f == from && a == action && t == to);
        if !allowed {
            self.report.violations.push((from, action, to));
        }
        *self
            .report
            .counts
            .entry((format!("{from:?}"), action.name().to_string(), format!("{to:?}")))
            .or_insert(0) += 1;
    }
}

/// Runs `Bk(k)` on `ring` under `sched` and returns the observed-transition
/// report. The run itself must be clean (panics otherwise).
pub fn check_figure2_conformance<S: Scheduler>(
    ring: &RingLabeling,
    k: usize,
    sched: &mut S,
) -> DiagramReport {
    let algo = Bk::new(k);
    let mut watch = DiagramWatch {
        prev_state: vec![BkState::Init; ring.n()],
        report: DiagramReport::default(),
    };
    let rep = run_with_observer(&algo, ring, sched, RunOptions::default(), &mut watch);
    assert!(rep.clean(), "conformance checking requires a clean run: {:?}", rep.violations);
    watch.report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_ring::{catalog, enumerate};
    use hre_sim::{RandomSched, RoundRobinSched, SyncSched};

    #[test]
    fn figure1_run_conforms_and_exercises_most_edges() {
        let ring = catalog::figure1_ring();
        let mut report = DiagramReport::default();
        report.merge(check_figure2_conformance(&ring, 3, &mut RoundRobinSched::default()));
        report.merge(check_figure2_conformance(&ring, 3, &mut SyncSched));
        for seed in 0..10 {
            report.merge(check_figure2_conformance(&ring, 3, &mut RandomSched::new(seed)));
        }
        assert!(report.conforms(), "{:?}", report.violations);
        // Every edge of Figure 2 is exercised on this ring.
        assert_eq!(report.distinct_edges(), ALLOWED_TRANSITIONS.len());
    }

    #[test]
    fn every_small_ring_conforms() {
        for n in 2..=4usize {
            for ring in enumerate::asymmetric_labelings(n, 3) {
                let k = ring.max_multiplicity().max(2);
                let report = check_figure2_conformance(&ring, k, &mut RoundRobinSched::default());
                assert!(report.conforms(), "{ring:?} {:?}", report.violations);
            }
        }
    }

    #[test]
    fn b9_fires_exactly_once_per_run() {
        let ring = catalog::figure1_ring();
        let report = check_figure2_conformance(&ring, 3, &mut RoundRobinSched::default());
        let b9: u64 =
            report.counts.iter().filter(|((_, a, _), _)| a == "B9").map(|(_, c)| *c).sum();
        assert_eq!(b9, 1);
        let b11: u64 =
            report.counts.iter().filter(|((_, a, _), _)| a == "B11").map(|(_, c)| *c).sum();
        assert_eq!(b11, 1);
        // B10 fires once per non-leader.
        let b10: u64 =
            report.counts.iter().filter(|((_, a, _), _)| a == "B10").map(|(_, c)| *c).sum();
        assert_eq!(b10, (ring.n() - 1) as u64);
    }
}
