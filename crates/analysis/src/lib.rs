//! # hre-analysis — the paper's theory, executable
//!
//! Where `hre-core` implements the paper's algorithms, this crate
//! operationalizes its *proofs and figures*:
//!
//! * [`lower_bound`] — Lemma 1 / Corollaries 2 and 4: synchronous step
//!   counting on `K1` rings, the replicated-ring construction `R_{n,k}`,
//!   and the `1 + (k−2)n` step bound;
//! * [`impossibility`] — Theorem 1 / Corollary 3: an executable adversary
//!   that takes a candidate "algorithm for `U*`" and produces a concrete
//!   ring on which it violates the specification (two simultaneous
//!   leaders);
//! * [`phases`] — reconstruction of `Bk`'s phase structure from a run
//!   (Appendix A numbering), used to regenerate **Figure 1**;
//! * [`state_diagram`] — conformance checking of observed `Bk` transitions
//!   against the **Figure 2** state diagram;
//! * [`tradeoff`] — the `Ak` vs `Bk` time/space trade-off sweeps behind the
//!   abstract's headline claim;
//! * [`table`] — plain-text table rendering for the experiment binaries;
//! * [`render`] / [`spacetime`] — plain-text views of rings, phases, and
//!   executions (event logs, activity grids) for the CLI and debugging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod impossibility;
pub mod lower_bound;
pub mod phases;
pub mod render;
pub mod spacetime;
pub mod state_diagram;
pub mod svg;
pub mod table;
pub mod tradeoff;

pub use impossibility::{demonstrate_impossibility, ImpossibilityCertificate};
pub use lower_bound::{lower_bound_sweep, sync_steps, LowerBoundRow};
pub use phases::{reconstruct_phases, PhaseRecord, PhaseTable};
pub use state_diagram::{check_figure2_conformance, DiagramReport, ALLOWED_TRANSITIONS};
pub use table::Table;
pub use tradeoff::{tradeoff_sweep, TradeoffRow};
