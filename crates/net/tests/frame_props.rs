//! Property tests for the wire layer: framing round-trips under
//! arbitrary chunking, checksum verification catches any corruption,
//! and reassembly restores exactly-once FIFO order under arbitrary
//! drop/duplicate/reorder schedules.

use hre_net::{
    encode_frame, Frame, FrameError, FrameReader, Offer, Reassembly, KIND_ACK, KIND_DATA,
};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

proptest! {
    /// encode → decode is the identity, no matter how the byte stream is
    /// chopped into reads.
    #[test]
    fn roundtrip_under_arbitrary_chunking(
        seq in any::<u64>(),
        ack in any::<bool>(),
        payload in vec(any::<u8>(), 0..64),
        chunk in 1usize..17,
    ) {
        let kind = if ack { KIND_ACK } else { KIND_DATA };
        let bytes = encode_frame(seq, kind, &payload);
        let mut r = FrameReader::new();
        let mut got = None;
        for piece in bytes.chunks(chunk) {
            r.extend(piece);
            if let Some(f) = r.next_frame() {
                prop_assert!(got.is_none(), "frame produced twice");
                got = Some(f);
            }
        }
        prop_assert_eq!(got, Some(Ok(Frame { seq, kind, payload })));
        prop_assert_eq!(r.pending(), 0);
    }

    /// Flipping any single bit after the length prefix is caught by the
    /// CRC — never silently delivered as a different frame.
    #[test]
    fn any_bit_flip_is_rejected(
        seq in any::<u64>(),
        payload in vec(any::<u8>(), 0..32),
        pos_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_frame(seq, KIND_DATA, &payload);
        let pos = 4 + (pos_pick as usize % (bytes.len() - 4));
        bytes[pos] ^= 1 << bit;
        let mut r = FrameReader::new();
        r.extend(&bytes);
        prop_assert_eq!(r.next_frame(), Some(Err(FrameError::BadCrc)));
    }

    /// A stream of frames interleaved back-to-back parses to exactly the
    /// same sequence.
    #[test]
    fn back_to_back_frames_all_parse(payloads in vec(vec(any::<u8>(), 0..16), 1..20)) {
        let mut stream = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            stream.extend_from_slice(&encode_frame(i as u64, KIND_DATA, p));
        }
        let mut r = FrameReader::new();
        r.extend(&stream);
        for (i, p) in payloads.iter().enumerate() {
            let f = r.next_frame().unwrap().unwrap();
            prop_assert_eq!(f.seq, i as u64);
            prop_assert_eq!(&f.payload, p);
        }
        prop_assert!(r.next_frame().is_none());
    }

    /// Exactly-once FIFO: present every sequence number at least once, in
    /// an arbitrary order, with arbitrary extra duplicates (the union of
    /// what drops-plus-retransmission, duplication, and reordering can
    /// produce) — delivery is the original order, each message once.
    #[test]
    fn reassembly_restores_fifo_exactly_once(
        count in 1usize..40,
        dups in vec((any::<u64>(), any::<u64>()), 0..20),
        shuffle_seed in any::<u64>(),
    ) {
        // Wire-level attempt schedule: each seq once, plus duplicates.
        let mut attempts: Vec<u64> = (0..count as u64).collect();
        for (d, _) in &dups {
            attempts.push(d % count as u64);
        }
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..attempts.len()).rev() {
            attempts.swap(i, rng.gen_range(0..=i));
        }

        let mut reasm = Reassembly::new();
        let mut delivered: Vec<u64> = Vec::new();
        let mut duplicates = 0u64;
        for seq in attempts {
            match reasm.offer(seq, seq.to_be_bytes().to_vec()) {
                Offer::Delivered(ps) => {
                    for p in ps {
                        delivered.push(u64::from_be_bytes(p.try_into().unwrap()));
                    }
                }
                Offer::Buffered => {}
                Offer::Duplicate => duplicates += 1,
            }
        }
        let expect: Vec<u64> = (0..count as u64).collect();
        prop_assert_eq!(delivered, expect);
        prop_assert_eq!(duplicates, dups.len() as u64);
        prop_assert_eq!(reasm.cumulative_ack(), count as u64);
        prop_assert_eq!(reasm.stashed(), 0);
    }
}
