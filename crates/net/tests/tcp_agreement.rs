//! The tentpole claim: running the unmodified algorithms over real TCP
//! sockets — even through a deliberately faulty wire — elects exactly
//! the leader the discrete-event simulator elects, with zero
//! specification violations.

use hre_baselines::ChangRoberts;
use hre_core::{Ak, Bk};
use hre_net::{run_tcp, FaultPolicy, NetOptions, NetReport};
use hre_ring::{generate, RingLabeling};
use hre_sim::{run, Algorithm, ProcessBehavior, RoundRobinSched, RunOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

fn sample_rings(count: usize, max_n: usize, seed: u64) -> Vec<(RingLabeling, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let n = rng.gen_range(4..=max_n);
            let k = rng.gen_range(1..=4usize);
            if k == 1 {
                // Multiplicity 1 means all-distinct: sample K1 directly,
                // rejection over a small alphabet would almost never hit it.
                (generate::random_k1(n, &mut rng), k)
            } else {
                (generate::random_a_inter_kk(n, k, 4 * n as u64, &mut rng), k)
            }
        })
        .collect()
}

fn agree<A>(algo: &A, ring: &RingLabeling, opts: NetOptions) -> NetReport
where
    A: Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as ProcessBehavior>::Msg: hre_net::WireMessage,
{
    let sim = run(algo, ring, &mut RoundRobinSched::default(), RunOptions::default());
    assert!(sim.clean(), "simulator run not clean on {:?}", ring.labels());
    let net = run_tcp(algo, ring, opts);
    assert!(net.clean(), "TCP run not clean on {:?}: outcomes {:?}", ring.labels(), net.outcomes);
    assert_eq!(net.leader(), sim.leader, "leader mismatch on {:?}", ring.labels());
    assert_eq!(net.leader(), ring.true_leader(), "not the true leader on {:?}", ring.labels());
    net
}

/// ≥20 random `A ∩ Kk` rings (n up to 32, k up to 4): Ak and Bk over a
/// clean TCP wire agree with the simulator on every single one.
#[test]
fn tcp_matches_simulator_on_random_rings() {
    for (i, (ring, k)) in sample_rings(10, 32, 0xA11CE).into_iter().enumerate() {
        let rep = agree(&Ak::new(k), &ring, NetOptions::default());
        assert_eq!(rep.net.total.reconnects, 0, "clean wire reconnected (ring {i})");
        // k is an upper bound on multiplicity, and Bk needs k >= 2.
        agree(&Bk::new(k.max(2)), &ring, NetOptions::default());
    }
}

/// The acceptance fault mix — 20 % drop, duplication, reordering, short
/// delays, and one forced connection reset per link — changes nothing
/// about the outcome, and the metrics prove the wire really was hostile.
#[test]
fn tcp_survives_seeded_faults_with_identical_outcome() {
    let opts = NetOptions {
        faults: FaultPolicy::stress(),
        fault_seed: 0xF00D,
        retransmit_timeout: Duration::from_millis(15),
        ..NetOptions::default()
    };
    let mut total_retries = 0;
    let mut total_reconnects = 0;
    for (ring, k) in sample_rings(5, 10, 0xBEEF) {
        let rep = agree(&Ak::new(k), &ring, opts);
        total_retries += rep.net.total.frames_retried;
        total_reconnects += rep.net.total.reconnects;
        assert!(rep.net.total.faults_injected > 0, "injector never fired");
    }
    assert!(total_retries > 0, "faulted runs should have retransmitted");
    assert!(total_reconnects > 0, "forced resets should have caused reconnects");
}

/// Bk under the same hostile wire.
#[test]
fn bk_survives_seeded_faults() {
    let opts = NetOptions {
        faults: FaultPolicy::stress(),
        fault_seed: 0xCAFE,
        retransmit_timeout: Duration::from_millis(15),
        ..NetOptions::default()
    };
    for (ring, k) in sample_rings(3, 8, 0xD00D) {
        let rep = agree(&Bk::new(k.max(2)), &ring, opts);
        assert!(rep.net.total.faults_injected > 0);
    }
}

/// A baseline with a different message alphabet crosses the wire too,
/// and the transport ledger is self-consistent.
#[test]
fn baseline_runs_and_metrics_are_sane() {
    let mut rng = StdRng::seed_from_u64(7);
    let ring = generate::random_k1(8, &mut rng);
    let sim = run(&ChangRoberts, &ring, &mut RoundRobinSched::default(), RunOptions::default());
    let rep = run_tcp(&ChangRoberts, &ring, NetOptions::default());
    assert!(rep.clean());
    assert_eq!(rep.leader(), sim.leader);
    // Logical message counts agree between the substrates.
    assert_eq!(rep.messages, sim.metrics.messages);
    // Every logical message crossed the wire as exactly one first
    // transmission, and acks came back for delivered frames.
    assert_eq!(rep.net.total.frames_sent, rep.messages);
    assert!(rep.net.total.acks_sent >= rep.net.total.frames_sent - rep.net.total.frames_rejected);
    assert!(rep.net.total.bytes_on_wire > 0);
    assert!(rep.net.total.rtt.count > 0, "clean wire should collect RTT samples");
    assert_eq!(rep.net.links.len(), ring.n());
}

/// A traced run under the stress mix lands every wire-recovery event in
/// the flight recorder — retransmissions and duplicate/buffered frames,
/// all parented under the caller's span — while an untraced run stays
/// recorder-free.
#[test]
fn traced_run_records_retransmit_and_reassembly_events() {
    use hre_net::run_tcp_traced;
    use hre_runtime::trace::{FlightRecorder, SpanId, Stage};
    use std::sync::Arc;

    let opts = NetOptions {
        faults: FaultPolicy::stress(),
        fault_seed: 0xF00D,
        retransmit_timeout: Duration::from_millis(15),
        ..NetOptions::default()
    };
    let rec = Arc::new(FlightRecorder::new(4096));
    let trace = rec.mint_trace();
    let parent = SpanId(0x42);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let ring = generate::random_a_inter_kk(10, 3, 40, &mut rng);
    let rep = run_tcp_traced(&Ak::new(3), &ring, opts, Some((Arc::clone(&rec), trace, parent)));
    assert!(rep.clean(), "traced faulted run must still elect cleanly");
    assert!(rep.net.total.frames_retried > 0, "stress mix should retransmit");

    let spans = rec.trace_spans(trace);
    let retransmits: Vec<_> = spans.iter().filter(|s| s.stage == Stage::Retransmit).collect();
    assert!(!retransmits.is_empty(), "retransmissions must be traced");
    assert!(retransmits.iter().all(|s| s.parent == parent && s.b >= 2), "b is the attempt number");
    if rep.net.total.dup_frames_rx > 0 {
        assert!(
            spans.iter().any(|s| s.stage == Stage::Reassembly && s.b == 1),
            "suppressed duplicates must be traced"
        );
    }
    // Every event sits under the caller's trace; nothing minted its own.
    assert!(spans.iter().all(|s| s.trace == trace && !s.root));

    // The untraced entry point records nothing anywhere.
    let silent = Arc::new(FlightRecorder::new(64));
    let t2 = silent.mint_trace();
    let rep2 = run_tcp(&Ak::new(3), &ring, opts);
    assert!(rep2.clean());
    assert!(silent.trace_spans(t2).is_empty());
}
