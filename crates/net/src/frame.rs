//! Length-prefixed binary framing with CRC-32 integrity.
//!
//! Every unit on the wire is one frame:
//!
//! ```text
//! ┌──────────┬──────────┬────────┬───────────┬───────────┐
//! │ len: u32 │ seq: u64 │ kind:u8│  payload  │ crc32:u32 │
//! │ (BE)     │ (BE)     │        │ (len-13 B)│ (BE)      │
//! └──────────┴──────────┴────────┴───────────┴───────────┘
//! ```
//!
//! `len` counts everything after itself (`seq` through `crc32`), so a
//! reader can delimit frames without understanding them. The CRC covers
//! `seq`, `kind`, and the payload; a frame whose checksum disagrees is
//! rejected whole (the sender's retransmission timer recovers it). A
//! `len` outside the sane window means the byte stream itself has
//! desynchronized, which is unrecoverable without a reconnect.

/// Frame kind: an in-order application message.
pub const KIND_DATA: u8 = 0;
/// Frame kind: a cumulative acknowledgment (`seq` = next expected).
pub const KIND_ACK: u8 = 1;

/// Bytes of a frame after the length prefix, excluding the payload:
/// `seq` (8) + `kind` (1) + `crc32` (4).
pub const FRAME_OVERHEAD: usize = 13;

/// Largest accepted `len` value. Ring messages are a few bytes; anything
/// near this limit is stream desynchronization, not data.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Per-link sequence number (DATA) or cumulative ack point (ACK).
    pub seq: u64,
    /// [`KIND_DATA`] or [`KIND_ACK`].
    pub kind: u8,
    /// Application bytes (empty for ACK frames).
    pub payload: Vec<u8>,
}

/// Why a frame was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Checksum mismatch: the frame is corrupt but the stream is still
    /// delimited — skip the frame and let retransmission recover it.
    BadCrc,
    /// Unknown `kind` byte; skippable like a CRC failure.
    BadKind,
    /// The length prefix is impossible: the byte stream has
    /// desynchronized and the connection must be torn down.
    BadLength,
}

const CRC_POLY: u32 = 0xEDB8_8320; // reflected IEEE 802.3 polynomial

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes one frame, length prefix included.
pub fn encode_frame(seq: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = FRAME_OVERHEAD + payload.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
    let crc = crc32(&buf[4..buf.len()]);
    buf.extend_from_slice(&crc.to_be_bytes());
    buf
}

/// Incremental frame parser over a byte stream.
///
/// Feed raw socket reads with [`extend`](FrameReader::extend), then drain
/// complete frames with [`next_frame`](FrameReader::next_frame).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Buffered bytes not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if the buffer holds one.
    ///
    /// `Some(Err(BadCrc | BadKind))` consumes the offending frame — the
    /// caller skips it and keeps parsing. `Some(Err(BadLength))` leaves
    /// the buffer untouched; the caller must reset the connection.
    pub fn next_frame(&mut self) -> Option<Result<Frame, FrameError>> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if !(FRAME_OVERHEAD..=MAX_FRAME_LEN).contains(&len) {
            return Some(Err(FrameError::BadLength));
        }
        if self.buf.len() < 4 + len {
            return None;
        }
        let body: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
        let (checked, crc_bytes) = body.split_at(len - 4);
        let wire_crc = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if crc32(checked) != wire_crc {
            return Some(Err(FrameError::BadCrc));
        }
        let seq = u64::from_be_bytes(checked[..8].try_into().expect("8 seq bytes"));
        let kind = checked[8];
        if kind != KIND_DATA && kind != KIND_ACK {
            return Some(Err(FrameError::BadKind));
        }
        Some(Ok(Frame { seq, kind, payload: checked[9..].to_vec() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_single_frame() {
        let bytes = encode_frame(42, KIND_DATA, b"hello");
        let mut r = FrameReader::new();
        r.extend(&bytes);
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f, Frame { seq: 42, kind: KIND_DATA, payload: b"hello".to_vec() });
        assert!(r.next_frame().is_none());
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn roundtrip_split_across_reads() {
        let bytes = encode_frame(7, KIND_ACK, b"");
        let mut r = FrameReader::new();
        for chunk in bytes.chunks(3) {
            r.extend(chunk);
        }
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.seq, 7);
        assert_eq!(f.kind, KIND_ACK);
        assert!(f.payload.is_empty());
    }

    #[test]
    fn corrupt_payload_is_rejected_and_stream_continues() {
        let mut bytes = encode_frame(1, KIND_DATA, b"abc");
        let good = encode_frame(2, KIND_DATA, b"xyz");
        let flip = bytes.len() - 6; // inside the payload
        bytes[flip] ^= 0x40;
        bytes.extend_from_slice(&good);
        let mut r = FrameReader::new();
        r.extend(&bytes);
        assert_eq!(r.next_frame(), Some(Err(FrameError::BadCrc)));
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.seq, 2);
    }

    #[test]
    fn insane_length_is_fatal() {
        let mut r = FrameReader::new();
        r.extend(&(u32::MAX).to_be_bytes());
        r.extend(&[0u8; 32]);
        assert_eq!(r.next_frame(), Some(Err(FrameError::BadLength)));
    }

    #[test]
    fn unknown_kind_is_skippable() {
        let mut buf = encode_frame(3, KIND_DATA, b"q");
        buf[4 + 8] = 9; // patch kind, then fix the CRC
        let len = buf.len();
        let crc = crc32(&buf[4..len - 4]);
        buf[len - 4..].copy_from_slice(&crc.to_be_bytes());
        let mut r = FrameReader::new();
        r.extend(&buf);
        assert_eq!(r.next_frame(), Some(Err(FrameError::BadKind)));
    }
}
