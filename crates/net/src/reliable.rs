//! Exactly-once, in-order reassembly over an unreliable frame stream.
//!
//! The paper's model assumes reliable FIFO links. TCP gives that per
//! connection, but the transport deliberately breaks it again — the
//! fault injector drops, duplicates, reorders, and delays frames, and a
//! connection reset can replay anything the sender still holds. This
//! module restores the model's guarantee at the receiver: every DATA
//! payload is delivered to the process **exactly once**, in sequence
//! order, no matter what the wire did.
//!
//! The receiver keeps a cursor `next` (lowest sequence number not yet
//! delivered) and a bounded stash of out-of-order arrivals. The
//! cumulative acknowledgment it advertises is exactly `next`: the sender
//! may forget every sequence number below it.

use std::collections::BTreeMap;

/// What became of one offered DATA frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Offer {
    /// The frame was the next expected; it and any directly following
    /// stashed frames are released in order.
    Delivered(Vec<Vec<u8>>),
    /// The frame arrived early and was stashed until the gap fills.
    Buffered,
    /// The frame (or an identical stashed copy) was already accounted
    /// for — a wire duplicate, dropped.
    Duplicate,
}

/// In-order, exactly-once receive window for one incoming link.
#[derive(Debug, Default)]
pub struct Reassembly {
    next: u64,
    pending: BTreeMap<u64, Vec<u8>>,
}

impl Reassembly {
    /// A fresh window expecting sequence number 0.
    pub fn new() -> Self {
        Reassembly::default()
    }

    /// Offers one received DATA frame.
    pub fn offer(&mut self, seq: u64, payload: Vec<u8>) -> Offer {
        if seq < self.next || self.pending.contains_key(&seq) {
            return Offer::Duplicate;
        }
        if seq != self.next {
            self.pending.insert(seq, payload);
            return Offer::Buffered;
        }
        let mut out = vec![payload];
        self.next += 1;
        while let Some(p) = self.pending.remove(&self.next) {
            out.push(p);
            self.next += 1;
        }
        Offer::Delivered(out)
    }

    /// The cumulative acknowledgment to advertise: every sequence number
    /// below this has been delivered.
    pub fn cumulative_ack(&self) -> u64 {
        self.next
    }

    /// Number of out-of-order frames currently stashed.
    pub fn stashed(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(b: u8) -> Vec<u8> {
        vec![b]
    }

    #[test]
    fn in_order_stream_delivers_immediately() {
        let mut r = Reassembly::new();
        for s in 0..5u64 {
            assert_eq!(r.offer(s, p(s as u8)), Offer::Delivered(vec![p(s as u8)]));
        }
        assert_eq!(r.cumulative_ack(), 5);
    }

    #[test]
    fn gap_buffers_until_filled() {
        let mut r = Reassembly::new();
        assert_eq!(r.offer(2, p(2)), Offer::Buffered);
        assert_eq!(r.offer(1, p(1)), Offer::Buffered);
        assert_eq!(r.stashed(), 2);
        assert_eq!(r.offer(0, p(0)), Offer::Delivered(vec![p(0), p(1), p(2)]));
        assert_eq!(r.cumulative_ack(), 3);
        assert_eq!(r.stashed(), 0);
    }

    #[test]
    fn duplicates_are_dropped_everywhere() {
        let mut r = Reassembly::new();
        assert_eq!(r.offer(0, p(0)), Offer::Delivered(vec![p(0)]));
        assert_eq!(r.offer(0, p(0)), Offer::Duplicate); // behind the cursor
        assert_eq!(r.offer(3, p(3)), Offer::Buffered);
        assert_eq!(r.offer(3, p(3)), Offer::Duplicate); // already stashed
    }

    #[test]
    fn ack_is_next_expected_not_highest_seen() {
        let mut r = Reassembly::new();
        r.offer(9, p(9));
        assert_eq!(r.cumulative_ack(), 0);
    }
}
