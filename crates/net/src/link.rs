//! One node's reliable link endpoints, reusable outside the all-in-one
//! ring runtime: **receive on a listener you own, dial back to a peer
//! you're told about**.
//!
//! [`run_tcp`](crate::run_tcp) binds every ring node's listener inside
//! one process, so it always knows all the peer addresses up front. A
//! *distributed* ring — the control plane electing a coordinator across
//! real processes — can't do that: each process owns exactly one
//! listener and learns its successor's address from the membership
//! view. [`PeerLink`] packages the transmit and receive loops for that
//! case: the same framing, retransmission window, cumulative ACKs,
//! reconnect backoff, and exactly-once FIFO reassembly as the in-process
//! runtime, but for a single directed link pair (my egress to one peer,
//! my ingress from another).
//!
//! Teardown has two shapes. [`PeerLink::close_now`] retires the threads
//! immediately (the in-process runtime's behavior: every driver already
//! joined, nothing needs delivery). [`PeerLink::close_graceful`] first
//! lets the TX thread drain its unacknowledged window, then keeps the
//! RX thread alive for a linger period so a *predecessor* still
//! draining its own window gets its final ACKs — without the linger,
//! two neighboring processes closing simultaneously would each stall
//! the other's drain until the deadline.

use crate::fault::{FaultPolicy, LinkInjector, WireAction};
use crate::frame::{encode_frame, Frame, FrameError, FrameReader, KIND_ACK, KIND_DATA};
use crate::metrics::LinkMetrics;
use crate::reliable::{Offer, Reassembly};
use crate::wire::WireMessage;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use hre_runtime::trace::{FlightRecorder, SpanId, Stage, TraceId};
use hre_runtime::{NodeTransport, RecvFault, SendFault};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tick granularity of the TX polling loop.
pub(crate) const TICK: Duration = Duration::from_micros(500);
/// How long a reorder-stashed frame waits for a successor frame before
/// being flushed anyway.
const REORDER_HOLD: Duration = Duration::from_millis(2);
/// First reconnect backoff; doubles per failure up to [`BACKOFF_CAP`]
/// (the shared [`hre_runtime::Backoff`] policy).
const BACKOFF_START: Duration = Duration::from_millis(1);
/// Ceiling for the reconnect backoff.
const BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Where a traced link reports its wire-level recovery events: the
/// flight recorder plus the trace and parent span the events attach to.
pub type TraceHandle = (Arc<FlightRecorder>, TraceId, SpanId);

/// Wire-level knobs for one link (the link-relevant subset of
/// [`crate::NetOptions`]).
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Retransmission timeout: an unacked DATA frame is resent this long
    /// after its last transmission attempt.
    pub retransmit_timeout: Duration,
    /// After its driver disconnects, the TX thread lingers at most this
    /// long to drain unacknowledged frames before giving up.
    pub drain_deadline: Duration,
    /// Transport faults injected at this sender's egress.
    pub faults: FaultPolicy,
    /// Seed for this link's fault schedule.
    pub fault_seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            retransmit_timeout: Duration::from_millis(25),
            drain_deadline: Duration::from_secs(5),
            faults: FaultPolicy::NONE,
            fault_seed: 0,
        }
    }
}

/// The driver-facing ends of one node's links: in-memory queues serviced
/// by the TX and RX threads. Dropping it disconnects the TX queue, which
/// starts the TX thread's drain.
pub struct LinkTransport<M> {
    pub(crate) to_tx: Sender<M>,
    pub(crate) from_rx: Receiver<M>,
}

impl<M> NodeTransport<M> for LinkTransport<M> {
    fn send(&mut self, msg: M) -> Result<(), SendFault> {
        // Unbounded queue: only fails if the TX thread died, which never
        // happens before the driver itself returns.
        self.to_tx.send(msg).map_err(|_| SendFault::Disconnected)
    }

    fn recv(&mut self, idle: Duration) -> Result<M, RecvFault> {
        match self.from_rx.recv_timeout(idle) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(RecvFault::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvFault::Disconnected),
        }
    }
}

/// One node's pair of reliable link endpoints: a TX thread dialing
/// `peer` (the ring successor) and an RX thread accepting on the node's
/// own listener (the ring predecessor dials back). See the module docs.
pub struct PeerLink {
    shutdown: Arc<AtomicBool>,
    tx: Option<JoinHandle<()>>,
    rx: Option<JoinHandle<()>>,
    /// Egress metrics (this node's TX side of its outgoing link).
    pub tx_metrics: Arc<LinkMetrics>,
    /// Ingress metrics (this node's RX side of its incoming link).
    pub rx_metrics: Arc<LinkMetrics>,
}

impl PeerLink {
    /// Opens the endpoints: spawns the TX thread (dialing `peer`) and the
    /// RX thread (accepting on `listener`), wired to the returned
    /// [`LinkTransport`]. Metrics arcs are supplied by the caller so an
    /// orchestrator can share one ledger per *directed link* between the
    /// sender's TX and the receiver's RX, as the ring runtime does.
    pub fn open<M: WireMessage>(
        listener: TcpListener,
        peer: SocketAddr,
        tx_metrics: Arc<LinkMetrics>,
        rx_metrics: Arc<LinkMetrics>,
        cfg: LinkConfig,
        trace: Option<TraceHandle>,
    ) -> (PeerLink, LinkTransport<M>) {
        let shutdown = Arc::new(AtomicBool::new(false));
        let (to_tx, from_driver) = unbounded();
        let (to_driver, from_rx) = unbounded();

        let rx_loop = RxLoop::<M> {
            listener,
            to_driver,
            metrics: Arc::clone(&rx_metrics),
            shutdown: Arc::clone(&shutdown),
            trace: trace.clone(),
        };
        let rx = std::thread::spawn(move || rx_loop.run());

        let tx_loop = TxLoop::<M> {
            from_driver,
            peer,
            metrics: Arc::clone(&tx_metrics),
            injector: LinkInjector::new(cfg.faults, cfg.fault_seed),
            inject: !cfg.faults.is_none(),
            rto: cfg.retransmit_timeout,
            drain_deadline: cfg.drain_deadline,
            shutdown: Arc::clone(&shutdown),
            trace,
        };
        let tx = std::thread::spawn(move || tx_loop.run());

        (
            PeerLink { shutdown, tx: Some(tx), rx: Some(rx), tx_metrics, rx_metrics },
            LinkTransport { to_tx, from_rx },
        )
    }

    /// Retires both threads immediately. Anything still in the TX window
    /// is abandoned — correct once every driver in the ring has already
    /// finished (the in-process runtime's shutdown phase).
    pub fn close_now(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.join();
    }

    /// Graceful teardown for a *distributed* ring, where peers close
    /// independently: join the TX thread first (it exits on its own once
    /// its window drains — the transport must already be dropped), keep
    /// the RX thread ACKing for `linger`, then retire it.
    pub fn close_graceful(mut self, linger: Duration) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.join();
        }
        std::thread::sleep(linger);
        self.shutdown.store(true, Ordering::Relaxed);
        self.join();
    }

    fn join(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.join();
        }
        if let Some(rx) = self.rx.take() {
            let _ = rx.join();
        }
    }
}

/// One unacknowledged DATA frame in the sender's window.
struct TxEntry {
    bytes: Vec<u8>,
    attempts: u32,
    first_tx: Option<Instant>,
    next_due: Instant,
}

/// Sender side of one link.
pub(crate) struct TxLoop<M: WireMessage> {
    pub(crate) from_driver: Receiver<M>,
    pub(crate) peer: SocketAddr,
    pub(crate) metrics: Arc<LinkMetrics>,
    pub(crate) injector: LinkInjector,
    pub(crate) inject: bool,
    pub(crate) rto: Duration,
    pub(crate) drain_deadline: Duration,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) trace: Option<TraceHandle>,
}

impl<M: WireMessage> TxLoop<M> {
    pub(crate) fn run(mut self) {
        let mut conn: Option<(TcpStream, FrameReader)> = None;
        let mut window: BTreeMap<u64, TxEntry> = BTreeMap::new();
        let mut delayq: Vec<(Instant, Vec<u8>)> = Vec::new();
        let mut stash: Option<(Instant, Vec<u8>)> = None;
        let mut next_seq: u64 = 0;
        let mut backoff = hre_runtime::Backoff::new(BACKOFF_START, BACKOFF_CAP);
        let mut connected_once = false;
        let mut driver_done: Option<Instant> = None;
        let mut readbuf = [0u8; 4096];

        loop {
            // When fully idle, block on the driver queue instead of
            // polling — a fresh message wakes the loop immediately, so
            // per-hop latency is bounded by the wire, not by a tick.
            let idle = window.is_empty() && delayq.is_empty() && stash.is_none();
            if driver_done.is_none() && idle {
                match self.from_driver.recv_timeout(TICK) {
                    Ok(m) => {
                        let now = Instant::now();
                        let mut payload = Vec::new();
                        m.encode(&mut payload);
                        let bytes = encode_frame(next_seq, KIND_DATA, &payload);
                        window.insert(
                            next_seq,
                            TxEntry { bytes, attempts: 0, first_tx: None, next_due: now },
                        );
                        next_seq += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => driver_done = Some(Instant::now()),
                }
            }
            let now = Instant::now();

            // Ingest whatever else the driver queued, without blocking.
            if driver_done.is_none() {
                loop {
                    match self.from_driver.try_recv() {
                        Ok(m) => {
                            let mut payload = Vec::new();
                            m.encode(&mut payload);
                            let bytes = encode_frame(next_seq, KIND_DATA, &payload);
                            window.insert(
                                next_seq,
                                TxEntry { bytes, attempts: 0, first_tx: None, next_due: now },
                            );
                            next_seq += 1;
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            driver_done = Some(now);
                            break;
                        }
                    }
                }
            }

            // Exit checks.
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if let Some(done_at) = driver_done {
                let drained = window.is_empty() && delayq.is_empty() && stash.is_none();
                if drained || now.duration_since(done_at) > self.drain_deadline {
                    return;
                }
            }

            // Ensure a connection exists (dial with capped backoff).
            if conn.is_none() && (!window.is_empty() || !delayq.is_empty() || stash.is_some()) {
                match TcpStream::connect(self.peer) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(Some(Duration::from_millis(1)));
                        let _ = s.set_write_timeout(Some(Duration::from_millis(250)));
                        if connected_once {
                            self.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        connected_once = true;
                        backoff.reset();
                        // Everything unacked replays on the new pipe.
                        for e in window.values_mut() {
                            e.next_due = now;
                        }
                        conn = Some((s, FrameReader::new()));
                    }
                    Err(_) => {
                        std::thread::sleep(backoff.advance());
                        continue;
                    }
                }
            }

            let mut io_failed = false;

            if let Some((stream, _)) = conn.as_mut() {
                // Injected delays whose hold time elapsed.
                let mut i = 0;
                while i < delayq.len() {
                    if delayq[i].0 <= now {
                        let (_, bytes) = delayq.swap_remove(i);
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                    } else {
                        i += 1;
                    }
                }

                // A reorder stash that waited long enough goes out as-is.
                if let Some((since, _)) = stash {
                    if now.duration_since(since) > REORDER_HOLD {
                        let (_, bytes) = stash.take().expect("stash checked");
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                    }
                }
            }

            // Transmit every window entry whose (re)send is due.
            let due: Vec<u64> =
                window.iter().filter(|(_, e)| e.next_due <= now).map(|(s, _)| *s).collect();
            for seq in due {
                if io_failed || conn.is_none() {
                    break;
                }
                let e = window.get_mut(&seq).expect("due seq in window");
                e.attempts += 1;
                if e.attempts == 1 {
                    e.first_tx = Some(now);
                    self.metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics.frames_retried.fetch_add(1, Ordering::Relaxed);
                    if let Some((rec, trace, parent)) = &self.trace {
                        rec.record_event(
                            *trace,
                            *parent,
                            Stage::Retransmit,
                            seq,
                            e.attempts as u64,
                        );
                    }
                }
                e.next_due = now + self.rto;
                let bytes = e.bytes.clone();
                let action = if self.inject { self.injector.roll() } else { WireAction::Deliver };
                if action != WireAction::Deliver {
                    self.metrics.faults_injected.fetch_add(1, Ordering::Relaxed);
                }
                let (stream, _) = conn.as_mut().expect("conn checked");
                match action {
                    WireAction::Deliver => {
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                        // A pending reorder stash ships right after its
                        // successor: the swap is complete.
                        if let Some((_, stashed)) = stash.take() {
                            io_failed |= !write_wire(stream, &stashed, &self.metrics);
                        }
                    }
                    WireAction::Drop => {}
                    WireAction::Duplicate => {
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                    }
                    WireAction::Reorder => {
                        if let Some((_, prev)) = stash.replace((now, bytes)) {
                            io_failed |= !write_wire(stream, &prev, &self.metrics);
                        }
                    }
                    WireAction::Delay(d) => delayq.push((now + d, bytes)),
                    WireAction::Reset => {
                        conn = None;
                        e.next_due = now; // replay immediately after redial
                    }
                }
            }

            // Read cumulative ACKs flowing back on the same connection.
            // Only worth blocking for while something is unacknowledged;
            // the 1 ms read timeout doubles as the loop's tick then.
            if !window.is_empty() {
                if let Some((stream, reader)) = conn.as_mut() {
                    match stream.read(&mut readbuf) {
                        Ok(0) => io_failed = true,
                        Ok(nread) => {
                            reader.extend(&readbuf[..nread]);
                            loop {
                                match reader.next_frame() {
                                    Some(Ok(Frame { seq: cum, kind: KIND_ACK, .. })) => {
                                        let acked_at = Instant::now();
                                        let acked: Vec<u64> =
                                            window.range(..cum).map(|(s, _)| *s).collect();
                                        for s in acked {
                                            let e = window.remove(&s).expect("acked seq in window");
                                            if e.attempts == 1 {
                                                if let Some(t0) = e.first_tx {
                                                    self.metrics
                                                        .record_rtt(acked_at.duration_since(t0));
                                                }
                                            }
                                        }
                                    }
                                    Some(Ok(_)) => {} // stray DATA: ignore
                                    Some(Err(FrameError::BadLength)) => {
                                        io_failed = true;
                                        break;
                                    }
                                    Some(Err(_)) => {
                                        self.metrics
                                            .frames_rejected
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                    None => break,
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => io_failed = true,
                    }
                }
            }

            if io_failed {
                conn = None;
            }
            // Pacing: the blocking points above (driver recv when fully
            // idle, ACK read while awaiting acks) bound the loop in the
            // common states; only a pending delay/reorder stash with an
            // empty window still needs an explicit nap.
            if window.is_empty() && !(delayq.is_empty() && stash.is_none()) {
                std::thread::sleep(TICK);
            }
        }
    }
}

/// Writes one frame; returns `false` on any I/O failure (the caller
/// reconnects; the window replays whatever was lost).
fn write_wire(stream: &mut TcpStream, bytes: &[u8], metrics: &LinkMetrics) -> bool {
    match stream.write_all(bytes) {
        Ok(()) => {
            metrics.bytes_on_wire.fetch_add(bytes.len() as u64, Ordering::Relaxed);
            true
        }
        Err(_) => false,
    }
}

/// Receiver side of one link: accept, verify, reassemble, ack, decode,
/// deliver. Reassembly state survives reconnects — exactly-once holds
/// across resets.
pub(crate) struct RxLoop<M: WireMessage> {
    pub(crate) listener: TcpListener,
    pub(crate) to_driver: Sender<M>,
    pub(crate) metrics: Arc<LinkMetrics>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) trace: Option<TraceHandle>,
}

impl<M: WireMessage> RxLoop<M> {
    pub(crate) fn run(self) {
        let mut reasm = Reassembly::new();
        self.listener.set_nonblocking(true).expect("nonblocking listener");
        let mut readbuf = [0u8; 4096];
        'accept: while !self.shutdown.load(Ordering::Relaxed) {
            let mut stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
            let mut reader = FrameReader::new();
            loop {
                if self.shutdown.load(Ordering::Relaxed) {
                    break 'accept;
                }
                match stream.read(&mut readbuf) {
                    Ok(0) => continue 'accept, // sender closed; await redial
                    Ok(nread) => {
                        reader.extend(&readbuf[..nread]);
                        loop {
                            match reader.next_frame() {
                                Some(Ok(Frame { seq, kind: KIND_DATA, payload })) => {
                                    match reasm.offer(seq, payload) {
                                        Offer::Delivered(payloads) => {
                                            for p in payloads {
                                                match M::decode(&p) {
                                                    Some(m) => {
                                                        // The driver may have
                                                        // halted; late traffic
                                                        // is irrelevant then.
                                                        let _ = self.to_driver.send(m);
                                                    }
                                                    None => {
                                                        self.metrics
                                                            .frames_rejected
                                                            .fetch_add(1, Ordering::Relaxed);
                                                    }
                                                }
                                            }
                                        }
                                        Offer::Buffered => {
                                            if let Some((rec, trace, parent)) = &self.trace {
                                                rec.record_event(
                                                    *trace,
                                                    *parent,
                                                    Stage::Reassembly,
                                                    seq,
                                                    2,
                                                );
                                            }
                                        }
                                        Offer::Duplicate => {
                                            self.metrics
                                                .dup_frames_rx
                                                .fetch_add(1, Ordering::Relaxed);
                                            if let Some((rec, trace, parent)) = &self.trace {
                                                rec.record_event(
                                                    *trace,
                                                    *parent,
                                                    Stage::Reassembly,
                                                    seq,
                                                    1,
                                                );
                                            }
                                        }
                                    }
                                    let ack = encode_frame(reasm.cumulative_ack(), KIND_ACK, &[]);
                                    if stream.write_all(&ack).is_ok() {
                                        self.metrics.acks_sent.fetch_add(1, Ordering::Relaxed);
                                        self.metrics
                                            .bytes_on_wire
                                            .fetch_add(ack.len() as u64, Ordering::Relaxed);
                                    }
                                }
                                Some(Ok(_)) => {} // stray ACK: ignore
                                Some(Err(FrameError::BadLength)) => continue 'accept,
                                Some(Err(_)) => {
                                    self.metrics.frames_rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                None => break,
                            }
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => continue 'accept,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_core::AkMsg;
    use hre_runtime::NodeTransport;
    use hre_words::Label;

    /// Two processes' worth of endpoints in one test: A sends to B over
    /// a real TCP dial-back pair, with faults on A's egress.
    #[test]
    fn dial_back_pair_delivers_exactly_once_in_order() {
        let listener_b = TcpListener::bind("127.0.0.1:0").expect("bind b");
        let addr_b = listener_b.local_addr().expect("addr b");
        // A needs a listener too (unused ingress side in this test).
        let listener_a = TcpListener::bind("127.0.0.1:0").expect("bind a");

        let cfg = LinkConfig {
            faults: FaultPolicy { drop: 0.2, duplicate: 0.2, reorder: 0.1, ..FaultPolicy::NONE },
            fault_seed: 42,
            retransmit_timeout: Duration::from_millis(10),
            ..Default::default()
        };
        let (link_a, mut ta) = PeerLink::open::<AkMsg>(
            listener_a,
            addr_b,
            Arc::new(LinkMetrics::default()),
            Arc::new(LinkMetrics::default()),
            cfg,
            None,
        );
        let (link_b, mut tb) = PeerLink::open::<AkMsg>(
            listener_b,
            // B never sends in this test; a dead peer address is fine
            // because the TX thread only dials once it has traffic.
            "127.0.0.1:1".parse().unwrap(),
            Arc::new(LinkMetrics::default()),
            Arc::new(LinkMetrics::default()),
            LinkConfig::default(),
            None,
        );

        for i in 0..200u64 {
            ta.send(AkMsg::Token(Label::new(i))).expect("send");
        }
        for i in 0..200u64 {
            let got = tb.recv(Duration::from_secs(10)).expect("recv");
            assert_eq!(got, AkMsg::Token(Label::new(i)), "FIFO exactly-once order");
        }

        drop(ta);
        drop(tb);
        link_a.close_graceful(Duration::from_millis(50));
        link_b.close_now();
    }
}
