//! The socket runtime: one process per OS thread, one TCP connection per
//! ring link, the model's reliable FIFO exactly-once links recovered in
//! software.
//!
//! Per ring node `i` the runtime owns three threads:
//!
//! * the **driver** runs the unmodified guarded-action process through
//!   [`hre_runtime::drive_node`] — the very loop the channel runtime
//!   uses — against a [`NodeTransport`] whose endpoints are in-memory
//!   queues;
//! * the **TX thread** drains the outgoing queue, frames each message
//!   ([`crate::frame`]), pushes it through the fault injector
//!   ([`crate::fault`]), and writes it to a TCP connection dialed to the
//!   successor's listener — retransmitting on timeout until the
//!   successor's cumulative ACK covers it, reconnecting with capped
//!   exponential backoff whenever the connection dies;
//! * the **RX thread** accepts from the node's own listener, verifies
//!   checksums, reassembles exactly-once FIFO order
//!   ([`crate::reliable`]), acks, decodes ([`crate::wire`]), and feeds
//!   the incoming queue.
//!
//! Shutdown is two-phase: drivers finish on their own (halt, wedge, or
//! timeout — delivery must keep flowing for that, so nothing is torn
//! down early), then a shared flag retires the TX/RX threads.

use crate::fault::{FaultPolicy, LinkInjector, WireAction};
use crate::frame::{encode_frame, Frame, FrameError, FrameReader, KIND_ACK, KIND_DATA};
use crate::metrics::{LinkMetrics, NetSnapshot};
use crate::reliable::{Offer, Reassembly};
use crate::wire::WireMessage;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use hre_ring::RingLabeling;
use hre_runtime::trace::{FlightRecorder, SpanId, Stage, TraceId};
use hre_runtime::{drive_node, NodeTransport, RecvFault, SendFault, ThreadOutcome};
use hre_sim::{Algorithm, ElectionState, ProcessBehavior};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tick granularity of the TX polling loop.
const TICK: Duration = Duration::from_micros(500);
/// How long a reorder-stashed frame waits for a successor frame before
/// being flushed anyway.
const REORDER_HOLD: Duration = Duration::from_millis(2);
/// First reconnect backoff; doubles per failure up to [`BACKOFF_CAP`]
/// (the shared [`hre_runtime::Backoff`] policy).
const BACKOFF_START: Duration = Duration::from_millis(1);
/// Ceiling for the reconnect backoff.
const BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Options for a socket run.
#[derive(Clone, Copy, Debug)]
pub struct NetOptions {
    /// A driver that waits this long without a message gives up
    /// ([`ThreadOutcome::TimedOut`]).
    pub idle_timeout: Duration,
    /// Retransmission timeout: an unacked DATA frame is resent this long
    /// after its last transmission attempt.
    pub retransmit_timeout: Duration,
    /// After its driver halts, a TX thread lingers at most this long to
    /// drain unacknowledged frames before giving up.
    pub drain_deadline: Duration,
    /// Transport faults injected at every sender's egress.
    pub faults: FaultPolicy,
    /// Seed for the per-link fault schedules (links derive distinct
    /// streams from it).
    pub fault_seed: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            idle_timeout: Duration::from_secs(10),
            retransmit_timeout: Duration::from_millis(25),
            drain_deadline: Duration::from_secs(5),
            faults: FaultPolicy::NONE,
            fault_seed: 0,
        }
    }
}

/// Where a traced run reports its wire-level recovery events: the
/// flight recorder plus the trace and parent span the events attach to.
/// The transport stays zero-overhead when untraced ([`run_tcp`] passes
/// `None`), and `NetOptions` stays `Copy`.
pub type TraceHandle = (Arc<FlightRecorder>, TraceId, SpanId);

/// Result of one socket run. Mirrors
/// [`hre_runtime::ThreadedReport`] plus the transport ledger.
#[derive(Clone, Debug)]
pub struct NetReport {
    /// Final specification variables, per process.
    pub elections: Vec<ElectionState>,
    /// Per-driver outcome.
    pub outcomes: Vec<ThreadOutcome>,
    /// Total *logical* messages the processes sent (comparable to the
    /// simulator's and the channel runtime's message counts).
    pub messages: u64,
    /// Wall-clock duration including transport teardown.
    pub wall: Duration,
    /// What the wire did: frames, retries, bytes, reconnects, RTTs.
    pub net: NetSnapshot,
}

impl NetReport {
    /// Index of the unique leader, if there is exactly one.
    pub fn leader(&self) -> Option<usize> {
        let leaders: Vec<usize> = self
            .elections
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_leader)
            .map(|(i, _)| i)
            .collect();
        (leaders.len() == 1).then(|| leaders[0])
    }

    /// `true` iff every driver halted and the terminal states satisfy
    /// the leader-election specification's end conditions.
    pub fn clean(&self) -> bool {
        if !self.outcomes.iter().all(|o| *o == ThreadOutcome::Halted) {
            return false;
        }
        let Some(l) = self.leader() else { return false };
        let lid = self.elections[l].leader;
        lid.is_some() && self.elections.iter().all(|e| e.done && e.halted && e.leader == lid)
    }
}

/// The driver's two link endpoints: in-memory queues serviced by the TX
/// and RX threads.
struct TcpTransport<M> {
    to_tx: Sender<M>,
    from_rx: Receiver<M>,
}

impl<M> NodeTransport<M> for TcpTransport<M> {
    fn send(&mut self, msg: M) -> Result<(), SendFault> {
        // Unbounded queue: only fails if the TX thread died, which never
        // happens before the driver itself returns.
        self.to_tx.send(msg).map_err(|_| SendFault::Disconnected)
    }

    fn recv(&mut self, idle: Duration) -> Result<M, RecvFault> {
        match self.from_rx.recv_timeout(idle) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(RecvFault::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvFault::Disconnected),
        }
    }
}

/// One unacknowledged DATA frame in the sender's window.
struct TxEntry {
    bytes: Vec<u8>,
    attempts: u32,
    first_tx: Option<Instant>,
    next_due: Instant,
}

/// Sender side of one link.
struct TxLoop<M: WireMessage> {
    from_driver: Receiver<M>,
    peer: SocketAddr,
    metrics: Arc<LinkMetrics>,
    injector: LinkInjector,
    inject: bool,
    rto: Duration,
    drain_deadline: Duration,
    shutdown: Arc<AtomicBool>,
    trace: Option<TraceHandle>,
}

impl<M: WireMessage> TxLoop<M> {
    fn run(mut self) {
        let mut conn: Option<(TcpStream, FrameReader)> = None;
        let mut window: BTreeMap<u64, TxEntry> = BTreeMap::new();
        let mut delayq: Vec<(Instant, Vec<u8>)> = Vec::new();
        let mut stash: Option<(Instant, Vec<u8>)> = None;
        let mut next_seq: u64 = 0;
        let mut backoff = hre_runtime::Backoff::new(BACKOFF_START, BACKOFF_CAP);
        let mut connected_once = false;
        let mut driver_done: Option<Instant> = None;
        let mut readbuf = [0u8; 4096];

        loop {
            // When fully idle, block on the driver queue instead of
            // polling — a fresh message wakes the loop immediately, so
            // per-hop latency is bounded by the wire, not by a tick.
            let idle = window.is_empty() && delayq.is_empty() && stash.is_none();
            if driver_done.is_none() && idle {
                match self.from_driver.recv_timeout(TICK) {
                    Ok(m) => {
                        let now = Instant::now();
                        let mut payload = Vec::new();
                        m.encode(&mut payload);
                        let bytes = encode_frame(next_seq, KIND_DATA, &payload);
                        window.insert(
                            next_seq,
                            TxEntry { bytes, attempts: 0, first_tx: None, next_due: now },
                        );
                        next_seq += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => driver_done = Some(Instant::now()),
                }
            }
            let now = Instant::now();

            // Ingest whatever else the driver queued, without blocking.
            if driver_done.is_none() {
                loop {
                    match self.from_driver.try_recv() {
                        Ok(m) => {
                            let mut payload = Vec::new();
                            m.encode(&mut payload);
                            let bytes = encode_frame(next_seq, KIND_DATA, &payload);
                            window.insert(
                                next_seq,
                                TxEntry { bytes, attempts: 0, first_tx: None, next_due: now },
                            );
                            next_seq += 1;
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            driver_done = Some(now);
                            break;
                        }
                    }
                }
            }

            // Exit checks.
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if let Some(done_at) = driver_done {
                let drained = window.is_empty() && delayq.is_empty() && stash.is_none();
                if drained || now.duration_since(done_at) > self.drain_deadline {
                    return;
                }
            }

            // Ensure a connection exists (dial with capped backoff).
            if conn.is_none() && (!window.is_empty() || !delayq.is_empty() || stash.is_some()) {
                match TcpStream::connect(self.peer) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(Some(Duration::from_millis(1)));
                        let _ = s.set_write_timeout(Some(Duration::from_millis(250)));
                        if connected_once {
                            self.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        connected_once = true;
                        backoff.reset();
                        // Everything unacked replays on the new pipe.
                        for e in window.values_mut() {
                            e.next_due = now;
                        }
                        conn = Some((s, FrameReader::new()));
                    }
                    Err(_) => {
                        std::thread::sleep(backoff.advance());
                        continue;
                    }
                }
            }

            let mut io_failed = false;

            if let Some((stream, _)) = conn.as_mut() {
                // Injected delays whose hold time elapsed.
                let mut i = 0;
                while i < delayq.len() {
                    if delayq[i].0 <= now {
                        let (_, bytes) = delayq.swap_remove(i);
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                    } else {
                        i += 1;
                    }
                }

                // A reorder stash that waited long enough goes out as-is.
                if let Some((since, _)) = stash {
                    if now.duration_since(since) > REORDER_HOLD {
                        let (_, bytes) = stash.take().expect("stash checked");
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                    }
                }
            }

            // Transmit every window entry whose (re)send is due.
            let due: Vec<u64> =
                window.iter().filter(|(_, e)| e.next_due <= now).map(|(s, _)| *s).collect();
            for seq in due {
                if io_failed || conn.is_none() {
                    break;
                }
                let e = window.get_mut(&seq).expect("due seq in window");
                e.attempts += 1;
                if e.attempts == 1 {
                    e.first_tx = Some(now);
                    self.metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics.frames_retried.fetch_add(1, Ordering::Relaxed);
                    if let Some((rec, trace, parent)) = &self.trace {
                        rec.record_event(
                            *trace,
                            *parent,
                            Stage::Retransmit,
                            seq,
                            e.attempts as u64,
                        );
                    }
                }
                e.next_due = now + self.rto;
                let bytes = e.bytes.clone();
                let action = if self.inject { self.injector.roll() } else { WireAction::Deliver };
                if action != WireAction::Deliver {
                    self.metrics.faults_injected.fetch_add(1, Ordering::Relaxed);
                }
                let (stream, _) = conn.as_mut().expect("conn checked");
                match action {
                    WireAction::Deliver => {
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                        // A pending reorder stash ships right after its
                        // successor: the swap is complete.
                        if let Some((_, stashed)) = stash.take() {
                            io_failed |= !write_wire(stream, &stashed, &self.metrics);
                        }
                    }
                    WireAction::Drop => {}
                    WireAction::Duplicate => {
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                        io_failed |= !write_wire(stream, &bytes, &self.metrics);
                    }
                    WireAction::Reorder => {
                        if let Some((_, prev)) = stash.replace((now, bytes)) {
                            io_failed |= !write_wire(stream, &prev, &self.metrics);
                        }
                    }
                    WireAction::Delay(d) => delayq.push((now + d, bytes)),
                    WireAction::Reset => {
                        conn = None;
                        e.next_due = now; // replay immediately after redial
                    }
                }
            }

            // Read cumulative ACKs flowing back on the same connection.
            // Only worth blocking for while something is unacknowledged;
            // the 1 ms read timeout doubles as the loop's tick then.
            if !window.is_empty() {
                if let Some((stream, reader)) = conn.as_mut() {
                    match stream.read(&mut readbuf) {
                        Ok(0) => io_failed = true,
                        Ok(nread) => {
                            reader.extend(&readbuf[..nread]);
                            loop {
                                match reader.next_frame() {
                                    Some(Ok(Frame { seq: cum, kind: KIND_ACK, .. })) => {
                                        let acked_at = Instant::now();
                                        let acked: Vec<u64> =
                                            window.range(..cum).map(|(s, _)| *s).collect();
                                        for s in acked {
                                            let e = window.remove(&s).expect("acked seq in window");
                                            if e.attempts == 1 {
                                                if let Some(t0) = e.first_tx {
                                                    self.metrics
                                                        .record_rtt(acked_at.duration_since(t0));
                                                }
                                            }
                                        }
                                    }
                                    Some(Ok(_)) => {} // stray DATA: ignore
                                    Some(Err(FrameError::BadLength)) => {
                                        io_failed = true;
                                        break;
                                    }
                                    Some(Err(_)) => {
                                        self.metrics
                                            .frames_rejected
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                    None => break,
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => io_failed = true,
                    }
                }
            }

            if io_failed {
                conn = None;
            }
            // Pacing: the blocking points above (driver recv when fully
            // idle, ACK read while awaiting acks) bound the loop in the
            // common states; only a pending delay/reorder stash with an
            // empty window still needs an explicit nap.
            if window.is_empty() && !(delayq.is_empty() && stash.is_none()) {
                std::thread::sleep(TICK);
            }
        }
    }
}

/// Writes one frame; returns `false` on any I/O failure (the caller
/// reconnects; the window replays whatever was lost).
fn write_wire(stream: &mut TcpStream, bytes: &[u8], metrics: &LinkMetrics) -> bool {
    match stream.write_all(bytes) {
        Ok(()) => {
            metrics.bytes_on_wire.fetch_add(bytes.len() as u64, Ordering::Relaxed);
            true
        }
        Err(_) => false,
    }
}

/// Receiver side of one link: accept, verify, reassemble, ack, decode,
/// deliver. Reassembly state survives reconnects — exactly-once holds
/// across resets.
struct RxLoop<M: WireMessage> {
    listener: TcpListener,
    to_driver: Sender<M>,
    metrics: Arc<LinkMetrics>,
    shutdown: Arc<AtomicBool>,
    trace: Option<TraceHandle>,
}

impl<M: WireMessage> RxLoop<M> {
    fn run(self) {
        let mut reasm = Reassembly::new();
        self.listener.set_nonblocking(true).expect("nonblocking listener");
        let mut readbuf = [0u8; 4096];
        'accept: while !self.shutdown.load(Ordering::Relaxed) {
            let mut stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
            let mut reader = FrameReader::new();
            loop {
                if self.shutdown.load(Ordering::Relaxed) {
                    break 'accept;
                }
                match stream.read(&mut readbuf) {
                    Ok(0) => continue 'accept, // sender closed; await redial
                    Ok(nread) => {
                        reader.extend(&readbuf[..nread]);
                        loop {
                            match reader.next_frame() {
                                Some(Ok(Frame { seq, kind: KIND_DATA, payload })) => {
                                    match reasm.offer(seq, payload) {
                                        Offer::Delivered(payloads) => {
                                            for p in payloads {
                                                match M::decode(&p) {
                                                    Some(m) => {
                                                        // The driver may have
                                                        // halted; late traffic
                                                        // is irrelevant then.
                                                        let _ = self.to_driver.send(m);
                                                    }
                                                    None => {
                                                        self.metrics
                                                            .frames_rejected
                                                            .fetch_add(1, Ordering::Relaxed);
                                                    }
                                                }
                                            }
                                        }
                                        Offer::Buffered => {
                                            if let Some((rec, trace, parent)) = &self.trace {
                                                rec.record_event(
                                                    *trace,
                                                    *parent,
                                                    Stage::Reassembly,
                                                    seq,
                                                    2,
                                                );
                                            }
                                        }
                                        Offer::Duplicate => {
                                            self.metrics
                                                .dup_frames_rx
                                                .fetch_add(1, Ordering::Relaxed);
                                            if let Some((rec, trace, parent)) = &self.trace {
                                                rec.record_event(
                                                    *trace,
                                                    *parent,
                                                    Stage::Reassembly,
                                                    seq,
                                                    1,
                                                );
                                            }
                                        }
                                    }
                                    let ack = encode_frame(reasm.cumulative_ack(), KIND_ACK, &[]);
                                    if stream.write_all(&ack).is_ok() {
                                        self.metrics.acks_sent.fetch_add(1, Ordering::Relaxed);
                                        self.metrics
                                            .bytes_on_wire
                                            .fetch_add(ack.len() as u64, Ordering::Relaxed);
                                    }
                                }
                                Some(Ok(_)) => {} // stray ACK: ignore
                                Some(Err(FrameError::BadLength)) => continue 'accept,
                                Some(Err(_)) => {
                                    self.metrics.frames_rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                None => break,
                            }
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => continue 'accept,
                }
            }
        }
    }
}

/// Runs `algo` on `ring` over real TCP sockets on loopback.
///
/// Each link is recovered to the model's reliable FIFO exactly-once
/// semantics regardless of the fault policy in `opts`; the price paid
/// (retransmissions, reconnects, duplicate suppression) is itemized in
/// the returned [`NetSnapshot`].
pub fn run_tcp<A>(algo: &A, ring: &RingLabeling, opts: NetOptions) -> NetReport
where
    A: Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as ProcessBehavior>::Msg: WireMessage,
{
    run_tcp_traced(algo, ring, opts, None)
}

/// [`run_tcp`] with an optional flight-recorder attachment: every
/// wire-level recovery event (a retransmission, a duplicate suppressed,
/// a frame buffered out of order) lands in the recorder as an instant
/// event under the given trace and parent span, tagged with the frame's
/// sequence number. `None` is byte-for-byte the untraced run.
pub fn run_tcp_traced<A>(
    algo: &A,
    ring: &RingLabeling,
    opts: NetOptions,
    trace: Option<TraceHandle>,
) -> NetReport
where
    A: Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as ProcessBehavior>::Msg: WireMessage,
{
    let n = ring.n();
    let started = Instant::now();
    let shutdown = Arc::new(AtomicBool::new(false));

    // One listener per node, bound first so every peer address is known
    // before any thread starts.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        addrs.push(l.local_addr().expect("listener addr"));
        listeners.push(l);
    }

    // Link i carries messages from process i to process (i+1) % n; its
    // metrics are shared by i's TX thread and (i+1)'s RX thread.
    let links: Vec<Arc<LinkMetrics>> = (0..n).map(|_| Arc::new(LinkMetrics::default())).collect();

    let mut tx_handles = Vec::with_capacity(n);
    let mut rx_handles = Vec::with_capacity(n);
    let mut driver_handles = Vec::with_capacity(n);

    for (i, listener) in listeners.into_iter().enumerate() {
        let (to_tx, from_driver) = unbounded();
        let (to_driver, from_rx) = unbounded();

        let rx = RxLoop::<<A::Proc as ProcessBehavior>::Msg> {
            listener,
            to_driver,
            metrics: Arc::clone(&links[(i + n - 1) % n]),
            shutdown: Arc::clone(&shutdown),
            trace: trace.clone(),
        };
        rx_handles.push(std::thread::spawn(move || rx.run()));

        let tx = TxLoop::<<A::Proc as ProcessBehavior>::Msg> {
            from_driver,
            peer: addrs[(i + 1) % n],
            metrics: Arc::clone(&links[i]),
            injector: LinkInjector::new(
                opts.faults,
                opts.fault_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            inject: !opts.faults.is_none(),
            rto: opts.retransmit_timeout,
            drain_deadline: opts.drain_deadline,
            shutdown: Arc::clone(&shutdown),
            trace: trace.clone(),
        };
        tx_handles.push(std::thread::spawn(move || tx.run()));

        let mut proc = algo.spawn(ring.label(i));
        let idle = opts.idle_timeout;
        driver_handles.push(std::thread::spawn(move || {
            let mut transport = TcpTransport { to_tx, from_rx };
            let (outcome, sent) = drive_node(&mut proc, &mut transport, idle);
            // Dropping the transport disconnects the TX queue: the TX
            // thread drains its window, then retires.
            (proc, outcome, sent)
        }));
    }

    let mut elections = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut messages = 0u64;
    for h in driver_handles {
        let (proc, outcome, sent) = h.join().expect("driver thread panicked");
        elections.push(proc.election());
        outcomes.push(outcome);
        messages += sent;
    }

    // Every driver is done; nothing left needs delivery. Retire the wire.
    shutdown.store(true, Ordering::Relaxed);
    for h in tx_handles {
        h.join().expect("tx thread panicked");
    }
    for h in rx_handles {
        h.join().expect("rx thread panicked");
    }

    NetReport {
        elections,
        outcomes,
        messages,
        wall: started.elapsed(),
        net: NetSnapshot::collect(&links),
    }
}
