//! The socket runtime: one process per OS thread, one TCP connection per
//! ring link, the model's reliable FIFO exactly-once links recovered in
//! software.
//!
//! Per ring node `i` the runtime owns three threads:
//!
//! * the **driver** runs the unmodified guarded-action process through
//!   [`hre_runtime::drive_node`] — the very loop the channel runtime
//!   uses — against a [`hre_runtime::NodeTransport`] whose endpoints
//!   are in-memory queues;
//! * the **TX thread** drains the outgoing queue, frames each message
//!   ([`crate::frame`]), pushes it through the fault injector
//!   ([`crate::fault`]), and writes it to a TCP connection dialed to the
//!   successor's listener — retransmitting on timeout until the
//!   successor's cumulative ACK covers it, reconnecting with capped
//!   exponential backoff whenever the connection dies;
//! * the **RX thread** accepts from the node's own listener, verifies
//!   checksums, reassembles exactly-once FIFO order
//!   ([`crate::reliable`]), acks, decodes ([`crate::wire`]), and feeds
//!   the incoming queue.
//!
//! The TX/RX loops themselves live in [`crate::link`] — this module
//! instantiates one [`PeerLink`] pair per ring node, with every peer
//! address known up front because all listeners are bound in-process.
//! The control plane reuses the same endpoints across real processes.
//!
//! Shutdown is two-phase: drivers finish on their own (halt, wedge, or
//! timeout — delivery must keep flowing for that, so nothing is torn
//! down early), then each link is retired via [`PeerLink::close_now`].

use crate::fault::FaultPolicy;
use crate::link::{LinkConfig, PeerLink};
use crate::metrics::{LinkMetrics, NetSnapshot};
use crate::wire::WireMessage;
use hre_ring::RingLabeling;
use hre_runtime::{drive_node, ThreadOutcome};
use hre_sim::{Algorithm, ElectionState, ProcessBehavior};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::link::TraceHandle;

/// Options for a socket run.
#[derive(Clone, Copy, Debug)]
pub struct NetOptions {
    /// A driver that waits this long without a message gives up
    /// ([`ThreadOutcome::TimedOut`]).
    pub idle_timeout: Duration,
    /// Retransmission timeout: an unacked DATA frame is resent this long
    /// after its last transmission attempt.
    pub retransmit_timeout: Duration,
    /// After its driver halts, a TX thread lingers at most this long to
    /// drain unacknowledged frames before giving up.
    pub drain_deadline: Duration,
    /// Transport faults injected at every sender's egress.
    pub faults: FaultPolicy,
    /// Seed for the per-link fault schedules (links derive distinct
    /// streams from it).
    pub fault_seed: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            idle_timeout: Duration::from_secs(10),
            retransmit_timeout: Duration::from_millis(25),
            drain_deadline: Duration::from_secs(5),
            faults: FaultPolicy::NONE,
            fault_seed: 0,
        }
    }
}

/// Result of one socket run. Mirrors
/// [`hre_runtime::ThreadedReport`] plus the transport ledger.
#[derive(Clone, Debug)]
pub struct NetReport {
    /// Final specification variables, per process.
    pub elections: Vec<ElectionState>,
    /// Per-driver outcome.
    pub outcomes: Vec<ThreadOutcome>,
    /// Total *logical* messages the processes sent (comparable to the
    /// simulator's and the channel runtime's message counts).
    pub messages: u64,
    /// Wall-clock duration including transport teardown.
    pub wall: Duration,
    /// What the wire did: frames, retries, bytes, reconnects, RTTs.
    pub net: NetSnapshot,
}

impl NetReport {
    /// Index of the unique leader, if there is exactly one.
    pub fn leader(&self) -> Option<usize> {
        let leaders: Vec<usize> = self
            .elections
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_leader)
            .map(|(i, _)| i)
            .collect();
        (leaders.len() == 1).then(|| leaders[0])
    }

    /// `true` iff every driver halted and the terminal states satisfy
    /// the leader-election specification's end conditions.
    pub fn clean(&self) -> bool {
        if !self.outcomes.iter().all(|o| *o == ThreadOutcome::Halted) {
            return false;
        }
        let Some(l) = self.leader() else { return false };
        let lid = self.elections[l].leader;
        lid.is_some() && self.elections.iter().all(|e| e.done && e.halted && e.leader == lid)
    }
}

/// Runs `algo` on `ring` over real TCP sockets on loopback.
///
/// Each link is recovered to the model's reliable FIFO exactly-once
/// semantics regardless of the fault policy in `opts`; the price paid
/// (retransmissions, reconnects, duplicate suppression) is itemized in
/// the returned [`NetSnapshot`].
pub fn run_tcp<A>(algo: &A, ring: &RingLabeling, opts: NetOptions) -> NetReport
where
    A: Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as ProcessBehavior>::Msg: WireMessage,
{
    run_tcp_traced(algo, ring, opts, None)
}

/// [`run_tcp`] with an optional flight-recorder attachment: every
/// wire-level recovery event (a retransmission, a duplicate suppressed,
/// a frame buffered out of order) lands in the recorder as an instant
/// event under the given trace and parent span, tagged with the frame's
/// sequence number. `None` is byte-for-byte the untraced run.
pub fn run_tcp_traced<A>(
    algo: &A,
    ring: &RingLabeling,
    opts: NetOptions,
    trace: Option<TraceHandle>,
) -> NetReport
where
    A: Algorithm,
    A::Proc: Send + 'static,
    <A::Proc as ProcessBehavior>::Msg: WireMessage,
{
    let n = ring.n();
    let started = Instant::now();

    // One listener per node, bound first so every peer address is known
    // before any thread starts.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        addrs.push(l.local_addr().expect("listener addr"));
        listeners.push(l);
    }

    // Link i carries messages from process i to process (i+1) % n; its
    // metrics are shared by i's TX thread and (i+1)'s RX thread.
    let links: Vec<Arc<LinkMetrics>> = (0..n).map(|_| Arc::new(LinkMetrics::default())).collect();

    let mut link_handles = Vec::with_capacity(n);
    let mut driver_handles = Vec::with_capacity(n);

    for (i, listener) in listeners.into_iter().enumerate() {
        let cfg = LinkConfig {
            retransmit_timeout: opts.retransmit_timeout,
            drain_deadline: opts.drain_deadline,
            faults: opts.faults,
            fault_seed: opts.fault_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let (link, mut transport) = PeerLink::open::<<A::Proc as ProcessBehavior>::Msg>(
            listener,
            addrs[(i + 1) % n],
            Arc::clone(&links[i]),
            Arc::clone(&links[(i + n - 1) % n]),
            cfg,
            trace.clone(),
        );
        link_handles.push(link);

        let mut proc = algo.spawn(ring.label(i));
        let idle = opts.idle_timeout;
        driver_handles.push(std::thread::spawn(move || {
            let (outcome, sent) = drive_node(&mut proc, &mut transport, idle);
            // Dropping the transport disconnects the TX queue: the TX
            // thread drains its window, then retires.
            (proc, outcome, sent)
        }));
    }

    let mut elections = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut messages = 0u64;
    for h in driver_handles {
        let (proc, outcome, sent) = h.join().expect("driver thread panicked");
        elections.push(proc.election());
        outcomes.push(outcome);
        messages += sent;
    }

    // Every driver is done; nothing left needs delivery. Retire the wire.
    for link in link_handles {
        link.close_now();
    }

    NetReport {
        elections,
        outcomes,
        messages,
        wall: started.elapsed(),
        net: NetSnapshot::collect(&links),
    }
}
