//! Transport-level metrics: what the wire actually did.
//!
//! The simulator's [`hre_sim::RunMetrics`] counts *logical* messages —
//! the quantity the paper bounds. This module counts the physical cost
//! of recovering the paper's link assumptions over a faulty wire:
//! frames (including retransmissions and duplicates), bytes, reconnects,
//! and round-trip times. Comparing the two layers is the point of the
//! `exp_net` experiment.
//!
//! All counters are lock-free atomics so the TX and RX threads of a link
//! never contend; the RTT histogram uses power-of-two microsecond
//! buckets, each an atomic counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ RTT buckets; bucket `i` covers `[2^i, 2^(i+1))` µs,
/// with the last bucket absorbing everything larger.
pub const RTT_BUCKETS: usize = 24;

/// Live counters for one directed link (writer side and reader side
/// update disjoint fields).
#[derive(Debug, Default)]
pub struct LinkMetrics {
    /// DATA frames written to the socket (first transmissions only).
    pub frames_sent: AtomicU64,
    /// DATA frame transmission attempts beyond the first for a sequence
    /// number — the retransmission/recovery traffic.
    pub frames_retried: AtomicU64,
    /// Bytes actually written to the socket, frames and acks alike.
    pub bytes_on_wire: AtomicU64,
    /// Successful (re)connections beyond the first.
    pub reconnects: AtomicU64,
    /// ACK frames written by the receiver.
    pub acks_sent: AtomicU64,
    /// DATA frames the receiver recognized as duplicates and dropped.
    pub dup_frames_rx: AtomicU64,
    /// Frames rejected for a bad checksum or unknown kind.
    pub frames_rejected: AtomicU64,
    /// Fault-injector actions other than `Deliver`.
    pub faults_injected: AtomicU64,
    rtt_count: AtomicU64,
    rtt_sum_us: AtomicU64,
    rtt_hist: [AtomicU64; RTT_BUCKETS],
}

impl LinkMetrics {
    /// Records one clean (never-retransmitted) round-trip sample,
    /// following Karn's rule: ambiguous samples from retransmitted
    /// frames are excluded.
    pub fn record_rtt(&self, rtt: Duration) {
        let us = rtt.as_micros().min(u64::MAX as u128) as u64;
        self.rtt_count.fetch_add(1, Ordering::Relaxed);
        self.rtt_sum_us.fetch_add(us, Ordering::Relaxed);
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(RTT_BUCKETS - 1);
        self.rtt_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LinkSnapshot {
        let mut hist = [0u64; RTT_BUCKETS];
        for (o, b) in hist.iter_mut().zip(self.rtt_hist.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        LinkSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_retried: self.frames_retried.load(Ordering::Relaxed),
            bytes_on_wire: self.bytes_on_wire.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            dup_frames_rx: self.dup_frames_rx.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            rtt_count: self.rtt_count.load(Ordering::Relaxed),
            rtt_sum_us: self.rtt_sum_us.load(Ordering::Relaxed),
            rtt_hist: hist,
        }
    }
}

/// Frozen counters of one link at the end of a run.
#[derive(Clone, Debug, Default)]
pub struct LinkSnapshot {
    /// See [`LinkMetrics::frames_sent`].
    pub frames_sent: u64,
    /// See [`LinkMetrics::frames_retried`].
    pub frames_retried: u64,
    /// See [`LinkMetrics::bytes_on_wire`].
    pub bytes_on_wire: u64,
    /// See [`LinkMetrics::reconnects`].
    pub reconnects: u64,
    /// See [`LinkMetrics::acks_sent`].
    pub acks_sent: u64,
    /// See [`LinkMetrics::dup_frames_rx`].
    pub dup_frames_rx: u64,
    /// See [`LinkMetrics::frames_rejected`].
    pub frames_rejected: u64,
    /// See [`LinkMetrics::faults_injected`].
    pub faults_injected: u64,
    /// Clean RTT samples taken (Karn's rule: retransmitted frames
    /// contribute none).
    pub rtt_count: u64,
    /// Sum of those samples in microseconds.
    pub rtt_sum_us: u64,
    /// Log₂-µs histogram of those samples.
    pub rtt_hist: [u64; RTT_BUCKETS],
}

impl LinkSnapshot {
    /// Mean RTT over clean samples, if any were taken.
    pub fn rtt_mean(&self) -> Option<Duration> {
        (self.rtt_count > 0).then(|| Duration::from_micros(self.rtt_sum_us / self.rtt_count))
    }

    fn add(&mut self, other: &LinkSnapshot) {
        self.frames_sent += other.frames_sent;
        self.frames_retried += other.frames_retried;
        self.bytes_on_wire += other.bytes_on_wire;
        self.reconnects += other.reconnects;
        self.acks_sent += other.acks_sent;
        self.dup_frames_rx += other.dup_frames_rx;
        self.frames_rejected += other.frames_rejected;
        self.faults_injected += other.faults_injected;
        self.rtt_count += other.rtt_count;
        self.rtt_sum_us += other.rtt_sum_us;
        for (o, b) in self.rtt_hist.iter_mut().zip(other.rtt_hist.iter()) {
            *o += b;
        }
    }
}

/// All transport metrics of one run: per-link and aggregated.
#[derive(Clone, Debug, Default)]
pub struct NetSnapshot {
    /// Link `i` carries messages from process `i` to process `i+1 mod n`.
    pub links: Vec<LinkSnapshot>,
    /// Sum over all links.
    pub total: LinkSnapshot,
}

impl NetSnapshot {
    /// Freezes the live per-link metrics.
    pub fn collect(links: &[std::sync::Arc<LinkMetrics>]) -> NetSnapshot {
        let links: Vec<LinkSnapshot> = links.iter().map(|l| l.snapshot()).collect();
        let mut total = LinkSnapshot::default();
        for l in &links {
            total.add(l);
        }
        NetSnapshot { links, total }
    }

    /// Compact human-readable RTT histogram of the aggregate, listing
    /// only occupied buckets.
    pub fn rtt_histogram_pretty(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.total.rtt_hist.iter().enumerate() {
            if c > 0 {
                let lo = 1u64 << i;
                out.push_str(&format!("    [{:>7}µs, {:>7}µs): {}\n", lo, lo << 1, c));
            }
        }
        if out.is_empty() {
            out.push_str("    (no clean samples)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rtt_lands_in_log2_bucket() {
        let m = LinkMetrics::default();
        m.record_rtt(Duration::from_micros(5)); // bucket 2: [4, 8)
        m.record_rtt(Duration::from_micros(1000)); // bucket 9: [512, 1024)
        let s = m.snapshot();
        assert_eq!(s.rtt_hist[2], 1);
        assert_eq!(s.rtt_hist[9], 1);
        assert_eq!(s.rtt_count, 2);
        assert_eq!(s.rtt_mean(), Some(Duration::from_micros(502)));
    }

    #[test]
    fn totals_sum_links() {
        let a = Arc::new(LinkMetrics::default());
        let b = Arc::new(LinkMetrics::default());
        a.frames_sent.fetch_add(3, Ordering::Relaxed);
        b.frames_sent.fetch_add(4, Ordering::Relaxed);
        b.reconnects.fetch_add(1, Ordering::Relaxed);
        let snap = NetSnapshot::collect(&[a, b]);
        assert_eq!(snap.total.frames_sent, 7);
        assert_eq!(snap.total.reconnects, 1);
        assert_eq!(snap.links[0].frames_sent, 3);
    }
}
