//! Transport-level metrics: what the wire actually did.
//!
//! The simulator's [`hre_sim::RunMetrics`] counts *logical* messages —
//! the quantity the paper bounds. This module counts the physical cost
//! of recovering the paper's link assumptions over a faulty wire:
//! frames (including retransmissions and duplicates), bytes, reconnects,
//! and round-trip times. Comparing the two layers is the point of the
//! `exp_net` experiment.
//!
//! All counters are lock-free atomics so the TX and RX threads of a link
//! never contend; the RTT histogram is the shared
//! [`hre_runtime::Log2Histogram`] (power-of-two microsecond buckets),
//! the same type the election service uses for request latency.
//!
//! Naming-audit note: nothing in this module is exported in Prometheus
//! text form — these are in-process counters consumed by `exp_net` and
//! the CLI. If any series here ever gains a `/metrics` exposition, it
//! must follow the workspace conventions established in `hre-svc` and
//! `hre-cluster`: `hre_net_` prefix, `_total` counter suffix, and base
//! units with a unit suffix (`_seconds`, `_bytes`).

use hre_runtime::{HistSnapshot, Log2Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ RTT buckets (re-exported from the shared histogram).
pub const RTT_BUCKETS: usize = hre_runtime::LOG2_BUCKETS;

/// Live counters for one directed link (writer side and reader side
/// update disjoint fields).
#[derive(Debug, Default)]
pub struct LinkMetrics {
    /// DATA frames written to the socket (first transmissions only).
    pub frames_sent: AtomicU64,
    /// DATA frame transmission attempts beyond the first for a sequence
    /// number — the retransmission/recovery traffic.
    pub frames_retried: AtomicU64,
    /// Bytes actually written to the socket, frames and acks alike.
    pub bytes_on_wire: AtomicU64,
    /// Successful (re)connections beyond the first.
    pub reconnects: AtomicU64,
    /// ACK frames written by the receiver.
    pub acks_sent: AtomicU64,
    /// DATA frames the receiver recognized as duplicates and dropped.
    pub dup_frames_rx: AtomicU64,
    /// Frames rejected for a bad checksum or unknown kind.
    pub frames_rejected: AtomicU64,
    /// Fault-injector actions other than `Deliver`.
    pub faults_injected: AtomicU64,
    rtt: Log2Histogram,
}

impl LinkMetrics {
    /// Records one clean (never-retransmitted) round-trip sample,
    /// following Karn's rule: ambiguous samples from retransmitted
    /// frames are excluded.
    pub fn record_rtt(&self, rtt: Duration) {
        self.rtt.record(rtt);
    }

    fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_retried: self.frames_retried.load(Ordering::Relaxed),
            bytes_on_wire: self.bytes_on_wire.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            dup_frames_rx: self.dup_frames_rx.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            rtt: self.rtt.snapshot(),
        }
    }
}

/// Frozen counters of one link at the end of a run.
#[derive(Clone, Debug, Default)]
pub struct LinkSnapshot {
    /// See [`LinkMetrics::frames_sent`].
    pub frames_sent: u64,
    /// See [`LinkMetrics::frames_retried`].
    pub frames_retried: u64,
    /// See [`LinkMetrics::bytes_on_wire`].
    pub bytes_on_wire: u64,
    /// See [`LinkMetrics::reconnects`].
    pub reconnects: u64,
    /// See [`LinkMetrics::acks_sent`].
    pub acks_sent: u64,
    /// See [`LinkMetrics::dup_frames_rx`].
    pub dup_frames_rx: u64,
    /// See [`LinkMetrics::frames_rejected`].
    pub frames_rejected: u64,
    /// See [`LinkMetrics::faults_injected`].
    pub faults_injected: u64,
    /// Clean RTT samples (Karn's rule: retransmitted frames contribute
    /// none), as a frozen log₂-µs histogram.
    pub rtt: HistSnapshot,
}

impl LinkSnapshot {
    /// Mean RTT over clean samples, if any were taken.
    pub fn rtt_mean(&self) -> Option<Duration> {
        self.rtt.mean()
    }

    fn add(&mut self, other: &LinkSnapshot) {
        self.frames_sent += other.frames_sent;
        self.frames_retried += other.frames_retried;
        self.bytes_on_wire += other.bytes_on_wire;
        self.reconnects += other.reconnects;
        self.acks_sent += other.acks_sent;
        self.dup_frames_rx += other.dup_frames_rx;
        self.frames_rejected += other.frames_rejected;
        self.faults_injected += other.faults_injected;
        self.rtt.add(&other.rtt);
    }
}

/// All transport metrics of one run: per-link and aggregated.
#[derive(Clone, Debug, Default)]
pub struct NetSnapshot {
    /// Link `i` carries messages from process `i` to process `i+1 mod n`.
    pub links: Vec<LinkSnapshot>,
    /// Sum over all links.
    pub total: LinkSnapshot,
}

impl NetSnapshot {
    /// Freezes the live per-link metrics.
    pub fn collect(links: &[std::sync::Arc<LinkMetrics>]) -> NetSnapshot {
        let links: Vec<LinkSnapshot> = links.iter().map(|l| l.snapshot()).collect();
        let mut total = LinkSnapshot::default();
        for l in &links {
            total.add(l);
        }
        NetSnapshot { links, total }
    }

    /// Compact human-readable RTT histogram of the aggregate, listing
    /// only occupied buckets.
    pub fn rtt_histogram_pretty(&self) -> String {
        if self.total.rtt.count == 0 {
            return "    (no clean samples)\n".into();
        }
        self.total.rtt.pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rtt_lands_in_log2_bucket() {
        let m = LinkMetrics::default();
        m.record_rtt(Duration::from_micros(5)); // bucket 2: [4, 8)
        m.record_rtt(Duration::from_micros(1000)); // bucket 9: [512, 1024)
        let s = m.snapshot();
        assert_eq!(s.rtt.buckets[2], 1);
        assert_eq!(s.rtt.buckets[9], 1);
        assert_eq!(s.rtt.count, 2);
        assert_eq!(s.rtt_mean(), Some(Duration::from_micros(502)));
    }

    #[test]
    fn totals_sum_links() {
        let a = Arc::new(LinkMetrics::default());
        let b = Arc::new(LinkMetrics::default());
        a.frames_sent.fetch_add(3, Ordering::Relaxed);
        b.frames_sent.fetch_add(4, Ordering::Relaxed);
        b.reconnects.fetch_add(1, Ordering::Relaxed);
        a.record_rtt(Duration::from_micros(10));
        b.record_rtt(Duration::from_micros(20));
        let snap = NetSnapshot::collect(&[a, b]);
        assert_eq!(snap.total.frames_sent, 7);
        assert_eq!(snap.total.reconnects, 1);
        assert_eq!(snap.links[0].frames_sent, 3);
        assert_eq!(snap.total.rtt.count, 2);
        assert!(snap.rtt_histogram_pretty().contains("µs"));
    }
}
