//! # hre-net — the algorithms on real TCP sockets
//!
//! The fourth execution substrate of the reproduction, after the
//! discrete-event simulator (`hre-sim`), the exhaustive explorer, and
//! the in-process channel runtime (`hre-runtime`): the same unmodified
//! [`hre_sim::ProcessBehavior`] implementations, one OS thread per ring
//! process, with each directed ring link realized as a **TCP connection
//! on loopback**.
//!
//! The paper's model assumes links that are reliable, FIFO, and
//! exactly-once. A raw socket under the deterministic fault injector is
//! none of those — frames are dropped, duplicated, reordered, delayed,
//! and whole connections are reset. The transport recovers the model's
//! guarantees in software, the same way real deployments would:
//!
//! | model assumption | wire reality | recovery mechanism |
//! |---|---|---|
//! | reliable delivery | frames dropped, connections reset | per-frame CRC, cumulative ACKs, retransmission timer, redial with capped backoff |
//! | FIFO order | frames reordered or delayed | per-link sequence numbers + reorder buffer ([`Reassembly`]) |
//! | exactly-once | frames duplicated, retransmits replayed | receive cursor + duplicate suppression |
//!
//! Because recovery is total, the election outcome over the faulty wire
//! is *identical* to the simulator's — that is the tentpole claim the
//! `exp_net` experiment and the integration tests check — while the
//! price paid (retransmissions, reconnects, RTT) is itemized in
//! [`NetSnapshot`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod link;
pub mod metrics;
pub mod node;
pub mod reliable;
pub mod wire;

pub use fault::{FaultPolicy, LinkInjector, WireAction};
pub use frame::{crc32, encode_frame, Frame, FrameError, FrameReader, KIND_ACK, KIND_DATA};
pub use link::{LinkConfig, LinkTransport, PeerLink};
pub use metrics::{LinkMetrics, LinkSnapshot, NetSnapshot, RTT_BUCKETS};
pub use node::{run_tcp, run_tcp_traced, NetOptions, NetReport, TraceHandle};
pub use reliable::{Offer, Reassembly};
pub use wire::WireMessage;
