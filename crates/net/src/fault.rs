//! Deterministic transport-fault injection.
//!
//! The injector sits at a sender's egress, between the retransmission
//! window and the socket: every time a DATA frame is about to be written,
//! the link's seeded RNG rolls once and the frame is delivered, dropped,
//! duplicated, stashed for reordering, delayed, or the whole connection
//! is torn down. Faults apply to **transmission attempts**, not to
//! sequence numbers — a retransmission of a previously dropped frame gets
//! a fresh roll, so with any drop probability below 1 every message is
//! eventually delivered and termination is preserved almost surely.
//!
//! The same seed and policy always produce the same fault schedule on a
//! given link, which is what lets the E13 ablation and the integration
//! tests make exact claims about recovery.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// Per-link fault probabilities and parameters. All probabilities are
/// independent per transmission attempt, checked in the order
/// reset → drop → duplicate → reorder → delay.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Probability a frame vanishes on the wire.
    pub drop: f64,
    /// Probability a frame is written twice back-to-back.
    pub duplicate: f64,
    /// Probability a frame is held back and swapped with the next one.
    pub reorder: f64,
    /// Probability a frame is parked and written only after [`Self::max_delay`]
    /// (sampled uniformly up to it).
    pub delay: f64,
    /// Upper bound for an injected delay.
    pub max_delay: Duration,
    /// Force exactly one connection reset after this many transmission
    /// attempts on the link (`None` = never).
    pub reset_after: Option<u64>,
}

impl FaultPolicy {
    /// No faults at all; the injector becomes a pass-through.
    pub const NONE: FaultPolicy = FaultPolicy {
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        delay: 0.0,
        max_delay: Duration::from_millis(0),
        reset_after: None,
    };

    /// The ISSUE acceptance mix: 20 % drop, light duplication and
    /// reordering, occasional short delays, and one forced connection
    /// reset per link early in the run.
    pub fn stress() -> FaultPolicy {
        FaultPolicy {
            drop: 0.20,
            duplicate: 0.05,
            reorder: 0.05,
            delay: 0.05,
            max_delay: Duration::from_millis(5),
            reset_after: Some(3),
        }
    }

    /// `true` iff every fault class is disabled.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay == 0.0
            && self.reset_after.is_none()
    }
}

/// What the wire does to one transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireAction {
    /// Write the frame normally.
    Deliver,
    /// Pretend the frame was written, but don't — the retransmission
    /// timer recovers it.
    Drop,
    /// Write the frame twice.
    Duplicate,
    /// Hold the frame back and write it after the next frame (or after a
    /// short grace period if no successor shows up).
    Reorder,
    /// Park the frame and write it once the duration elapses.
    Delay(Duration),
    /// Tear the connection down; everything unacknowledged replays after
    /// the reconnect.
    Reset,
}

/// Seeded per-link fault source.
#[derive(Debug)]
pub struct LinkInjector {
    policy: FaultPolicy,
    rng: StdRng,
    attempts: u64,
    reset_fired: bool,
}

impl LinkInjector {
    /// A deterministic injector for one link. Distinct links should get
    /// distinct seeds (the runtime derives them from a run seed and the
    /// link index).
    pub fn new(policy: FaultPolicy, seed: u64) -> Self {
        LinkInjector { policy, rng: StdRng::seed_from_u64(seed), attempts: 0, reset_fired: false }
    }

    /// Rolls the fate of one transmission attempt.
    pub fn roll(&mut self) -> WireAction {
        self.attempts += 1;
        if let Some(at) = self.policy.reset_after {
            if !self.reset_fired && self.attempts > at {
                self.reset_fired = true;
                return WireAction::Reset;
            }
        }
        if self.policy.drop > 0.0 && self.rng.gen_bool(self.policy.drop) {
            return WireAction::Drop;
        }
        if self.policy.duplicate > 0.0 && self.rng.gen_bool(self.policy.duplicate) {
            return WireAction::Duplicate;
        }
        if self.policy.reorder > 0.0 && self.rng.gen_bool(self.policy.reorder) {
            return WireAction::Reorder;
        }
        if self.policy.delay > 0.0 && self.rng.gen_bool(self.policy.delay) {
            let cap = self.policy.max_delay.as_micros().max(1) as u64;
            return WireAction::Delay(Duration::from_micros(self.rng.gen_range(0..cap)));
        }
        WireAction::Deliver
    }

    /// Transmission attempts rolled so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_through_when_disabled() {
        let mut inj = LinkInjector::new(FaultPolicy::NONE, 1);
        for _ in 0..100 {
            assert_eq!(inj.roll(), WireAction::Deliver);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = LinkInjector::new(FaultPolicy::stress(), 42);
        let mut b = LinkInjector::new(FaultPolicy::stress(), 42);
        let fa: Vec<_> = (0..200).map(|_| a.roll()).collect();
        let fb: Vec<_> = (0..200).map(|_| b.roll()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn reset_fires_exactly_once() {
        let mut inj =
            LinkInjector::new(FaultPolicy { reset_after: Some(2), ..FaultPolicy::NONE }, 7);
        let rolls: Vec<_> = (0..50).map(|_| inj.roll()).collect();
        assert_eq!(rolls.iter().filter(|a| **a == WireAction::Reset).count(), 1);
        assert_eq!(rolls[2], WireAction::Reset);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut inj = LinkInjector::new(FaultPolicy { drop: 0.2, ..FaultPolicy::NONE }, 99);
        let drops = (0..10_000).filter(|_| inj.roll() == WireAction::Drop).count();
        assert!((1_500..2_500).contains(&drops), "drops = {drops}");
    }
}
