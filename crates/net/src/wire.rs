//! Byte codecs for the algorithms' message alphabets.
//!
//! Every ring algorithm keeps its own message enum; the socket runtime
//! needs each of them as bytes inside a DATA frame. [`WireMessage`] is
//! implemented here — not in the algorithm crates — so the algorithms
//! stay wire-agnostic, exactly as they are simulator-agnostic.
//!
//! Encodings are tag-byte + big-endian fields. A decoder returns `None`
//! on any malformed input (unknown tag, wrong length); the runtime
//! counts such frames as rejected and drops them, leaving recovery to
//! retransmission.

use hre_baselines::{CrMsg, OracleMsg, PetersonMsg};
use hre_core::{AkMsg, BkMsg};
use hre_words::Label;

/// A message that can cross a socket: encode to bytes, decode back.
///
/// Implementations must round-trip: `decode(encode(m)) == Some(m)`.
pub trait WireMessage: Sized + Send + 'static {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Parses one message from exactly `bytes`; `None` if malformed.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

fn put_label(buf: &mut Vec<u8>, l: Label) {
    buf.extend_from_slice(&l.raw().to_be_bytes());
}

fn get_label(bytes: &[u8]) -> Option<Label> {
    Some(Label::new(u64::from_be_bytes(bytes.try_into().ok()?)))
}

impl WireMessage for AkMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AkMsg::Token(x) => {
                buf.push(0);
                put_label(buf, *x);
            }
            AkMsg::Finish => buf.push(1),
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes.split_first()? {
            (0, rest) => Some(AkMsg::Token(get_label(rest)?)),
            (1, []) => Some(AkMsg::Finish),
            _ => None,
        }
    }
}

impl WireMessage for BkMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (tag, x) = match self {
            BkMsg::Token(x) => (0, x),
            BkMsg::PhaseShift(x) => (1, x),
            BkMsg::Finish(x) => (2, x),
        };
        buf.push(tag);
        put_label(buf, *x);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (tag, rest) = bytes.split_first()?;
        let x = get_label(rest)?;
        match tag {
            0 => Some(BkMsg::Token(x)),
            1 => Some(BkMsg::PhaseShift(x)),
            2 => Some(BkMsg::Finish(x)),
            _ => None,
        }
    }
}

impl WireMessage for CrMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (tag, x) = match self {
            CrMsg::Cand(x) => (0, x),
            CrMsg::Finish(x) => (1, x),
        };
        buf.push(tag);
        put_label(buf, *x);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (tag, rest) = bytes.split_first()?;
        let x = get_label(rest)?;
        match tag {
            0 => Some(CrMsg::Cand(x)),
            1 => Some(CrMsg::Finish(x)),
            _ => None,
        }
    }
}

impl WireMessage for PetersonMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (tag, x) = match self {
            PetersonMsg::Cand(x) => (0, x),
            PetersonMsg::Finish(x) => (1, x),
        };
        buf.push(tag);
        put_label(buf, *x);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (tag, rest) = bytes.split_first()?;
        let x = get_label(rest)?;
        match tag {
            0 => Some(PetersonMsg::Cand(x)),
            1 => Some(PetersonMsg::Finish(x)),
            _ => None,
        }
    }
}

impl WireMessage for OracleMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OracleMsg::Token(x, hops) => {
                buf.push(0);
                put_label(buf, *x);
                buf.extend_from_slice(&hops.to_be_bytes());
            }
            OracleMsg::Finish(x) => {
                buf.push(1);
                put_label(buf, *x);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes.split_first()? {
            (0, rest) if rest.len() == 12 => {
                let x = get_label(&rest[..8])?;
                let hops = u32::from_be_bytes(rest[8..].try_into().ok()?);
                Some(OracleMsg::Token(x, hops))
            }
            (1, rest) => Some(OracleMsg::Finish(get_label(rest)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<M: WireMessage + PartialEq + std::fmt::Debug>(m: M) {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert_eq!(M::decode(&buf), Some(m));
    }

    #[test]
    fn all_variants_roundtrip() {
        let l = Label::new(0xDEAD_BEEF_u64);
        rt(AkMsg::Token(l));
        rt(AkMsg::Finish);
        rt(BkMsg::Token(l));
        rt(BkMsg::PhaseShift(l));
        rt(BkMsg::Finish(l));
        rt(CrMsg::Cand(l));
        rt(CrMsg::Finish(l));
        rt(PetersonMsg::Cand(l));
        rt(PetersonMsg::Finish(l));
        rt(OracleMsg::Token(l, 31));
        rt(OracleMsg::Finish(l));
    }

    #[test]
    fn malformed_is_rejected_not_misparsed() {
        assert_eq!(AkMsg::decode(&[]), None);
        assert_eq!(AkMsg::decode(&[0, 1, 2]), None); // short label
        assert_eq!(AkMsg::decode(&[1, 0]), None); // trailing junk on Finish
        assert_eq!(AkMsg::decode(&[7]), None); // unknown tag
        assert_eq!(BkMsg::decode(&[3, 0, 0, 0, 0, 0, 0, 0, 1]), None);
        assert_eq!(OracleMsg::decode(&[0, 0, 0, 0, 0, 0, 0, 0, 1]), None); // missing hops
    }
}
