//! End-to-end cluster tests: real `hre-svc` backends on ephemeral ports
//! behind a real router, talking over TCP.
//!
//! Covered here: rotation-affinity routing (all rotations of a ring are
//! answered by one backend, byte-identically to a direct backend call),
//! breaker-driven failover when a backend dies mid-traffic, hedged
//! retries when a backend stalls, and the `/cluster` + `/metrics`
//! observability surfaces.

use hre_cluster::{start, ClusterConfig};
use hre_svc::{start as start_svc, Client, ServerHandle, SvcConfig};
use std::time::Duration;

/// Spins up `n` default-ish backends; returns their handles + addrs.
fn backends(n: usize, cfg: SvcConfig) -> (Vec<ServerHandle>, Vec<String>) {
    let handles: Vec<ServerHandle> =
        (0..n).map(|_| start_svc(cfg.clone()).expect("backend")).collect();
    let addrs = handles.iter().map(|h| h.addr.to_string()).collect();
    (handles, addrs)
}

fn client(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(5)).expect("connect")
}

/// A few structurally distinct rings (different canonical classes).
fn rings() -> Vec<Vec<u64>> {
    vec![
        vec![1, 3, 1, 3, 2, 2, 1, 2],
        vec![4, 4, 1, 2, 4, 1, 1, 2],
        vec![7, 1, 2, 3, 4, 5, 6, 0],
        vec![2, 2, 3, 2, 3, 3],
        vec![9, 8, 9, 8, 8, 7],
    ]
}

fn body_for(labels: &[u64]) -> String {
    let nums: Vec<String> = labels.iter().map(u64::to_string).collect();
    format!(r#"{{"ring":[{}],"algo":"ak"}}"#, nums.join(","))
}

#[test]
fn routes_with_rotation_affinity_and_backend_agreement() {
    let (handles, addrs) = backends(3, SvcConfig::default());
    // Hedging off (huge floor): this test pins down *placement*, and a
    // hedge fired against a slow debug build would legitimately let a
    // non-home backend answer.
    let router = start(ClusterConfig {
        backends: addrs.clone(),
        hedge_min: Duration::from_secs(10),
        ..Default::default()
    })
    .expect("router");
    let router_addr = router.addr.to_string();
    let mut c = client(&router_addr);

    for labels in rings() {
        // Direct answer from the ring's home backend, for byte-equality.
        let home = router.primary_backend(&labels).to_string();
        let direct = client(&home).post_json("/elect", &body_for(&labels)).expect("direct");
        assert_eq!(direct.status, 200, "{}", direct.body_text());

        let mut answered_by = std::collections::HashSet::new();
        for d in 0..labels.len() {
            let mut rot = labels.clone();
            rot.rotate_left(d);
            let via = c.post_json("/elect", &body_for(&rot)).expect("routed");
            assert_eq!(via.status, 200, "{}", via.body_text());
            answered_by.insert(via.header("x-backend").expect("x-backend tag").to_string());
            if d == 0 {
                // Unrotated request: the router's answer is the
                // backend's answer, byte for byte.
                assert_eq!(via.body_text(), direct.body_text());
            }
        }
        assert_eq!(
            answered_by.into_iter().collect::<Vec<_>>(),
            vec![home],
            "all rotations of {labels:?} must hit the home backend"
        );
    }

    // Observability surfaces.
    let metrics = c.get("/metrics").expect("metrics").body_text();
    assert!(metrics.contains("hre_cluster_requests_total"), "{metrics}");
    assert!(metrics.contains("hre_cluster_breaker_state{backend=\""), "{metrics}");
    let topo = c.get("/cluster").expect("cluster");
    assert_eq!(topo.status, 200);
    let doc = hre_cluster::Json::parse(&topo.body_text()).expect("topology json");
    let listed = doc.get("backends").and_then(|b| b.as_arr()).expect("backends array");
    assert_eq!(listed.len(), 3);
    assert!(listed.iter().all(|b| b.get("state").and_then(|s| s.as_str()) == Some("closed")));

    let summary = router.shutdown();
    assert_eq!(summary.request_errors, 0, "{summary}");
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn fails_over_when_a_backend_dies_and_reports_the_breaker() {
    let (mut handles, addrs) = backends(3, SvcConfig::default());
    let router = start(ClusterConfig {
        backends: addrs.clone(),
        failure_threshold: 2,
        probe_start: Duration::from_millis(30),
        probe_cap: Duration::from_millis(200),
        health_interval: Duration::from_millis(25),
        timeout: Duration::from_millis(800),
        hedge_min: Duration::from_secs(10), // placement must stay deterministic
        ..Default::default()
    })
    .expect("router");
    let mut c = client(&router.addr.to_string());

    // Find a ring homed on backend 0, then kill backend 0.
    let victim = addrs[0].clone();
    let labels = (0..64u64)
        .map(|salt| {
            let mut l = vec![1, 3, 1, 3, 2, 2, 1, 2];
            l[0] = salt + 1;
            l
        })
        .find(|l| router.primary_backend(l) == victim)
        .expect("some ring homes on backend 0");
    let resp = c.post_json("/elect", &body_for(&labels)).expect("pre-kill");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-backend"), Some(victim.as_str()));
    let reference = resp.body_text();

    handles.remove(0).shutdown();

    // Every post-kill request must still succeed — first by in-request
    // failover (transport error → next ring position), then, once the
    // breaker opens, by being routed around the corpse up front.
    for _ in 0..12 {
        let resp = c.post_json("/elect", &body_for(&labels)).expect("post-kill");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let by = resp.header("x-backend").expect("tag");
        assert_ne!(by, victim.as_str(), "dead backend cannot answer");
        assert_eq!(resp.body_text(), reference, "failover answer must be identical");
        std::thread::sleep(Duration::from_millis(15));
    }

    // Give the prober time to trip and then probe the open breaker.
    std::thread::sleep(Duration::from_millis(300));
    let metrics = c.get("/metrics").expect("metrics").body_text();
    let line = |name: &str| {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{name}{{backend=\"{victim}\"}}")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("missing {name} for {victim}:\n{metrics}"))
    };
    assert!(line("hre_cluster_breaker_opens_total") >= 1, "{metrics}");
    assert!(line("hre_cluster_breaker_half_opens_total") >= 1, "{metrics}");
    // Open, or momentarily half-open if a probe is in flight — never closed.
    assert!(line("hre_cluster_breaker_state") >= 1, "victim must not be closed:\n{metrics}");

    let summary = router.shutdown();
    assert_eq!(summary.request_errors, 0, "{summary}");
    assert!(summary.backends[0].failovers >= 1, "{summary}");
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn hedges_a_stalled_backend_and_takes_the_fast_answer() {
    // Backend 0: single worker, no cache — easy to stall with one big
    // election. Backend 1: healthy.
    let slow_cfg = SvcConfig {
        workers: 1,
        cache_cap: 0,
        deadline: Duration::from_secs(30),
        ..Default::default()
    };
    let slow = start_svc(slow_cfg).expect("slow backend");
    let fast = start_svc(SvcConfig::default()).expect("fast backend");
    let addrs = vec![slow.addr.to_string(), fast.addr.to_string()];
    let router = start(ClusterConfig {
        backends: addrs.clone(),
        hedge_min: Duration::from_millis(10),
        deadline: Duration::from_secs(20),
        timeout: Duration::from_secs(20),
        // Keep the prober from stealing the single worker's attention.
        health_interval: Duration::from_millis(500),
        ..Default::default()
    })
    .expect("router");

    // A ring homed on the slow backend.
    let labels = (0..64u64)
        .map(|salt| {
            let mut l = vec![1, 3, 1, 3, 2, 2, 1, 2];
            l[0] = salt + 1;
            l
        })
        .find(|l| router.primary_backend(l) == addrs[0])
        .expect("some ring homes on the slow backend");

    // Stuff the slow backend's only worker (plus queue) with elections
    // big enough to hold it busy well past the hedge threshold.
    let big: Vec<String> = (0..256u64).map(|i| (i % 17).to_string()).collect();
    let big_body = format!(r#"{{"ring":[{}],"algo":"ak"}}"#, big.join(","));
    let stuffers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addrs[0].clone();
            let body = big_body.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(60)).expect("direct");
                c.post_json("/elect", &body).expect("big election").status
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100)); // let the worker pick one up

    // Route a cheap request homed on the stalled backend: the hedge
    // must fire and the fast backend's answer must win.
    let mut c = client(&router.addr.to_string());
    let resp = c.post_json("/elect", &body_for(&labels)).expect("hedged");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.header("x-backend"), Some(addrs[1].as_str()), "hedge winner");

    for s in stuffers {
        assert_eq!(s.join().expect("stuffer"), 200);
    }
    let summary = router.shutdown();
    assert!(summary.backends[0].hedges >= 1, "hedge must have fired: {summary}");
    assert!(summary.hedge_wins >= 1, "{summary}");
    assert_eq!(summary.request_errors, 0, "{summary}");
    slow.shutdown();
    fast.shutdown();
}

#[test]
fn trace_propagates_cluster_to_svc_to_core_across_a_failover() {
    use hre_runtime::trace::{is_connected_tree, Stage, TraceId};

    let (mut handles, addrs) = backends(2, SvcConfig::default());
    // Breaker effectively disabled: the point is the *in-request*
    // failover path, which only runs while the dead backend still looks
    // routable up front.
    let router = start(ClusterConfig {
        backends: addrs.clone(),
        failure_threshold: 1000,
        health_interval: Duration::from_secs(30),
        timeout: Duration::from_millis(800),
        hedge_min: Duration::from_secs(10),
        ..Default::default()
    })
    .expect("router");
    let mut c = client(&router.addr.to_string());

    // A ring homed on backend 0, which we then kill.
    let victim = addrs[0].clone();
    let labels = (0..64u64)
        .map(|salt| {
            let mut l = vec![1, 3, 1, 3, 2, 2, 1, 2];
            l[0] = salt + 1;
            l
        })
        .find(|l| router.primary_backend(l) == victim)
        .expect("some ring homes on backend 0");
    handles.remove(0).shutdown();

    // Client-chosen trace id, propagated end to end.
    let trace = TraceId::from_hex("00000000deadbeef").expect("trace id");
    let resp = c
        .request_with_headers(
            "POST",
            "/elect",
            &[("x-trace-id", "00000000deadbeef")],
            Some(body_for(&labels).as_bytes()),
        )
        .expect("traced elect");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.header("x-trace-id"), Some("00000000deadbeef"), "trace id must echo back");
    assert_eq!(resp.header("x-backend"), Some(addrs[1].as_str()), "failover answer");

    // The merged view on the router joins its own spans with the
    // surviving backend's (the dead backend is skipped, not fatal).
    let doc = c.get("/trace/00000000deadbeef").expect("trace fetch");
    assert_eq!(doc.status, 200, "{}", doc.body_text());
    let spans = hre_svc::tracewire::spans_from_doc(&doc.body_text()).expect("trace doc");
    assert!(spans.iter().all(|s| s.trace == trace));
    assert!(
        is_connected_tree(&spans),
        "cluster → svc → core spans must form one tree:\n{}",
        hre_runtime::trace::render_tree(&spans)
    );

    let count = |stage: Stage| spans.iter().filter(|s| s.stage == stage).count();
    let tree = || hre_runtime::trace::render_tree(&spans);
    // Cluster side: root request, hash + breaker check, two attempts
    // (one failed), and the failover event between them.
    let root = spans.iter().find(|s| s.root && s.src == "cluster").expect("cluster root");
    assert_eq!(root.stage, Stage::Request);
    assert!(!root.err, "request succeeded end to end");
    assert_eq!(count(Stage::Hash), 1, "{}", tree());
    assert_eq!(count(Stage::BreakerCheck), 1, "{}", tree());
    assert_eq!(count(Stage::Failover), 1, "{}", tree());
    let attempts: Vec<_> = spans.iter().filter(|s| s.stage == Stage::Attempt).collect();
    assert_eq!(attempts.len(), 2, "{}", tree());
    assert!(attempts.iter().all(|a| a.parent == root.id), "attempts are sibling spans");
    assert_eq!(attempts.iter().filter(|a| a.err).count(), 1, "one dead attempt: {}", tree());
    // Service side: its own request root (reparented under the
    // surviving attempt), cache probe, queue wait, execution.
    let svc_root =
        spans.iter().find(|s| s.src == addrs[1] && s.stage == Stage::Request).expect("svc root");
    let winner = attempts.iter().find(|a| !a.err).expect("surviving attempt");
    assert_eq!(svc_root.parent, winner.id, "cross-process parent link:\n{}", tree());
    for stage in [Stage::CacheLookup, Stage::QueueWait, Stage::Execute, Stage::Election] {
        assert_eq!(count(stage), 1, "expected exactly one {stage:?}: {}", tree());
    }
    // Core side: the election hook reported real work.
    let election = spans.iter().find(|s| s.stage == Stage::Election).expect("election span");
    assert!(election.a > 0, "election must report messages: {}", tree());

    router.shutdown();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn garbage_is_rejected_locally_and_unknown_paths_404() {
    let (handles, addrs) = backends(1, SvcConfig::default());
    let router = start(ClusterConfig { backends: addrs, ..Default::default() }).expect("router");
    let mut c = client(&router.addr.to_string());

    let resp = c.post_json("/elect", "not json").expect("garbage");
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("x-backend"), None, "garbage must not be forwarded");

    let resp = c.post_json("/elect", r#"{"ring":[1]}"#).expect("too short");
    assert_eq!(resp.status, 400);

    let resp = c.get("/nope").expect("404");
    assert_eq!(resp.status, 404);

    // The backend saw none of it.
    let summary = router.shutdown();
    assert_eq!(summary.backends[0].requests, 0, "{summary}");
    for h in handles {
        let s = h.shutdown();
        assert_eq!(s.elect_ok + s.elect_failed, 0);
    }
}
