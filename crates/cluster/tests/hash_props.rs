//! Property tests for the consistent-hash ring and the rotation-affinity
//! shard key — the two routing invariants the cluster's cache economics
//! rest on:
//!
//! 1. **Rotation affinity**: every rotation of a labeled ring routes to
//!    the same backend. Break this and the per-shard LRU caches stop
//!    deduplicating rotated requests, which is the whole point of
//!    sharding by canonical rotation.
//! 2. **Bounded remap**: adding or removing one of N backends moves at
//!    most ~1/N of the keyspace (asserted at ≤ 2.5/N over a 10k-key
//!    sample). Break this and every topology change is a cluster-wide
//!    cache flush.

use hre_cluster::{shard_key, HashRing};
use proptest::prelude::*;

/// Backend addresses shaped like the real ones.
fn backends(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.1.0.{}:9{:03}", i + 1, i)).collect()
}

/// A deterministic well-spread 10k-key sample.
fn key_sample() -> impl Iterator<Item = u64> {
    (0..10_000u64).map(|k| k.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(0x61c88647))
}

/// Fraction of sampled keys whose owner differs between two rings.
/// `map_b` translates ring-B backend indices to ring-A's namespace (the
/// rings may list different backend sets).
fn remap_fraction(a: &HashRing, b: &HashRing, map_b: impl Fn(usize) -> usize) -> f64 {
    let mut moved = 0u64;
    for key in key_sample() {
        let owner_a = a.primary(key).unwrap();
        let owner_b = map_b(b.primary(key).unwrap());
        if owner_a != owner_b {
            moved += 1;
        }
    }
    moved as f64 / 10_000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All `n` rotations of an arbitrary label sequence share one shard
    /// key and therefore one primary backend, at any cluster size.
    #[test]
    fn all_rotations_route_to_one_backend(
        labels in proptest::collection::vec(0u64..6, 2..16),
        n_backends in 1usize..8,
        d in 0usize..16,
    ) {
        let ring = HashRing::new(&backends(n_backends), 64);
        let key = shard_key(&labels);
        let home = ring.primary(key).unwrap();
        let mut rotated = labels.clone();
        rotated.rotate_left(d % labels.len());
        prop_assert_eq!(shard_key(&rotated), key, "shard key must be rotation-invariant");
        prop_assert_eq!(ring.primary(shard_key(&rotated)).unwrap(), home);
        // And the whole failover preference order agrees, not just the
        // primary — a hedged rotation must not land on a foreign shard.
        prop_assert_eq!(ring.preference_order(key), ring.preference_order(shard_key(&rotated)));
    }

    /// Growing the cluster from N to N+1 backends remaps at most 2.5/(N+1)
    /// of a 10k-key sample (ideal: 1/(N+1)).
    #[test]
    fn adding_a_node_remaps_a_bounded_fraction(n in 2usize..9) {
        let small = HashRing::new(&backends(n), 96);
        let grown = HashRing::new(&backends(n + 1), 96);
        // Same names in the same order, so indices line up; keys moving
        // anywhere but the new node (index n) are gratuitous remaps and
        // count against the bound too.
        let moved = remap_fraction(&small, &grown, |i| i);
        let bound = 2.5 / (n + 1) as f64;
        prop_assert!(
            moved <= bound,
            "grow {}→{}: {:.4} of keys moved, bound {:.4}", n, n + 1, moved, bound
        );
        prop_assert!(moved > 0.0, "a new node must take some keys");
    }

    /// Removing one of N backends remaps at most 2.5/N of the sample
    /// (only the dead node's keys should move — ideal: 1/N).
    #[test]
    fn removing_a_node_remaps_a_bounded_fraction(n in 3usize..9, victim in 0usize..9) {
        let victim = victim % n;
        let full_names = backends(n);
        let mut rest_names = full_names.clone();
        rest_names.remove(victim);
        let full = HashRing::new(&full_names, 96);
        let rest = HashRing::new(&rest_names, 96);
        // Translate survivor indices back into the full ring's namespace.
        let moved = remap_fraction(&full, &rest, |i| if i >= victim { i + 1 } else { i });
        let bound = 2.5 / n as f64;
        prop_assert!(
            moved <= bound,
            "shrink {}→{} (victim {}): {:.4} moved, bound {:.4}", n, n - 1, victim, moved, bound
        );
    }

    /// Surviving keys keep their owner exactly: a key not owned by the
    /// removed backend must not move at all.
    #[test]
    fn keys_off_the_victim_never_move(n in 3usize..7) {
        let full_names = backends(n);
        let mut rest_names = full_names.clone();
        let victim = n - 1;
        rest_names.remove(victim);
        let full = HashRing::new(&full_names, 96);
        let rest = HashRing::new(&rest_names, 96);
        for key in key_sample().take(2_000) {
            let before = full.primary(key).unwrap();
            if before != victim {
                let after = rest.primary(key).unwrap();
                let after_full = if after >= victim { after + 1 } else { after };
                prop_assert_eq!(after_full, before, "key {} moved off a surviving node", key);
            }
        }
    }
}
