//! Cluster-level metrics and the router's `/metrics` renderer.
//!
//! Naming follows the workspace's Prometheus conventions from day one
//! (this crate has no legacy names to alias): every series is
//! `hre_cluster_*`, counters end in `_total`, and times are `_seconds`
//! in base units. Per-backend series carry a `backend="host:port"`
//! label; breaker state is a gauge encoded 0 = closed, 1 = open,
//! 2 = half-open alongside cumulative transition counters.
//!
//! Per-backend counters live inside each [`BackendSlot`] (not in
//! [`ClusterMetrics`]): since the control plane made the backend set
//! dynamic, a backend's counters must travel with its slot across
//! topology swaps rather than sit in a fixed-size vector indexed by a
//! configuration order that no longer exists. [`ClusterMetrics`] keeps
//! only the front-door aggregates, which survive every reconfiguration.
//!
//! The per-backend latency histograms double as the input to the
//! **adaptive hedge threshold**: [`BackendSlot::hedge_threshold`] reads
//! a backend's observed p95 — linearly interpolated within the covering
//! log₂ bucket ([`HistSnapshot::quantile_us`]), not rounded to a bucket
//! edge — and hedges at `max(hedge_min, 2 × p95)`. A backend that is
//! normally fast gets hedged quickly when it stalls, a backend that is
//! normally slow is not hedged prematurely, and the threshold tracks
//! the true p95 to within one bucket's interpolation error instead of
//! quantizing to a power of two (which mis-timed hedges by up to 2×).

use crate::topology::{BackendSlot, Topology};
use hre_runtime::trace::Stage;
use hre_runtime::{render_prometheus_histogram, HistSnapshot, Log2Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters and latency for one backend, as seen from the router.
/// Owned by the backend's [`BackendSlot`] so it survives topology swaps.
#[derive(Debug, Default)]
pub struct BackendMetrics {
    /// Proxied requests attempted against this backend (live + hedge).
    pub requests: AtomicU64,
    /// Attempts that failed at the transport level.
    pub errors: AtomicU64,
    /// Attempts answered `503 busy` (backend alive, queue full).
    pub busy: AtomicU64,
    /// Hedged duplicates fired *because this backend* stalled.
    pub hedges: AtomicU64,
    /// Requests rerouted away from this backend (breaker open or
    /// transport error) to a later ring position.
    pub failovers: AtomicU64,
    /// Latency of completed attempts against this backend.
    pub latency: Log2Histogram,
}

/// The front-door aggregates the router exposes on `GET /metrics`.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Client-facing requests accepted by the front door.
    pub requests: AtomicU64,
    /// Client-facing requests that exhausted every backend (502).
    pub request_errors: AtomicU64,
    /// Hedged duplicates whose response won the race.
    pub hedge_wins: AtomicU64,
    /// Topology config pushes applied.
    pub reconfigures: AtomicU64,
    /// Topology config pushes refused as stale-epoch.
    pub stale_configs: AtomicU64,
    /// End-to-end front-door latency (accept to response).
    pub request_latency: Log2Histogram,
}

impl ClusterMetrics {
    /// Fresh aggregates, all zero.
    pub fn new() -> ClusterMetrics {
        ClusterMetrics::default()
    }

    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition against one topology
    /// snapshot; `stages` is the flight recorder's per-stage histograms.
    pub fn render_prometheus(
        &self,
        topology: &Topology,
        stages: &[(Stage, HistSnapshot)],
    ) -> String {
        let slots: &[Arc<BackendSlot>] = &topology.slots;
        let mut out = String::with_capacity(8192);

        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        };
        counter(
            "hre_cluster_requests_total",
            "client-facing requests accepted by the router",
            self.requests.load(Ordering::Relaxed),
        );
        counter(
            "hre_cluster_request_errors_total",
            "client-facing requests that exhausted every backend",
            self.request_errors.load(Ordering::Relaxed),
        );
        counter(
            "hre_cluster_hedge_wins_total",
            "hedged duplicates whose response won the race",
            self.hedge_wins.load(Ordering::Relaxed),
        );
        counter(
            "hre_cluster_reconfigures_total",
            "topology config pushes applied",
            self.reconfigures.load(Ordering::Relaxed),
        );
        counter(
            "hre_cluster_stale_configs_total",
            "topology config pushes refused as stale-epoch",
            self.stale_configs.load(Ordering::Relaxed),
        );

        let labeled = |out: &mut String, name: &str, help: &str, kind: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };
        let series = |out: &mut String, name: &str, backend: &str, value: u64| {
            out.push_str(&format!("{name}{{backend=\"{backend}\"}} {value}\n"));
        };

        labeled(
            &mut out,
            "hre_cluster_backend_requests_total",
            "proxied attempts per backend (live and hedged)",
            "counter",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_backend_requests_total",
                s.addr(),
                s.metrics.requests.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_errors_total",
            "transport-level failures per backend",
            "counter",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_backend_errors_total",
                s.addr(),
                s.metrics.errors.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_busy_total",
            "503-busy answers per backend",
            "counter",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_backend_busy_total",
                s.addr(),
                s.metrics.busy.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_hedges_total",
            "hedged duplicates fired because this backend stalled",
            "counter",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_backend_hedges_total",
                s.addr(),
                s.metrics.hedges.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_failovers_total",
            "requests rerouted away from this backend",
            "counter",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_backend_failovers_total",
                s.addr(),
                s.metrics.failovers.load(Ordering::Relaxed),
            );
        }

        labeled(
            &mut out,
            "hre_cluster_breaker_state",
            "circuit breaker state (0=closed, 1=open, 2=half-open)",
            "gauge",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_breaker_state",
                s.addr(),
                s.breaker.peek_state().as_gauge(),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_breaker_opens_total",
            "times the breaker tripped open",
            "counter",
        );
        for s in slots {
            series(&mut out, "hre_cluster_breaker_opens_total", s.addr(), s.breaker.opened_total());
        }
        labeled(
            &mut out,
            "hre_cluster_breaker_half_opens_total",
            "half-open probes admitted",
            "counter",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_breaker_half_opens_total",
                s.addr(),
                s.breaker.half_opened_total(),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_breaker_closes_total",
            "times the breaker recovered to closed",
            "counter",
        );
        for s in slots {
            series(
                &mut out,
                "hre_cluster_breaker_closes_total",
                s.addr(),
                s.breaker.closed_total(),
            );
        }

        // The topology generation, for dashboards and the E23 gate.
        out.push_str(&format!(
            "# HELP hre_cluster_epoch control-plane epoch of the active topology\n\
             # TYPE hre_cluster_epoch gauge\nhre_cluster_epoch {}\n",
            topology.epoch
        ));
        out.push_str(&format!(
            "# HELP hre_cluster_backends number of backends in the active topology\n\
             # TYPE hre_cluster_backends gauge\nhre_cluster_backends {}\n",
            slots.len()
        ));

        // Histograms go through the shared renderer in `hre_runtime` so
        // the `le` edges match the service's families exactly.
        render_prometheus_histogram(
            &mut out,
            "hre_cluster_request_latency_seconds",
            "end-to-end latency of client-facing requests",
            None,
            &self.request_latency.snapshot(),
        );
        for s in slots {
            render_prometheus_histogram(
                &mut out,
                "hre_cluster_backend_latency_seconds",
                "latency of proxied attempts per backend",
                Some(("backend", s.addr())),
                &s.metrics.latency.snapshot(),
            );
        }
        // Per-stage latencies from the flight recorder — same family
        // name the service exports (one cross-daemon vocabulary,
        // distinguished by scrape target).
        for (stage, snap) in stages {
            render_prometheus_histogram(
                &mut out,
                "hre_stage_seconds",
                "time spent per request stage, from flight-recorder spans",
                Some(("stage", stage.as_str())),
                snap,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ClusterConfig;
    use std::time::Duration;

    fn topo() -> Topology {
        Topology::initial(&ClusterConfig {
            backends: vec!["127.0.0.1:1001".into(), "127.0.0.1:1002".into()],
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn hedge_threshold_tracks_p95_with_a_floor() {
        let t = topo();
        let floor = Duration::from_millis(5);
        // Empty histogram: the floor wins.
        assert_eq!(t.slots[0].hedge_threshold(floor), floor);
        // 100 fast samples (~100 µs): p95 ≈ 124 µs interpolated, 2× is
        // still under the floor.
        for _ in 0..100 {
            t.slots[0].metrics.latency.record(Duration::from_micros(100));
        }
        assert_eq!(t.slots[0].hedge_threshold(floor), floor);
        // Shift the tail: 100 more at ~20 ms. Rank 190 of 200 falls in
        // bucket [16384, 32768) µs as its 90th of 100 samples, so the
        // interpolated p95 is 16384 + 16384·90/100 = 31129 µs.
        for _ in 0..100 {
            t.slots[0].metrics.latency.record(Duration::from_millis(20));
        }
        let thresh = t.slots[0].hedge_threshold(floor);
        assert_eq!(thresh, Duration::from_micros(2 * 31_129), "{thresh:?}");
        // Backend 1 is untouched.
        assert_eq!(t.slots[1].hedge_threshold(floor), floor);
    }

    #[test]
    fn interpolated_p95_beats_the_bucket_edge_against_exact_percentiles() {
        // Regression for the hedge mis-timing: a log₂ histogram's p95
        // rounded to a bucket edge is off by up to 2×; interpolation
        // must land strictly closer to the exact sample percentile.
        // Bimodal load: 90 fast (100 µs), 10 slow (20 ms).
        let samples: Vec<u64> =
            std::iter::repeat_n(100, 90).chain(std::iter::repeat_n(20_000, 10)).collect();
        // Exact p95 via the same nearest-rank rule the bench oracle
        // (`LoadReport::percentile_us`) uses on its sorted samples.
        let exact = {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = (0.95 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        assert_eq!(exact, 20_000);

        let h = Log2Histogram::default();
        for &us in &samples {
            h.record_us(us);
        }
        let snap = h.snapshot();
        let interpolated = snap.quantile_us(0.95);
        // The covering bucket is [16384, 32768) µs; the old estimator
        // answered the upper edge 32768 outright.
        let upper_edge = 32_768u64;
        assert!(
            (16_384..32_768).contains(&interpolated),
            "estimate must stay inside the covering bucket: {interpolated}"
        );
        assert!(
            interpolated.abs_diff(exact) < upper_edge.abs_diff(exact),
            "interpolated {interpolated} must beat the edge {upper_edge} against exact {exact}"
        );

        // And the threshold built on it is what the router will use.
        let t = topo();
        for &us in &samples {
            t.slots[0].metrics.latency.record_us(us);
        }
        assert_eq!(
            t.slots[0].hedge_threshold(Duration::from_millis(5)),
            Duration::from_micros(2 * interpolated)
        );
    }

    #[test]
    fn renders_prometheus_with_conventions_and_labels() {
        let m = ClusterMetrics::new();
        let t = topo();
        ClusterMetrics::inc(&m.requests);
        ClusterMetrics::inc(&t.slots[0].metrics.requests);
        ClusterMetrics::inc(&t.slots[1].metrics.hedges);
        m.request_latency.record(Duration::from_micros(300));
        t.slots[0].metrics.latency.record(Duration::from_micros(300));
        t.slots[1].breaker.record_failure();
        t.slots[1].breaker.record_failure();
        t.slots[1].breaker.record_failure();

        let stage_hist = Log2Histogram::default();
        stage_hist.record(Duration::from_micros(40));
        let stages = vec![(Stage::Attempt, stage_hist.snapshot())];
        let text = m.render_prometheus(&t, &stages);
        assert!(text.contains("hre_cluster_requests_total 1\n"), "{text}");
        assert!(
            text.contains("hre_cluster_backend_requests_total{backend=\"127.0.0.1:1001\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_backend_hedges_total{backend=\"127.0.0.1:1002\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_breaker_state{backend=\"127.0.0.1:1001\"} 0\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_breaker_state{backend=\"127.0.0.1:1002\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_breaker_opens_total{backend=\"127.0.0.1:1002\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("hre_cluster_epoch 0\n"), "{text}");
        assert!(text.contains("hre_cluster_backends 2\n"), "{text}");
        // Histogram in base seconds: 300 µs lands in le=512µs = 0.000512 s.
        assert!(
            text.contains("hre_cluster_request_latency_seconds_bucket{le=\"0.000512\"} 1"),
            "{text}"
        );
        assert!(text.contains("hre_cluster_request_latency_seconds_sum 0.0003\n"), "{text}");
        assert!(text.contains("hre_cluster_request_latency_seconds_count 1\n"), "{text}");
        assert!(
            text.contains(
                "hre_cluster_backend_latency_seconds_bucket{backend=\"127.0.0.1:1001\",le=\"+Inf\"} 1"
            ),
            "{text}"
        );
        // Per-stage histograms from the flight recorder.
        assert!(
            text.contains("hre_stage_seconds_bucket{stage=\"attempt\",le=\"0.000064\"} 1\n"),
            "{text}"
        );
        // Every exported family obeys the conventions, checked with the
        // same helper the service exposes (and CI greps live scrapes
        // with the equivalent shell logic).
        let bad = hre_svc::naming_violations(&text);
        assert!(bad.is_empty(), "non-conforming metric names: {bad:?}");
    }
}
