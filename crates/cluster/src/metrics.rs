//! Cluster-level metrics and the router's `/metrics` renderer.
//!
//! Naming follows the workspace's Prometheus conventions from day one
//! (this crate has no legacy names to alias): every series is
//! `hre_cluster_*`, counters end in `_total`, and times are `_seconds`
//! in base units. Per-backend series carry a `backend="host:port"`
//! label; breaker state is a gauge encoded 0 = closed, 1 = open,
//! 2 = half-open alongside cumulative transition counters.
//!
//! The per-backend latency histograms double as the input to the
//! **adaptive hedge threshold**: [`ClusterMetrics::hedge_threshold`]
//! reads a backend's observed p95 (upper-bounded from the log₂ buckets)
//! and hedges at `max(hedge_min, 2 × p95)` — a backend that is normally
//! fast gets hedged quickly when it stalls, a backend that is normally
//! slow is not hedged prematurely.

use crate::health::Breaker;
use hre_runtime::{HistSnapshot, Log2Histogram, LOG2_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters and latency for one backend, as seen from the router.
#[derive(Debug, Default)]
pub struct BackendMetrics {
    /// Proxied requests attempted against this backend (live + hedge).
    pub requests: AtomicU64,
    /// Attempts that failed at the transport level.
    pub errors: AtomicU64,
    /// Attempts answered `503 busy` (backend alive, queue full).
    pub busy: AtomicU64,
    /// Hedged duplicates fired *because this backend* stalled.
    pub hedges: AtomicU64,
    /// Requests rerouted away from this backend (breaker open or
    /// transport error) to a later ring position.
    pub failovers: AtomicU64,
    /// Latency of completed attempts against this backend.
    pub latency: Log2Histogram,
}

/// Everything the router exposes on `GET /metrics`.
pub struct ClusterMetrics {
    backends: Vec<(String, BackendMetrics)>,
    /// Client-facing requests accepted by the front door.
    pub requests: AtomicU64,
    /// Client-facing requests that exhausted every backend (502).
    pub request_errors: AtomicU64,
    /// Hedged duplicates whose response won the race.
    pub hedge_wins: AtomicU64,
    /// End-to-end front-door latency (accept to response).
    pub request_latency: Log2Histogram,
}

/// Upper bound (µs) of the log₂ bucket holding quantile `q` of `snap`.
/// Zero when the histogram is empty.
fn quantile_upper_us(snap: &HistSnapshot, q: f64) -> u64 {
    if snap.count == 0 {
        return 0;
    }
    let rank = ((snap.count as f64) * q).ceil() as u64;
    let mut cumulative = 0u64;
    for (i, &b) in snap.buckets.iter().enumerate() {
        cumulative += b;
        if cumulative >= rank {
            return 1u64 << (i + 1).min(63);
        }
    }
    1u64 << 63
}

impl ClusterMetrics {
    /// Metrics for a fixed set of backends (configuration order; the
    /// index is the same as the [`crate::hash::HashRing`] backend index).
    pub fn new(backends: &[String]) -> ClusterMetrics {
        ClusterMetrics {
            backends: backends.iter().map(|b| (b.clone(), BackendMetrics::default())).collect(),
            requests: AtomicU64::new(0),
            request_errors: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            request_latency: Log2Histogram::default(),
        }
    }

    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The per-backend metrics slot for ring index `i`.
    pub fn backend(&self, i: usize) -> &BackendMetrics {
        &self.backends[i].1
    }

    /// When to hedge a request sitting on backend `i`: twice its
    /// observed p95 (log₂-bucket upper bound), floored at `hedge_min`
    /// so a cold or very fast backend is not hedged on noise.
    pub fn hedge_threshold(&self, i: usize, hedge_min: Duration) -> Duration {
        let snap = self.backends[i].1.latency.snapshot();
        let p95_us = quantile_upper_us(&snap, 0.95);
        hedge_min.max(Duration::from_micros(p95_us.saturating_mul(2)))
    }

    /// Renders the Prometheus text exposition. `breakers` must be the
    /// same length and order as the backend list.
    pub fn render_prometheus(&self, breakers: &[Breaker]) -> String {
        assert_eq!(breakers.len(), self.backends.len());
        let mut out = String::with_capacity(8192);

        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        };
        counter(
            "hre_cluster_requests_total",
            "client-facing requests accepted by the router",
            self.requests.load(Ordering::Relaxed),
        );
        counter(
            "hre_cluster_request_errors_total",
            "client-facing requests that exhausted every backend",
            self.request_errors.load(Ordering::Relaxed),
        );
        counter(
            "hre_cluster_hedge_wins_total",
            "hedged duplicates whose response won the race",
            self.hedge_wins.load(Ordering::Relaxed),
        );

        let labeled = |out: &mut String, name: &str, help: &str, kind: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };
        let series = |out: &mut String, name: &str, backend: &str, value: u64| {
            out.push_str(&format!("{name}{{backend=\"{backend}\"}} {value}\n"));
        };

        labeled(
            &mut out,
            "hre_cluster_backend_requests_total",
            "proxied attempts per backend (live and hedged)",
            "counter",
        );
        for (name, m) in &self.backends {
            series(
                &mut out,
                "hre_cluster_backend_requests_total",
                name,
                m.requests.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_errors_total",
            "transport-level failures per backend",
            "counter",
        );
        for (name, m) in &self.backends {
            series(
                &mut out,
                "hre_cluster_backend_errors_total",
                name,
                m.errors.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_busy_total",
            "503-busy answers per backend",
            "counter",
        );
        for (name, m) in &self.backends {
            series(
                &mut out,
                "hre_cluster_backend_busy_total",
                name,
                m.busy.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_hedges_total",
            "hedged duplicates fired because this backend stalled",
            "counter",
        );
        for (name, m) in &self.backends {
            series(
                &mut out,
                "hre_cluster_backend_hedges_total",
                name,
                m.hedges.load(Ordering::Relaxed),
            );
        }
        labeled(
            &mut out,
            "hre_cluster_backend_failovers_total",
            "requests rerouted away from this backend",
            "counter",
        );
        for (name, m) in &self.backends {
            series(
                &mut out,
                "hre_cluster_backend_failovers_total",
                name,
                m.failovers.load(Ordering::Relaxed),
            );
        }

        labeled(
            &mut out,
            "hre_cluster_breaker_state",
            "circuit breaker state (0=closed, 1=open, 2=half-open)",
            "gauge",
        );
        for ((name, _), b) in self.backends.iter().zip(breakers) {
            series(&mut out, "hre_cluster_breaker_state", name, b.peek_state().as_gauge());
        }
        labeled(
            &mut out,
            "hre_cluster_breaker_opens_total",
            "times the breaker tripped open",
            "counter",
        );
        for ((name, _), b) in self.backends.iter().zip(breakers) {
            series(&mut out, "hre_cluster_breaker_opens_total", name, b.opened_total());
        }
        labeled(
            &mut out,
            "hre_cluster_breaker_half_opens_total",
            "half-open probes admitted",
            "counter",
        );
        for ((name, _), b) in self.backends.iter().zip(breakers) {
            series(&mut out, "hre_cluster_breaker_half_opens_total", name, b.half_opened_total());
        }
        labeled(
            &mut out,
            "hre_cluster_breaker_closes_total",
            "times the breaker recovered to closed",
            "counter",
        );
        for ((name, _), b) in self.backends.iter().zip(breakers) {
            series(&mut out, "hre_cluster_breaker_closes_total", name, b.closed_total());
        }

        render_seconds_histogram(
            &mut out,
            "hre_cluster_request_latency_seconds",
            "end-to-end latency of client-facing requests",
            None,
            &self.request_latency.snapshot(),
        );
        for (name, m) in &self.backends {
            render_seconds_histogram(
                &mut out,
                "hre_cluster_backend_latency_seconds",
                "latency of proxied attempts per backend",
                Some(name),
                &m.latency.snapshot(),
            );
        }
        out
    }
}

/// Renders one histogram in base seconds from a log₂-µs snapshot. The
/// `# HELP`/`# TYPE` preamble is emitted once per family — repeated
/// calls for further labeled series of the same name skip it.
fn render_seconds_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    backend: Option<&str>,
    snap: &HistSnapshot,
) {
    if !out.contains(&format!("# TYPE {name} ")) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    }
    let label = |le: &str| match backend {
        Some(b) => format!("{{backend=\"{b}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let suffix = |kind: &str| match backend {
        Some(b) => format!("{name}_{kind}{{backend=\"{b}\"}}"),
        None => format!("{name}_{kind}"),
    };
    let mut cumulative = 0u64;
    for (i, &b) in snap.buckets.iter().enumerate() {
        cumulative += b;
        if i + 1 < LOG2_BUCKETS {
            let le_seconds = (1u64 << (i + 1)) as f64 / 1e6;
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                label(&le_seconds.to_string())
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{} {}\n", label("+Inf"), snap.count));
    out.push_str(&format!("{} {}\n", suffix("sum"), snap.sum_us as f64 / 1e6));
    out.push_str(&format!("{} {}\n", suffix("count"), snap.count));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn names() -> Vec<String> {
        vec!["127.0.0.1:1001".into(), "127.0.0.1:1002".into()]
    }

    #[test]
    fn hedge_threshold_tracks_p95_with_a_floor() {
        let m = ClusterMetrics::new(&names());
        let floor = Duration::from_millis(5);
        // Empty histogram: the floor wins.
        assert_eq!(m.hedge_threshold(0, floor), floor);
        // 100 fast samples (~100 µs): p95 upper bound 128 µs, 2×256 µs
        // is still under the floor.
        for _ in 0..100 {
            m.backend(0).latency.record(Duration::from_micros(100));
        }
        assert_eq!(m.hedge_threshold(0, floor), floor);
        // Shift the tail: 100 more at ~20 ms. p95 upper bound 32768 µs,
        // threshold 2× that.
        for _ in 0..100 {
            m.backend(0).latency.record(Duration::from_millis(20));
        }
        let t = m.hedge_threshold(0, floor);
        assert_eq!(t, Duration::from_micros(2 * 32_768), "{t:?}");
        // Backend 1 is untouched.
        assert_eq!(m.hedge_threshold(1, floor), floor);
    }

    #[test]
    fn renders_prometheus_with_conventions_and_labels() {
        let m = ClusterMetrics::new(&names());
        let breakers: Vec<Breaker> = (0..2)
            .map(|_| Breaker::new(3, Duration::from_millis(10), Duration::from_millis(100)))
            .collect();
        ClusterMetrics::inc(&m.requests);
        ClusterMetrics::inc(&m.backend(0).requests);
        ClusterMetrics::inc(&m.backend(1).hedges);
        m.request_latency.record(Duration::from_micros(300));
        m.backend(0).latency.record(Duration::from_micros(300));
        breakers[1].record_failure();
        breakers[1].record_failure();
        breakers[1].record_failure();

        let text = m.render_prometheus(&breakers);
        assert!(text.contains("hre_cluster_requests_total 1\n"), "{text}");
        assert!(
            text.contains("hre_cluster_backend_requests_total{backend=\"127.0.0.1:1001\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_backend_hedges_total{backend=\"127.0.0.1:1002\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_breaker_state{backend=\"127.0.0.1:1001\"} 0\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_breaker_state{backend=\"127.0.0.1:1002\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("hre_cluster_breaker_opens_total{backend=\"127.0.0.1:1002\"} 1\n"),
            "{text}"
        );
        // Histogram in base seconds: 300 µs lands in le=512µs = 0.000512 s.
        assert!(
            text.contains("hre_cluster_request_latency_seconds_bucket{le=\"0.000512\"} 1"),
            "{text}"
        );
        assert!(text.contains("hre_cluster_request_latency_seconds_sum 0.0003\n"), "{text}");
        assert!(text.contains("hre_cluster_request_latency_seconds_count 1\n"), "{text}");
        assert!(
            text.contains(
                "hre_cluster_backend_latency_seconds_bucket{backend=\"127.0.0.1:1001\",le=\"+Inf\"} 1"
            ),
            "{text}"
        );
        // Every exported family obeys the conventions: hre_ prefix and
        // _total/_seconds/state suffixes only.
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let name = line.split_whitespace().nth(2).unwrap();
            assert!(name.starts_with("hre_cluster_"), "{name}");
            assert!(
                name.ends_with("_total") || name.ends_with("_seconds") || name.ends_with("_state"),
                "unconventional metric name {name}"
            );
        }
    }
}
