//! Per-backend health: the three-state circuit breaker.
//!
//! Each backend gets one [`Breaker`]. Transport-level failures (connect
//! refused, read timeout, failed `GET /healthz` probe) feed
//! [`Breaker::record_failure`]; once `failure_threshold` land
//! *consecutively*, the breaker **opens** and the router stops sending
//! the backend live traffic, failing over to the next ring position
//! instead. While open, probes are paced by the shared
//! [`hre_runtime::Backoff`] (the same capped-exponential policy as
//! `hre-net`'s reconnect loop): when a probe comes due the breaker goes
//! **half-open**, admitting exactly that probe — success closes it,
//! failure re-opens it with a longer wait.
//!
//! Application-level backpressure (a backend answering `503 busy`) does
//! **not** count as a failure: the backend is alive and telling us so.
//! The router routes around a busy backend but leaves its breaker
//! closed.
//!
//! All transitions are tallied (opened/half-opened/closed counters) so
//! `GET /metrics` can expose breaker churn, and so tests can assert "the
//! breaker opened, then probed" without racing the prober thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The observable state of a [`Breaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the next probe comes due.
    Open,
    /// Probing: one trial request is in flight; its outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for metrics and the `/cluster` document.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for the Prometheus state gauge
    /// (0 = closed, 1 = open, 2 = half-open).
    pub fn as_gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    backoff: hre_runtime::Backoff,
    /// When the next half-open probe is allowed (meaningful while open).
    probe_due: Instant,
}

/// A three-state circuit breaker for one backend.
pub struct Breaker {
    inner: Mutex<BreakerInner>,
    failure_threshold: u32,
    opened: AtomicU64,
    half_opened: AtomicU64,
    closed: AtomicU64,
}

impl Breaker {
    /// A closed breaker that trips after `failure_threshold` consecutive
    /// failures and then probes on a `probe_start`..=`probe_cap`
    /// capped-exponential schedule.
    pub fn new(failure_threshold: u32, probe_start: Duration, probe_cap: Duration) -> Breaker {
        Breaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                backoff: hre_runtime::Backoff::new(probe_start, probe_cap),
                probe_due: Instant::now(),
            }),
            failure_threshold: failure_threshold.max(1),
            opened: AtomicU64::new(0),
            half_opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
        }
    }

    /// Current state (moves open → half-open if a probe has come due by
    /// `now`; observation is what admits the probe).
    pub fn state_at(&self, now: Instant) -> BreakerState {
        let mut inner = self.inner.lock().unwrap();
        if inner.state == BreakerState::Open && now >= inner.probe_due {
            inner.state = BreakerState::HalfOpen;
            self.half_opened.fetch_add(1, Ordering::Relaxed);
        }
        inner.state
    }

    /// Current state, as of now.
    pub fn state(&self) -> BreakerState {
        self.state_at(Instant::now())
    }

    /// The stored state, without admitting a probe even if one is due —
    /// for the metrics renderers, so a scrape has no routing side
    /// effects.
    pub fn peek_state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// Whether a request (live or probe) may be sent to this backend at
    /// `now`. Closed and half-open admit; open refuses until the probe
    /// deadline, at which point the breaker half-opens and admits it.
    pub fn allows_request_at(&self, now: Instant) -> bool {
        self.state_at(now) != BreakerState::Open
    }

    /// [`Breaker::allows_request_at`] as of now.
    pub fn allows_request(&self) -> bool {
        self.allows_request_at(Instant::now())
    }

    /// A request or probe succeeded: close the breaker, forget the
    /// failure streak, restart the probe schedule.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = 0;
        inner.backoff.reset();
        if inner.state != BreakerState::Closed {
            inner.state = BreakerState::Closed;
            self.closed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A transport-level failure at `now`. In the closed state this
    /// counts toward the threshold; a half-open probe failure re-opens
    /// immediately with a longer wait.
    pub fn record_failure_at(&self, now: Instant) {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            BreakerState::Closed => inner.consecutive_failures >= self.failure_threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if trip {
            inner.state = BreakerState::Open;
            let wait = inner.backoff.advance();
            inner.probe_due = now + wait;
            self.opened.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// [`Breaker::record_failure_at`] as of now.
    pub fn record_failure(&self) {
        self.record_failure_at(Instant::now());
    }

    /// Force the breaker open immediately at `now`, regardless of the
    /// failure streak — the control plane declared this backend dead
    /// (missed heartbeats), so waiting for `failure_threshold` live
    /// requests to fail would send real traffic into a known hole. The
    /// probe schedule still runs: if the member comes back, the usual
    /// half-open probe closes the breaker.
    pub fn trip_at(&self, now: Instant) {
        let mut inner = self.inner.lock().unwrap();
        if inner.state != BreakerState::Open {
            inner.state = BreakerState::Open;
            let wait = inner.backoff.advance();
            inner.probe_due = now + wait;
            self.opened.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// [`Breaker::trip_at`] as of now.
    pub fn trip(&self) {
        self.trip_at(Instant::now());
    }

    /// How many times the breaker has tripped open.
    pub fn opened_total(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// How many half-open probes have been admitted.
    pub fn half_opened_total(&self) -> u64 {
        self.half_opened.load(Ordering::Relaxed)
    }

    /// How many times the breaker has recovered to closed.
    pub fn closed_total(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const START: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_millis(80);

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = Breaker::new(3, START, CAP);
        let t0 = Instant::now();
        b.record_failure_at(t0);
        b.record_failure_at(t0);
        b.record_success(); // streak broken
        b.record_failure_at(t0);
        b.record_failure_at(t0);
        assert_eq!(b.state_at(t0), BreakerState::Closed);
        b.record_failure_at(t0);
        assert_eq!(b.state_at(t0), BreakerState::Open);
        assert_eq!(b.opened_total(), 1);
        assert!(!b.allows_request_at(t0));
    }

    #[test]
    fn probes_on_the_backoff_schedule_and_reopens_on_failed_probe() {
        let b = Breaker::new(1, START, CAP);
        let t0 = Instant::now();
        b.record_failure_at(t0); // open; probe due at t0+10ms
        assert!(!b.allows_request_at(t0 + Duration::from_millis(9)));
        assert!(b.allows_request_at(t0 + Duration::from_millis(10)), "probe due");
        assert_eq!(b.half_opened_total(), 1);
        // Probe fails: re-open with the doubled wait (20ms).
        let t1 = t0 + Duration::from_millis(10);
        b.record_failure_at(t1);
        assert_eq!(b.state_at(t1), BreakerState::Open);
        assert_eq!(b.opened_total(), 2);
        assert!(!b.allows_request_at(t1 + Duration::from_millis(19)));
        assert!(b.allows_request_at(t1 + Duration::from_millis(20)));
        assert_eq!(b.half_opened_total(), 2);
    }

    #[test]
    fn successful_probe_closes_and_resets_the_schedule() {
        let b = Breaker::new(1, START, CAP);
        let mut t = Instant::now();
        // Fail through several probe rounds so the backoff has grown.
        for wait_ms in [10u64, 20, 40] {
            b.record_failure_at(t);
            t += Duration::from_millis(wait_ms);
            assert!(b.allows_request_at(t));
        }
        b.record_success();
        assert_eq!(b.state_at(t), BreakerState::Closed);
        assert_eq!(b.closed_total(), 1);
        // Next trip starts from the initial 10ms wait again.
        b.record_failure_at(t);
        assert!(!b.allows_request_at(t + Duration::from_millis(9)));
        assert!(b.allows_request_at(t + Duration::from_millis(10)));
    }

    #[test]
    fn trip_opens_immediately_and_probes_recover() {
        let b = Breaker::new(3, START, CAP);
        let t0 = Instant::now();
        b.trip_at(t0); // no failure streak needed
        assert_eq!(b.state_at(t0), BreakerState::Open);
        assert_eq!(b.opened_total(), 1);
        // Tripping an already-open breaker is a no-op.
        b.trip_at(t0);
        assert_eq!(b.opened_total(), 1);
        // The probe schedule still applies; a successful probe closes.
        assert!(b.allows_request_at(t0 + START));
        b.record_success();
        assert_eq!(b.state_at(t0 + START), BreakerState::Closed);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::Open.as_gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 2);
        assert_eq!(BreakerState::HalfOpen.as_str(), "half_open");
    }
}
