//! Keep-alive connection pools, one per backend.
//!
//! The router's hot path must not pay a TCP handshake per proxied
//! request, so each backend keeps a small stack of idle keep-alive
//! [`Client`]s. [`BackendPool::get`] pops one (or dials a fresh one) and
//! [`BackendPool::put`] returns it after a successful exchange. A
//! connection that saw any transport error is simply dropped — never
//! returned — so a poisoned stream (half-written request, desynced
//! response framing) can't contaminate a later request.

use std::sync::Mutex;
use std::time::Duration;

use hre_svc::Client;

/// Idle keep-alive connections retained per backend. More than the
/// worker count of a default `hre-svc` backend buys nothing.
pub const DEFAULT_POOL_CAP: usize = 8;

/// A pool of idle keep-alive connections to one backend.
pub struct BackendPool {
    addr: String,
    timeout: Duration,
    cap: usize,
    idle: Mutex<Vec<Client>>,
}

impl BackendPool {
    /// A pool dialing `addr` with `timeout` for connect/read/write,
    /// retaining at most `cap` idle connections.
    pub fn new(addr: &str, timeout: Duration, cap: usize) -> BackendPool {
        BackendPool {
            addr: addr.to_string(),
            timeout,
            cap: cap.max(1),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The backend address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// An idle pooled connection, or a freshly dialed one.
    pub fn get(&self) -> std::io::Result<Client> {
        if let Some(client) = self.idle.lock().unwrap().pop() {
            return Ok(client);
        }
        Client::connect(&self.addr, self.timeout)
    }

    /// Returns a healthy connection for reuse. Call only after a clean
    /// request/response exchange; on any transport error, drop the
    /// client instead.
    pub fn put(&self, client: Client) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < self.cap {
            idle.push(client);
        }
    }

    /// Drops all idle connections (e.g. after the breaker opens, so a
    /// recovered backend starts from fresh streams).
    pub fn clear(&self) {
        self.idle.lock().unwrap().clear();
    }

    /// Number of idle connections currently pooled.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hre_svc::http::{HttpConn, ReadOutcome, Response};
    use std::net::TcpListener;
    use std::time::Instant;

    /// A tiny server that answers every request with its path, forever.
    fn echo_server(listener: TcpListener) {
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut conn = HttpConn::new(stream, Duration::from_millis(10)).expect("conn");
                    loop {
                        match conn.read_request(Instant::now() + Duration::from_secs(5)) {
                            ReadOutcome::Request(req) => {
                                if Response::text(200, req.path.clone().into_bytes())
                                    .write_to(conn.stream(), false)
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            ReadOutcome::IdlePoll => continue,
                            _ => return,
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn reuses_returned_connections_and_respects_the_cap() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        echo_server(listener);

        let pool = BackendPool::new(&addr, Duration::from_secs(2), 2);
        let mut a = pool.get().expect("dial a");
        let mut b = pool.get().expect("dial b");
        let mut c = pool.get().expect("dial c");
        for (i, client) in [&mut a, &mut b, &mut c].into_iter().enumerate() {
            let resp = client.get(&format!("/{i}")).expect("get");
            assert_eq!(resp.body_text(), format!("/{i}"));
        }
        pool.put(a);
        pool.put(b);
        pool.put(c); // over cap: dropped
        assert_eq!(pool.idle_len(), 2);

        // A pooled connection still works (keep-alive survived).
        let mut reused = pool.get().expect("pooled");
        assert_eq!(pool.idle_len(), 1);
        assert_eq!(reused.get("/again").expect("get").body_text(), "/again");

        pool.clear();
        assert_eq!(pool.idle_len(), 1 - 1);
    }

    #[test]
    fn get_fails_fast_when_the_backend_is_down() {
        // Bind then drop: the port is (very likely) unreachable.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let pool = BackendPool::new(&addr, Duration::from_millis(200), 2);
        assert!(pool.get().is_err());
    }
}
