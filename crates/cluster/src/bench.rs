//! Closed-loop load generator for the cluster — behind `hre
//! bench-cluster` and the E20 experiment.
//!
//! Unlike the single-service generator (`hre_svc::bench`), the workload
//! here is a *set* of distinct canonical rings cycled round-robin, each
//! optionally rotated per request. That is the workload sharding is
//! about: W distinct rings that overflow one backend's LRU cache but fit
//! the combined capacity of N shards. The report therefore tracks which
//! backend answered each request (the router's `x-backend` header) so
//! scaling experiments can see the spread.

use crate::ElectRequest;
use hre_svc::Client;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct ClusterLoadOptions {
    /// Concurrent keep-alive connections to the router.
    pub connections: usize,
    /// Total requests to issue across all connections.
    pub requests: u64,
    /// Distinct base rings, cycled round-robin across requests.
    pub bases: Vec<ElectRequest>,
    /// Rotate each ring by the request index (distinct on the wire,
    /// same canonical entry — the cache-affinity workload).
    pub rotate: bool,
}

/// What a cluster load run observed.
#[derive(Clone, Debug, Default)]
pub struct ClusterLoadReport {
    /// Requests answered 200.
    pub ok: u64,
    /// Requests answered 422 (definitive spec violation).
    pub failed: u64,
    /// `X-Cache: HIT` responses among completed requests.
    pub cache_hits: u64,
    /// 503 backpressure responses absorbed by retrying.
    pub retried_busy: u64,
    /// Requests abandoned with every retry still answering 503.
    pub gave_up_busy: u64,
    /// Requests abandoned on transport errors or unexpected 5xx.
    pub errors: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-request latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Completed requests per answering backend (`x-backend` header).
    pub by_backend: BTreeMap<String, u64>,
}

impl ClusterLoadReport {
    /// The `p`-th percentile latency (0 < p <= 100), if any samples.
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil() as usize;
        Some(self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1])
    }

    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        let done = (self.ok + self.failed) as f64;
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }

    /// Fraction of completed requests that were cache hits.
    pub fn hit_rate(&self) -> f64 {
        let done = (self.ok + self.failed) as f64;
        if done > 0.0 {
            self.cache_hits as f64 / done
        } else {
            0.0
        }
    }

    /// The human-readable summary `hre bench-cluster` prints.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} ok + {} spec-failed in {:.3} s — {:.0} req/s\n",
            self.ok,
            self.failed,
            self.wall.as_secs_f64(),
            self.throughput()
        ));
        out.push_str(&format!(
            "cache hits {} ({:.0}%) | 503 retries {} | gave up busy {} | errors {}\n",
            self.cache_hits,
            self.hit_rate() * 100.0,
            self.retried_busy,
            self.gave_up_busy,
            self.errors
        ));
        if !self.by_backend.is_empty() {
            let spread: Vec<String> =
                self.by_backend.iter().map(|(b, n)| format!("{b}={n}")).collect();
            out.push_str(&format!("by backend: {}\n", spread.join(" ")));
        }
        if let (Some(p50), Some(p95), Some(p99)) =
            (self.percentile_us(50.0), self.percentile_us(95.0), self.percentile_us(99.0))
        {
            out.push_str(&format!("latency µs: p50 {p50} | p95 {p95} | p99 {p99}\n"));
        }
        out
    }
}

/// 503 retry attempts per request before giving up as "busy".
const MAX_BUSY_RETRIES: u32 = 50;

/// The wait a `Retry-After` header asks for — the server's hint in
/// seconds, capped so a benchmark doesn't sleep its wall-clock away
/// (same policy as `hre_svc::bench`).
fn retry_after_wait(header: Option<&str>) -> Duration {
    header
        .and_then(|v| v.parse::<u64>().ok())
        .map(|secs| Duration::from_secs(secs).min(Duration::from_millis(250)))
        .unwrap_or(Duration::from_millis(10))
        .max(Duration::from_millis(1))
}

/// Drives `opts.requests` requests at the router and gathers the report.
pub fn run_cluster_load(
    addr: &str,
    opts: &ClusterLoadOptions,
) -> std::io::Result<ClusterLoadReport> {
    if opts.bases.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cluster load needs at least one base ring",
        ));
    }
    let next = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..opts.connections.max(1) {
        let addr = addr.to_string();
        let opts = opts.clone();
        let next = Arc::clone(&next);
        threads.push(std::thread::spawn(move || worker(&addr, &opts, &next)));
    }
    let mut report = ClusterLoadReport::default();
    for t in threads {
        let part = t.join().map_err(|_| std::io::Error::other("load thread panicked"))??;
        report.ok += part.ok;
        report.failed += part.failed;
        report.cache_hits += part.cache_hits;
        report.retried_busy += part.retried_busy;
        report.gave_up_busy += part.gave_up_busy;
        report.errors += part.errors;
        report.latencies_us.extend(part.latencies_us);
        for (backend, n) in part.by_backend {
            *report.by_backend.entry(backend).or_insert(0) += n;
        }
    }
    report.wall = started.elapsed();
    report.latencies_us.sort_unstable();
    Ok(report)
}

/// One connection's share of the load.
fn worker(
    addr: &str,
    opts: &ClusterLoadOptions,
    next: &AtomicU64,
) -> std::io::Result<ClusterLoadReport> {
    let mut client = Client::connect(addr, Duration::from_secs(10))?;
    let mut part = ClusterLoadReport::default();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= opts.requests {
            return Ok(part);
        }
        let base = &opts.bases[(i as usize) % opts.bases.len()];
        let body = if opts.rotate {
            let mut labels = base.labels.clone();
            let d = (i as usize) % labels.len();
            labels.rotate_left(d);
            ElectRequest { labels, ..base.clone() }.to_json().to_string()
        } else {
            base.to_json().to_string()
        };
        // Retry 503s honoring Retry-After; reconnect on transport
        // errors (the router stays up through backend chaos, so a few
        // reconnect attempts ride out any blip).
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let t0 = Instant::now();
            let resp = match client.post_json("/elect", &body) {
                Ok(r) => r,
                Err(_) if attempts <= 3 => {
                    std::thread::sleep(Duration::from_millis(5));
                    client = Client::connect(addr, Duration::from_secs(10))?;
                    continue;
                }
                Err(_) => {
                    part.errors += 1;
                    break;
                }
            };
            match resp.status {
                200 | 422 => {
                    part.latencies_us.push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    if resp.status == 200 {
                        part.ok += 1;
                    } else {
                        part.failed += 1;
                    }
                    if resp.header("x-cache") == Some("HIT") {
                        part.cache_hits += 1;
                    }
                    if let Some(backend) = resp.header("x-backend") {
                        *part.by_backend.entry(backend.to_string()).or_insert(0) += 1;
                    }
                    break;
                }
                503 if attempts <= MAX_BUSY_RETRIES => {
                    part.retried_busy += 1;
                    std::thread::sleep(retry_after_wait(resp.header("retry-after")));
                }
                503 => {
                    part.gave_up_busy += 1;
                    break;
                }
                _ => {
                    part.errors += 1;
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bases_are_rejected() {
        let opts =
            ClusterLoadOptions { connections: 1, requests: 1, bases: Vec::new(), rotate: false };
        assert!(run_cluster_load("127.0.0.1:1", &opts).is_err());
    }

    #[test]
    fn report_math_holds() {
        let mut r = ClusterLoadReport {
            ok: 8,
            failed: 2,
            cache_hits: 5,
            latencies_us: vec![10, 20, 30, 40],
            wall: Duration::from_secs(2),
            ..Default::default()
        };
        r.by_backend.insert("a:1".into(), 6);
        r.by_backend.insert("b:2".into(), 4);
        assert!((r.throughput() - 5.0).abs() < 1e-9);
        assert!((r.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(r.percentile_us(50.0), Some(20));
        let pretty = r.pretty();
        assert!(pretty.contains("by backend: a:1=6 b:2=4"), "{pretty}");
        assert!(pretty.contains("50%"), "{pretty}");
    }
}
