//! The front-door router: one listener, N backends, rotation-affinity
//! routing, breaker-gated failover, and hedged retries.
//!
//! Request path for `POST /elect`:
//!
//! ```text
//!   client ──▶ router: parse & validate (400 on garbage, never forwarded)
//!                │ topology = one Arc snapshot for the whole request
//!                │ shard key = hash(canonical rotation of the labels)
//!                │ candidates = ring walk from the key, open breakers
//!                │              skipped (fail-open if all are open)
//!                ▼
//!          attempt thread ──POST /elect──▶ backend (pooled keep-alive)
//!                │
//!                ├─ response 200/422 ─▶ pass through (+ x-backend header)
//!                ├─ response 503 ─▶ failover to next candidate; the 503
//!                │                  (with its Retry-After) is returned
//!                │                  only if every candidate is busy
//!                ├─ transport error ─▶ breaker ticks, failover
//!                └─ silence past the hedge threshold ─▶ fire a duplicate
//!                   at the next candidate, first answer wins
//! ```
//!
//! Hedging is safe here in a way it is not for general RPC: elections
//! are deterministic (round-robin scheduler, canonical-rotation cache)
//! and idempotent, so the two raced responses are byte-identical — the
//! client cannot observe which one won. The hedge threshold adapts per
//! backend: `max(hedge_min, 2 × observed p95)` via
//! [`BackendSlot::hedge_threshold`].
//!
//! Since PR 6 the backend set is **dynamic**: everything per-backend
//! lives in an immutable [`Topology`] snapshot behind an
//! `RwLock<Arc<..>>`, and the control plane's elected coordinator swaps
//! it via [`RouterHandle::update_backends`]. Pushes are fenced by epoch
//! — a push below the current epoch is a deposed coordinator talking
//! and is refused. Each request grabs one snapshot up front, so a swap
//! mid-request cannot mix generations. With [`ClusterConfig::dynamic`]
//! set the router may start with no backends at all and answers `502`
//! until the first config push lands.
//!
//! A background prober hits every backend's `GET /healthz` each
//! `health_interval`; probe outcomes feed the same breakers as live
//! traffic, and open breakers pace their probes on the shared
//! capped-backoff schedule ([`hre_runtime::Backoff`]).

use crate::hash::shard_key;
use crate::metrics::ClusterMetrics;
use crate::topology::{BackendSlot, Topology};
use crossbeam::channel::{bounded, Receiver, Sender};
use hre_runtime::trace::{self, FlightRecorder, SpanAttrs, SpanId, Stage, TraceId};
use hre_runtime::DEFAULT_TRACE_CAP;
use hre_svc::http::{HttpConn, ReadOutcome, Request, Response, DEFAULT_MAX_BODY};
use hre_svc::json::{self, Json};
use hre_svc::{error_json, tracewire, Client, ClientResponse, ElectRequest};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router configuration (defaults match `hre cluster-route`'s flags).
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend `host:port` addresses. Must be non-empty unless
    /// [`ClusterConfig::dynamic`] is set; duplicates and the router's
    /// own address are rejected at startup.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub vnodes: usize,
    /// Connect/read/write timeout for one proxied attempt.
    pub timeout: Duration,
    /// Client-facing budget per request; `504` past it.
    pub deadline: Duration,
    /// Floor for the adaptive hedge threshold.
    pub hedge_min: Duration,
    /// Consecutive transport failures that trip a breaker open.
    pub failure_threshold: u32,
    /// First open-state probe delay (doubles up to `probe_cap`).
    pub probe_start: Duration,
    /// Probe-delay cap.
    pub probe_cap: Duration,
    /// How often the background prober sweeps the backends.
    pub health_interval: Duration,
    /// Idle keep-alive connections retained per backend.
    pub pool_cap: usize,
    /// Largest request body accepted (larger ⇒ `413`).
    pub max_body: usize,
    /// Flight-recorder capacity in spans (0 disables tracing).
    pub trace_cap: usize,
    /// Requests slower than this log their span tree to stderr
    /// (`None` disables the slow-request log).
    pub slow_threshold: Option<Duration>,
    /// Accept an empty initial backend list and serve `502` until the
    /// control plane pushes the first topology via
    /// [`RouterHandle::update_backends`].
    pub dynamic: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            vnodes: crate::hash::DEFAULT_VNODES,
            timeout: Duration::from_secs(2),
            deadline: Duration::from_secs(5),
            hedge_min: Duration::from_millis(30),
            failure_threshold: 3,
            probe_start: Duration::from_millis(50),
            probe_cap: Duration::from_secs(2),
            health_interval: Duration::from_millis(100),
            pool_cap: crate::pool::DEFAULT_POOL_CAP,
            max_body: DEFAULT_MAX_BODY,
            trace_cap: DEFAULT_TRACE_CAP,
            slow_threshold: Some(Duration::from_secs(1)),
            dynamic: false,
        }
    }
}

/// How often blocked loops wake up to check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Everything the connection threads and the prober share.
struct Shared {
    cfg: ClusterConfig,
    /// The live topology generation. Swapped whole by config pushes;
    /// readers clone the `Arc` once and never see a mixed generation.
    topology: RwLock<Arc<Topology>>,
    metrics: ClusterMetrics,
    recorder: Arc<FlightRecorder>,
    shutdown: AtomicBool,
}

impl Shared {
    /// One consistent snapshot of the backend set.
    fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.read().unwrap())
    }
}

/// A running router. Call [`RouterHandle::shutdown`] to drain.
pub struct RouterHandle {
    /// The address actually bound (resolves port 0).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<u64>,
    prober: JoinHandle<()>,
}

/// Final per-backend counters reported when the router drains.
#[derive(Clone, Debug)]
pub struct BackendSummary {
    /// Backend address.
    pub addr: String,
    /// Proxied attempts (live + hedged).
    pub requests: u64,
    /// Transport-level failures.
    pub errors: u64,
    /// 503-busy answers.
    pub busy: u64,
    /// Hedges fired because this backend stalled.
    pub hedges: u64,
    /// Requests rerouted away from this backend.
    pub failovers: u64,
    /// Breaker transitions over the router's lifetime.
    pub breaker_opens: u64,
    /// Half-open probes admitted.
    pub breaker_half_opens: u64,
    /// Recoveries to closed.
    pub breaker_closes: u64,
}

/// Final counters reported when the router drains.
#[derive(Clone, Debug)]
pub struct RouterSummary {
    /// Client-facing requests accepted.
    pub requests: u64,
    /// Client-facing requests that exhausted every backend.
    pub request_errors: u64,
    /// Hedged duplicates whose response won the race.
    pub hedge_wins: u64,
    /// Topology epoch at drain time.
    pub epoch: u64,
    /// Per-backend counters for the final topology, in ring order.
    pub backends: Vec<BackendSummary>,
}

impl std::fmt::Display for RouterSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "routed {} requests | exhausted {} | hedge wins {} | epoch {}",
            self.requests, self.request_errors, self.hedge_wins, self.epoch
        )?;
        for b in &self.backends {
            writeln!(
                f,
                "  {}: {} attempts, {} errors, {} busy, {} hedges, {} failovers, \
                 breaker {}o/{}h/{}c",
                b.addr,
                b.requests,
                b.errors,
                b.busy,
                b.hedges,
                b.failovers,
                b.breaker_opens,
                b.breaker_half_opens,
                b.breaker_closes,
            )?;
        }
        Ok(())
    }
}

/// Rejects duplicate backend addresses and entries that point at the
/// router itself (`local` holds the router's configured and bound
/// addresses). A self-referential entry would make the router proxy to
/// its own front door — an infinite loop the old static validation
/// silently allowed.
fn validate_backends(backends: &[String], local: &[String]) -> Result<(), String> {
    for (i, b) in backends.iter().enumerate() {
        if backends[..i].contains(b) {
            return Err(format!("duplicate backend address {b}: each backend may be listed once"));
        }
        if local.iter().any(|l| l == b) {
            return Err(format!(
                "backend {b} is the router's own address: a router cannot route to itself"
            ));
        }
    }
    Ok(())
}

fn invalid(why: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, why)
}

/// Binds the listener and spins up the acceptor and the health prober.
///
/// Startup validation: a static router (the default) needs at least one
/// backend; duplicates are rejected before the bind, self-referential
/// entries (matching either the configured or the resolved listen
/// address) right after it.
pub fn start(cfg: ClusterConfig) -> std::io::Result<RouterHandle> {
    if !cfg.dynamic && cfg.backends.is_empty() {
        return Err(invalid("cluster needs at least one backend".into()));
    }
    // Duplicates need no bound address — catch them before taking the port.
    validate_backends(&cfg.backends, &[]).map_err(invalid)?;
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    validate_backends(&cfg.backends, &[cfg.addr.clone(), addr.to_string()]).map_err(invalid)?;

    let shared = Arc::new(Shared {
        topology: RwLock::new(Arc::new(Topology::initial(&cfg))),
        metrics: ClusterMetrics::new(),
        recorder: FlightRecorder::new(cfg.trace_cap),
        cfg,
        shutdown: AtomicBool::new(false),
    });
    let shutdown = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let shared = Arc::clone(&shared);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || acceptor_loop(listener, &shared, &shutdown))
    };
    let prober = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || prober_loop(&shared))
    };

    Ok(RouterHandle { addr, shared, shutdown, acceptor, prober })
}

impl RouterHandle {
    /// The flag that triggers a graceful drain — hand it to
    /// `signal_hook::flag::register` so SIGTERM/SIGINT stop the router.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Current metrics, rendered as the `/metrics` endpoint would.
    pub fn metrics_text(&self) -> String {
        let topo = self.shared.topology();
        self.shared.metrics.render_prometheus(&topo, &self.shared.recorder.stage_snapshots())
    }

    /// The router's flight recorder (for tests and embedding callers).
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.recorder)
    }

    /// Client-facing requests accepted so far — a live progress counter,
    /// so chaos harnesses can trigger faults *mid-load* instead of after
    /// a wall-clock sleep that a faster engine silently outruns.
    pub fn requests_seen(&self) -> u64 {
        self.shared.metrics.requests.load(Ordering::Relaxed)
    }

    /// The control-plane epoch of the active topology.
    pub fn epoch(&self) -> u64 {
        self.shared.topology().epoch
    }

    /// The backend addresses in the active topology, in ring order.
    pub fn backends(&self) -> Vec<String> {
        self.shared.topology().slots.iter().map(|s| s.addr().to_string()).collect()
    }

    /// The backend address that owns a label sequence (ignoring health)
    /// — the same placement the request path uses.
    pub fn primary_backend(&self, labels: &[u64]) -> String {
        let topo = self.shared.topology();
        let i = topo.ring.primary(shard_key(labels)).expect("non-empty ring");
        topo.slots[i].addr().to_string()
    }

    /// A cloneable controller for the reconfiguration surface — what a
    /// control-plane callback captures. The callback must outlive any
    /// single borrow of the handle (and [`RouterHandle::shutdown`]
    /// consumes the handle), so the controller carries its own reference
    /// to the router internals.
    pub fn controller(&self) -> RouterController {
        RouterController { shared: Arc::clone(&self.shared), addr: self.addr }
    }

    /// Applies a control-plane config push; see
    /// [`RouterController::update_backends`].
    pub fn update_backends(&self, epoch: u64, backends: &[String]) -> Result<(), String> {
        self.controller().update_backends(epoch, backends)
    }

    /// Force-opens a dead member's breaker; see
    /// [`RouterController::trip_backend`].
    pub fn trip_backend(&self, addr: &str) -> bool {
        self.controller().trip_backend(addr)
    }

    /// Requests a drain and joins the acceptor (which joins every
    /// connection thread) and the prober.
    pub fn shutdown(self) -> RouterSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.acceptor.join().expect("acceptor panicked");
        self.prober.join().expect("prober panicked");
        let m = &self.shared.metrics;
        let topo = self.shared.topology();
        let backends = topo
            .slots
            .iter()
            .map(|slot| BackendSummary {
                addr: slot.addr().to_string(),
                requests: slot.metrics.requests.load(Ordering::Relaxed),
                errors: slot.metrics.errors.load(Ordering::Relaxed),
                busy: slot.metrics.busy.load(Ordering::Relaxed),
                hedges: slot.metrics.hedges.load(Ordering::Relaxed),
                failovers: slot.metrics.failovers.load(Ordering::Relaxed),
                breaker_opens: slot.breaker.opened_total(),
                breaker_half_opens: slot.breaker.half_opened_total(),
                breaker_closes: slot.breaker.closed_total(),
            })
            .collect();
        RouterSummary {
            requests: m.requests.load(Ordering::Relaxed),
            request_errors: m.request_errors.load(Ordering::Relaxed),
            hedge_wins: m.hedge_wins.load(Ordering::Relaxed),
            epoch: topo.epoch,
            backends,
        }
    }

    /// Blocks until `flag` (typically wired to SIGTERM/SIGINT) flips,
    /// then drains. Used by `hre cluster-route`.
    pub fn run_until(self, flag: &AtomicBool) -> RouterSummary {
        while !flag.load(Ordering::Relaxed) {
            std::thread::sleep(POLL);
        }
        self.shutdown()
    }
}

/// The router's reconfiguration surface, detached from the owning
/// [`RouterHandle`] so control-plane callbacks (`on_config`/`on_death`)
/// can hold it while the handle itself stays free to drain.
#[derive(Clone)]
pub struct RouterController {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl std::fmt::Debug for RouterController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterController").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl RouterController {
    /// Applies a control-plane config push: swap the topology to
    /// `backends` at `epoch`. Slots shared with the previous generation
    /// keep their breaker state, warm pools, and counters
    /// ([`Topology::successor`]).
    ///
    /// **Epoch fencing**: a push whose epoch is *below* the active one
    /// comes from a deposed coordinator and is refused. The active
    /// epoch re-pushed (same backend set or not) is accepted — that is
    /// the live coordinator's periodic refresh, and it must be able to
    /// repair a member that missed the original push. Every push is
    /// recorded as a [`Stage::Reconfigure`] root span, accepted or not.
    pub fn update_backends(&self, epoch: u64, backends: &[String]) -> Result<(), String> {
        let t0 = Instant::now();
        let result = (|| {
            validate_backends(backends, &[self.shared.cfg.addr.clone(), self.addr.to_string()])?;
            if !self.shared.cfg.dynamic && backends.is_empty() {
                return Err("refusing to reconfigure a static router to zero backends".into());
            }
            let mut slot = self.shared.topology.write().unwrap();
            if epoch < slot.epoch {
                ClusterMetrics::inc(&self.shared.metrics.stale_configs);
                return Err(format!(
                    "stale config push: epoch {epoch} is behind the active epoch {}",
                    slot.epoch
                ));
            }
            *slot = Arc::new(slot.successor(epoch, backends, &self.shared.cfg));
            ClusterMetrics::inc(&self.shared.metrics.reconfigures);
            Ok(())
        })();
        let rec = &self.shared.recorder;
        let trace_id = rec.mint_trace();
        let root = rec.next_span_id();
        rec.record_span_with_id(
            root,
            trace_id,
            SpanId::NONE,
            Stage::Reconfigure,
            t0,
            Instant::now(),
            SpanAttrs { a: epoch, b: result.is_ok() as u64, err: result.is_err(), root: true },
        );
        result
    }

    /// Force-open the breaker for `addr` — the control plane declared
    /// the member dead (missed heartbeats), so stop sending it live
    /// traffic *now* instead of burning `failure_threshold` real
    /// requests discovering the hole. Returns whether the address is in
    /// the active topology.
    pub fn trip_backend(&self, addr: &str) -> bool {
        let topo = self.shared.topology();
        match topo.slot_for(addr) {
            Some(slot) => {
                slot.breaker.trip();
                slot.pool.clear();
                true
            }
            None => false,
        }
    }
}

/// Accepts connections until shutdown; returns the count accepted.
fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>, shutdown: &AtomicBool) -> u64 {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted = 0u64;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                accepted += 1;
                let shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || connection_loop(stream, &shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        if conns.len() > 32 {
            let (done, live): (Vec<_>, Vec<_>) = conns.into_iter().partition(|h| h.is_finished());
            for h in done {
                let _ = h.join();
            }
            conns = live;
        }
    }
    shared.shutdown.store(true, Ordering::SeqCst);
    for h in conns {
        let _ = h.join();
    }
    accepted
}

/// Serves one client connection: keep-alive request loop until the peer
/// closes, an error, or shutdown.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(mut conn) = HttpConn::new(stream, POLL) else { return };
    conn.set_max_body(shared.cfg.max_body);
    loop {
        match conn.read_request(Instant::now() + Duration::from_secs(5)) {
            ReadOutcome::IdlePoll => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(why) => {
                let _ = Response::json(400, error_json(&why)).write_to(conn.stream(), true);
                return;
            }
            ReadOutcome::TooLarge { declared, drained } => {
                let why = format!(
                    "request body of {declared} bytes exceeds the {} byte limit",
                    shared.cfg.max_body
                );
                let close = !drained || shared.shutdown.load(Ordering::Relaxed);
                let resp = Response::json(413, error_json(&why));
                if resp.write_to(conn.stream(), close).is_err() || close {
                    return;
                }
            }
            ReadOutcome::Request(req) => {
                let close = req.wants_close() || shared.shutdown.load(Ordering::Relaxed);
                let resp = route(&req, shared);
                if resp.write_to(conn.stream(), close).is_err() || close {
                    return;
                }
            }
        }
    }
}

/// Dispatches one parsed request.
fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/elect") => handle_elect(req, shared),
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => {
            let topo = shared.topology();
            Response::text(
                200,
                shared.metrics.render_prometheus(&topo, &shared.recorder.stage_snapshots()),
            )
        }
        ("GET", "/cluster") => Response::json(200, cluster_doc(shared).to_string()),
        ("GET", path) if path.starts_with("/trace/") => {
            handle_trace_merged(&path["/trace/".len()..], shared)
        }
        ("POST", _) | ("GET", _) => Response::json(404, error_json("no such endpoint")),
        _ => Response::json(405, error_json("method not allowed")),
    }
}

/// The router's trace read side. `/trace/recent` lists the router's own
/// root spans; `/trace/<id>` additionally fans out to every backend's
/// `/trace/<id>` and merges whatever spans they still retain, tagging
/// each span's `src` with who recorded it — that is how one client
/// request becomes one connected tree spanning router and backends.
fn handle_trace_merged(tail: &str, shared: &Arc<Shared>) -> Response {
    if tail == "recent" {
        return hre_svc::server::handle_trace(tail, &shared.recorder);
    }
    let Some(trace_id) = TraceId::from_hex(tail) else {
        return Response::json(400, error_json("trace id must be 1-16 hex digits, nonzero"));
    };
    let mut spans = shared.recorder.trace_spans(trace_id);
    for s in &mut spans {
        s.src = "cluster".into();
    }
    let fetch_timeout = shared.cfg.timeout.min(Duration::from_millis(500));
    let topo = shared.topology();
    for slot in &topo.slots {
        // Fresh connections, not the proxy pools: a trace fetch must not
        // evict a request path's keep-alive connection mid-race.
        let fetched = Client::connect(slot.addr(), fetch_timeout)
            .and_then(|mut c| c.get(&format!("/trace/{}", trace_id.to_hex())));
        if let Ok(resp) = fetched {
            if resp.status == 200 {
                if let Ok(remote) = tracewire::spans_from_doc(&resp.body_text()) {
                    spans.extend(remote.into_iter().map(|mut s| {
                        s.src = slot.addr().to_string();
                        s
                    }));
                }
            }
        }
    }
    if spans.is_empty() {
        return Response::json(
            404,
            error_json("no spans retained for that trace (evicted, or never seen)"),
        );
    }
    Response::json(200, tracewire::trace_doc(trace_id, &spans))
}

/// The `GET /cluster` topology document.
fn cluster_doc(shared: &Shared) -> Json {
    let topo = shared.topology();
    let backends: Vec<Json> = topo
        .slots
        .iter()
        .map(|slot| {
            let bm = &slot.metrics;
            let br = &slot.breaker;
            json::obj(vec![
                ("addr", Json::Str(slot.addr().to_string())),
                ("state", Json::Str(br.peek_state().as_str().into())),
                ("requests", Json::Num(bm.requests.load(Ordering::Relaxed) as i128)),
                ("errors", Json::Num(bm.errors.load(Ordering::Relaxed) as i128)),
                ("busy", Json::Num(bm.busy.load(Ordering::Relaxed) as i128)),
                ("hedges", Json::Num(bm.hedges.load(Ordering::Relaxed) as i128)),
                ("failovers", Json::Num(bm.failovers.load(Ordering::Relaxed) as i128)),
                ("breaker_opens", Json::Num(br.opened_total() as i128)),
            ])
        })
        .collect();
    json::obj(vec![
        ("epoch", Json::Num(topo.epoch as i128)),
        ("vnodes", Json::Num(topo.ring.vnodes() as i128)),
        ("backends", Json::Arr(backends)),
    ])
}

/// One proxied attempt's outcome: backend index (within the request's
/// topology snapshot), transport result, and wall-clock latency.
type Attempt = (usize, std::io::Result<ClientResponse>, Duration);

/// Fires one attempt on its own thread; the result lands in `tx` (the
/// receiver may be gone if another attempt already won — that's fine).
/// The attempt's span id is minted before the thread launches and sent
/// to the backend as `x-parent-span`, so the backend's own root span
/// hangs under this attempt in the merged tree; the span itself is
/// recorded when the attempt resolves — even if it resolved too late to
/// matter. The attempt holds its own `Arc` to the slot, so a topology
/// swap mid-attempt cannot pull the pool out from under it.
fn spawn_attempt(
    shared: Arc<Shared>,
    slot: Arc<BackendSlot>,
    idx: usize,
    body: Arc<Vec<u8>>,
    tx: Sender<Attempt>,
    trace_id: TraceId,
    root: SpanId,
) {
    ClusterMetrics::inc(&slot.metrics.requests);
    let span = shared.recorder.next_span_id();
    std::thread::spawn(move || {
        let t0 = Instant::now();
        let result = (|| {
            let mut client = slot.pool.get()?;
            let resp = client.request_with_headers(
                "POST",
                "/elect",
                &[("x-trace-id", &trace_id.to_hex()), ("x-parent-span", &span.to_hex())],
                Some(&body),
            )?;
            slot.pool.put(client);
            Ok(resp)
        })();
        let err = match &result {
            Ok(resp) => resp.status >= 500,
            Err(_) => true,
        };
        shared.recorder.record_span_with_id(
            span,
            trace_id,
            root,
            Stage::Attempt,
            t0,
            Instant::now(),
            SpanAttrs { a: idx as u64, err, ..Default::default() },
        );
        let _ = tx.send((idx, result, t0.elapsed()));
    });
}

/// The `POST /elect` front door: adopt or mint the trace, validate,
/// pick candidates, forward with failover and hedging; the root
/// `request` span and the slow-request log wrap the whole thing.
fn handle_elect(req: &Request, shared: &Arc<Shared>) -> Response {
    let started = Instant::now();
    ClusterMetrics::inc(&shared.metrics.requests);
    let rec = &shared.recorder;
    let trace_id =
        req.header("x-trace-id").and_then(TraceId::from_hex).unwrap_or_else(|| rec.mint_trace());
    let remote_parent =
        req.header("x-parent-span").and_then(SpanId::from_hex).unwrap_or(SpanId::NONE);
    let root = rec.next_span_id();

    // Validate locally so garbage is never forwarded; the error body is
    // byte-identical to what a backend would have answered.
    let resp = match ElectRequest::from_json(&req.body) {
        Ok(request) => {
            let topo = shared.topology();
            if topo.is_empty() {
                ClusterMetrics::inc(&shared.metrics.request_errors);
                Response::json(
                    502,
                    error_json("no backends configured (awaiting control-plane config)"),
                )
            } else {
                let resp =
                    forward(shared, &topo, &request.labels, &req.body, started, trace_id, root);
                shared.metrics.request_latency.record(started.elapsed());
                resp
            }
        }
        Err(why) => Response::json(400, error_json(&why)),
    };

    let end = Instant::now();
    rec.record_span_with_id(
        root,
        trace_id,
        remote_parent,
        Stage::Request,
        started,
        end,
        SpanAttrs { err: resp.status >= 400, root: true, ..Default::default() },
    );
    if let Some(threshold) = shared.cfg.slow_threshold {
        if end.duration_since(started) >= threshold {
            eprintln!(
                "slow request trace={} {} over {threshold:?}:\n{}",
                trace_id.to_hex(),
                trace::fmt_dur_us(end.duration_since(started).as_micros() as u64),
                trace::render_tree(&rec.trace_spans(trace_id)),
            );
        }
    }
    resp.with_header("x-trace-id", trace_id.to_hex())
}

/// Candidate selection + the failover/hedge race, all against one
/// topology snapshot.
fn forward(
    shared: &Arc<Shared>,
    topo: &Arc<Topology>,
    labels: &[u64],
    body: &[u8],
    started: Instant,
    trace_id: TraceId,
    root: SpanId,
) -> Response {
    let rec = &shared.recorder;
    let hash_start = Instant::now();
    let order = topo.ring.preference_order(shard_key(labels));
    rec.record_span(
        trace_id,
        root,
        Stage::Hash,
        hash_start,
        Instant::now(),
        SpanAttrs { a: order[0] as u64, b: order.len() as u64, ..Default::default() },
    );
    // Skip open breakers; if that leaves nobody, fail open and try the
    // full ring anyway (a probe may be overdue, and refusing outright
    // guarantees failure while trying merely risks it).
    let breaker_start = Instant::now();
    let mut candidates: Vec<usize> =
        order.iter().copied().filter(|&i| topo.slots[i].breaker.allows_request()).collect();
    if candidates.is_empty() {
        candidates = order.clone();
    }
    rec.record_span(
        trace_id,
        root,
        Stage::BreakerCheck,
        breaker_start,
        Instant::now(),
        SpanAttrs { a: candidates.len() as u64, b: order.len() as u64, ..Default::default() },
    );
    for &skipped in order.iter().filter(|i| !candidates.contains(i)) {
        ClusterMetrics::inc(&topo.slots[skipped].metrics.failovers);
    }

    let deadline = started + shared.cfg.deadline;
    let body = Arc::new(body.to_vec());
    let (tx, rx): (Sender<Attempt>, Receiver<Attempt>) = bounded(candidates.len().max(1));

    let mut next = 0usize; // next candidate to launch
    let mut in_flight = 0usize;
    let mut current = candidates[0]; // most recently launched (hedge target)
    let mut hedged: Vec<usize> = Vec::new(); // launched as hedges
    let mut last_answer: Option<Response> = None; // best non-2xx seen

    spawn_attempt(
        Arc::clone(shared),
        Arc::clone(&topo.slots[candidates[next]]),
        candidates[next],
        Arc::clone(&body),
        tx.clone(),
        trace_id,
        root,
    );
    next += 1;
    in_flight += 1;

    loop {
        let now = Instant::now();
        if now >= deadline {
            ClusterMetrics::inc(&shared.metrics.request_errors);
            return Response::json(504, error_json("cluster deadline expired"));
        }
        let remaining = deadline.saturating_duration_since(now);
        // While exactly one attempt is live and another candidate is
        // available, silence past the adaptive threshold triggers a
        // hedge; otherwise just wait out the deadline.
        let wait = if in_flight == 1 && next < candidates.len() {
            topo.slots[current].hedge_threshold(shared.cfg.hedge_min).min(remaining)
        } else {
            remaining
        };
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok((idx, Ok(resp), elapsed)) => {
                in_flight -= 1;
                topo.slots[idx].metrics.latency.record(elapsed);
                match resp.status {
                    503 => {
                        // Alive but saturated: not a breaker event.
                        topo.slots[idx].breaker.record_success();
                        ClusterMetrics::inc(&topo.slots[idx].metrics.busy);
                        last_answer = Some(pass_through(&resp, topo.slots[idx].addr()));
                    }
                    status => {
                        topo.slots[idx].breaker.record_success();
                        if status >= 500 {
                            // Unexpected backend failure: surface it only
                            // if nobody else can answer.
                            ClusterMetrics::inc(&topo.slots[idx].metrics.errors);
                            last_answer = Some(pass_through(&resp, topo.slots[idx].addr()));
                        } else {
                            // 200 (elected) or 422 (spec violated): a
                            // definitive answer — first one wins.
                            if hedged.contains(&idx) {
                                ClusterMetrics::inc(&shared.metrics.hedge_wins);
                            }
                            return pass_through(&resp, topo.slots[idx].addr());
                        }
                    }
                }
            }
            Ok((idx, Err(_), _)) => {
                in_flight -= 1;
                topo.slots[idx].breaker.record_failure();
                topo.slots[idx].pool.clear();
                ClusterMetrics::inc(&topo.slots[idx].metrics.errors);
                ClusterMetrics::inc(&topo.slots[idx].metrics.failovers);
            }
            Err(_) => {
                // recv timeout: either the hedge threshold or just a
                // deadline-bounded wait. Hedge if that's what tripped.
                if in_flight == 1 && next < candidates.len() {
                    ClusterMetrics::inc(&topo.slots[current].metrics.hedges);
                    rec.record_event(trace_id, root, Stage::Hedge, candidates[next] as u64, 0);
                    hedged.push(candidates[next]);
                    current = candidates[next];
                    spawn_attempt(
                        Arc::clone(shared),
                        Arc::clone(&topo.slots[candidates[next]]),
                        candidates[next],
                        Arc::clone(&body),
                        tx.clone(),
                        trace_id,
                        root,
                    );
                    next += 1;
                    in_flight += 1;
                }
                continue;
            }
        }
        // An attempt resolved without a definitive answer: launch the
        // next candidate, or give up when none remain and none are live.
        if in_flight == 0 {
            if next < candidates.len() {
                current = candidates[next];
                rec.record_event(trace_id, root, Stage::Failover, candidates[next] as u64, 0);
                spawn_attempt(
                    Arc::clone(shared),
                    Arc::clone(&topo.slots[candidates[next]]),
                    candidates[next],
                    Arc::clone(&body),
                    tx.clone(),
                    trace_id,
                    root,
                );
                next += 1;
                in_flight += 1;
            } else {
                return match last_answer {
                    // Every backend answered busy (or 5xx): relay the
                    // last answer so the client sees the Retry-After.
                    Some(resp) => resp,
                    None => {
                        ClusterMetrics::inc(&shared.metrics.request_errors);
                        Response::json(502, error_json("no backend reachable"))
                    }
                };
            }
        }
    }
}

/// Relays a backend response to the client, tagging which backend
/// answered and preserving the headers clients act on.
fn pass_through(resp: &ClientResponse, backend: &str) -> Response {
    let mut out =
        Response::json(resp.status, resp.body_text()).with_header("x-backend", backend.to_string());
    for name in ["retry-after", "x-cache"] {
        if let Some(v) = resp.header(name) {
            out = out.with_header(name, v.to_string());
        }
    }
    out
}

/// Sweeps every backend's `GET /healthz` each `health_interval`;
/// outcomes feed the breakers (open breakers admit probes only when the
/// capped backoff says one is due). Each sweep works off a fresh
/// topology snapshot, so new members are probed and removed ones are
/// not.
fn prober_loop(shared: &Arc<Shared>) {
    let probe_timeout = shared.cfg.timeout.min(Duration::from_millis(500));
    while !shared.shutdown.load(Ordering::Relaxed) {
        let topo = shared.topology();
        for slot in &topo.slots {
            if !slot.breaker.allows_request() {
                continue; // open, next probe not due yet
            }
            let healthy = Client::connect(slot.addr(), probe_timeout)
                .and_then(|mut c| c.get("/healthz"))
                .map(|r| r.status == 200)
                .unwrap_or(false);
            if healthy {
                slot.breaker.record_success();
            } else {
                slot.breaker.record_failure();
                slot.pool.clear();
            }
        }
        let mut slept = Duration::ZERO;
        while slept < shared.cfg.health_interval {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let step = POLL.min(shared.cfg.health_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}
