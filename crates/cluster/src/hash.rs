//! Rotation-affinity consistent hashing: which backend owns a ring.
//!
//! The shard key of a request is a hash of the **canonical rotation**
//! (Booth least rotation, via `hre-words`) of its label sequence, so all
//! `n` rotations of a labeled ring — the same ring, re-indexed — map to
//! one key and therefore one backend. That is what lets the backends'
//! canonical-rotation LRU caches keep their hit rates as the cluster
//! scales out: a rotation workload that is one cache entry on one node
//! is still one cache entry on N nodes.
//!
//! The backend ring is classic consistent hashing: each backend owns
//! `vnodes` pseudo-random points on the `u64` circle; a key belongs to
//! the first point clockwise. Adding or removing one of N backends
//! therefore remaps only the arcs owned by that backend — about `1/N`
//! of the keyspace (property-tested at ≤ 2.5/N with the default vnode
//! count) — so a topology change does not flush every backend's cache.
//!
//! Hashing uses `DefaultHasher::new()`, which is keyed with fixed
//! constants: deterministic across processes and runs, so the router,
//! the CLI's route explainer, and the tests all agree on placement.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Default number of virtual nodes per backend. High enough that each
/// backend's share of the circle concentrates near `1/N` (relative
/// spread ~`1/√vnodes`), low enough that ring construction and lookup
/// stay trivially cheap.
pub const DEFAULT_VNODES: usize = 128;

/// Deterministic 64-bit hash of anything hashable.
fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// The shard key of a label sequence: a hash of its canonical (least)
/// rotation. Rotation-invariant by construction.
pub fn shard_key(labels: &[u64]) -> u64 {
    hash64(&hre_words::canonical_rotation(labels))
}

/// A consistent-hash ring over named backends.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, backend index)` sorted by point.
    points: Vec<(u64, usize)>,
    /// Backend names (addresses), in configuration order.
    backends: Vec<String>,
    vnodes: usize,
}

impl HashRing {
    /// Builds the ring: `vnodes` points per backend, placed by hashing
    /// `(backend name, replica index)`.
    pub fn new(backends: &[String], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backends.len() * vnodes);
        for (i, name) in backends.iter().enumerate() {
            for replica in 0..vnodes {
                points.push((hash64(&(name.as_str(), replica as u64)), i));
            }
        }
        points.sort_unstable();
        HashRing { points, backends: backends.to_vec(), vnodes }
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// `true` when the ring has no backends.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Backend names, in configuration order.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Virtual nodes per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index (into [`HashRing::backends`]) of the backend owning `key`:
    /// the first ring point clockwise from the key.
    pub fn primary(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(p, _)| p < key);
        Some(self.points[at % self.points.len()].1)
    }

    /// All backends in ring-walk order from `key`: the primary first,
    /// then each further backend in the order its first point appears
    /// clockwise. This is the failover/hedging preference order —
    /// stable for a fixed topology, different keys spread their
    /// failover load across different successors.
    pub fn preference_order(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends.len());
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut seen = vec![false; self.backends.len()];
        for step in 0..self.points.len() {
            let (_, b) = self.points[(start + step) % self.points.len()];
            if !seen[b] {
                seen[b] = true;
                order.push(b);
                if order.len() == self.backends.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:8080")).collect()
    }

    #[test]
    fn shard_key_is_rotation_invariant() {
        let base = [1u64, 3, 1, 3, 2, 2, 1, 2];
        let key = shard_key(&base);
        for d in 1..base.len() {
            let mut rot = base.to_vec();
            rot.rotate_left(d);
            assert_eq!(shard_key(&rot), key, "rotation {d}");
        }
        assert_ne!(shard_key(&[1, 2, 2]), shard_key(&[1, 2, 3]));
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = HashRing::new(&names(3), 64);
        let ring2 = HashRing::new(&names(3), 64);
        for k in 0..1000u64 {
            let key = k.wrapping_mul(0x9e3779b97f4a7c15);
            assert_eq!(ring.primary(key), ring2.primary(key));
            assert!(ring.primary(key).unwrap() < 3);
        }
    }

    #[test]
    fn preference_order_is_a_permutation_starting_at_the_primary() {
        let ring = HashRing::new(&names(5), 32);
        for k in 0..200u64 {
            let key = k.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
            let order = ring.preference_order(key);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(order[0], ring.primary(key).unwrap());
        }
    }

    #[test]
    fn load_spreads_roughly_evenly() {
        let n = 4;
        let ring = HashRing::new(&names(n), DEFAULT_VNODES);
        let mut counts = vec![0u64; n];
        for k in 0..10_000u64 {
            counts[ring.primary(k.wrapping_mul(0x9e3779b97f4a7c15)).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_000..=5_000).contains(&c), "backend {i} owns {c}/10000 keys: {counts:?}");
        }
    }

    #[test]
    fn empty_ring_has_no_owner() {
        let ring = HashRing::new(&[], 16);
        assert!(ring.is_empty());
        assert_eq!(ring.primary(42), None);
        assert!(ring.preference_order(42).is_empty());
    }
}
