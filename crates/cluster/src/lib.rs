//! # hre-cluster — the sharded election cluster
//!
//! A front-door router that spreads `POST /elect` traffic across N
//! backend `hre-svc` daemons, built from the same std-only pieces as the
//! rest of the workspace (the daemon's hand-rolled HTTP/1.1 server and
//! client, the shared log₂ histogram, the shared backoff policy):
//!
//! * **Rotation-affinity sharding** ([`hash`]): a consistent-hash ring
//!   over the backends, keyed by the *canonical* (Booth least) rotation
//!   of the request's label sequence. Every rotation of a labeled ring
//!   is the same labeled ring re-indexed, so every rotation routes to
//!   the same shard and shares its LRU result cache — cache hit rates
//!   survive scale-out. Adding or removing one of N nodes remaps only
//!   ~1/N of the keyspace (property-tested at ≤ 2.5/N).
//! * **Health-checked failover** ([`health`]): per-backend three-state
//!   circuit breakers (closed → open on consecutive transport failures →
//!   half-open probe → closed), probed via `GET /healthz` on the shared
//!   capped-backoff schedule; requests route to the next ring position
//!   while a breaker is open.
//! * **Hedged retries** ([`router`]): if a backend sits on a request
//!   past an adaptive per-backend threshold (derived from its observed
//!   p95 latency), the router fires a duplicate to the failover backend
//!   and takes whichever response lands first. Safe because elections
//!   are deterministic and idempotent — both answers are byte-identical.
//! * **Cluster observability**: Prometheus `GET /metrics` (per-backend
//!   request/error/hedge counters, breaker-state gauges, shared
//!   [`hre_runtime::Log2Histogram`] latencies) and a `GET /cluster`
//!   topology document.
//!
//! The wire codec is **not** duplicated here: requests, responses, and
//! JSON all come from [`hre_svc`] (re-exported below), so the router and
//! the backends cannot drift — a body the router parses is exactly a
//! body a backend parses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod hash;
pub mod health;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod topology;

pub use bench::{run_cluster_load, ClusterLoadOptions, ClusterLoadReport};
pub use hash::{shard_key, HashRing};
pub use health::{Breaker, BreakerState};
pub use metrics::{BackendMetrics, ClusterMetrics};
pub use router::{start, ClusterConfig, RouterController, RouterHandle, RouterSummary};
pub use topology::{BackendSlot, Topology};

// The shared wire codec: one source of truth, re-exported so cluster
// users never import a second copy that could drift from the backends.
pub use hre_svc::{error_json, AlgoId, Client, ClientResponse, ElectRequest, Json};
