//! The router's swappable view of its backend set.
//!
//! Until PR 6 the backend list was fixed at startup: the hash ring, the
//! connection pools, the breakers, and the per-backend metrics were all
//! parallel vectors indexed by configuration order, immutable for the
//! router's lifetime. The control plane changes that — the elected
//! coordinator pushes a new backend list whenever membership changes —
//! so everything index-addressed now lives inside one immutable
//! [`Topology`] snapshot behind an `RwLock<Arc<..>>`.
//!
//! The request path grabs **one** `Arc` clone up front and uses it for
//! the whole request: candidate selection, attempt spawning, breaker
//! bookkeeping, and latency recording all see the same consistent
//! generation, even if a config push swaps the topology mid-request.
//! In-flight attempts against a removed backend finish against the old
//! snapshot and are dropped with it.
//!
//! Slots are **reused by address** across swaps: a backend present in
//! both the old and new topology keeps its [`Breaker`] state, its warm
//! connection pool, and its cumulative counters — a reconfiguration
//! must not amnesty a tripped breaker or cold-start every pool. A
//! removed backend's pool is cleared so its keep-alive sockets close
//! promptly.
//!
//! Each topology carries the control-plane **epoch** that produced it;
//! [`crate::router::RouterHandle::update_backends`] refuses pushes whose
//! epoch is below the current one, which is how a deposed coordinator's
//! stale configuration is fenced off.

use crate::hash::HashRing;
use crate::health::Breaker;
use crate::metrics::BackendMetrics;
use crate::pool::BackendPool;
use crate::router::ClusterConfig;
use std::sync::Arc;

/// Everything the router tracks for one backend: the dial target, its
/// keep-alive pool, its circuit breaker, and its counters. Shared (via
/// `Arc`) between consecutive topology generations that both contain
/// the backend.
pub struct BackendSlot {
    addr: String,
    /// Keep-alive connections to this backend.
    pub pool: BackendPool,
    /// The backend's circuit breaker (state survives reconfiguration).
    pub breaker: Breaker,
    /// Cumulative per-backend counters and attempt latency.
    pub metrics: BackendMetrics,
}

impl BackendSlot {
    /// A fresh slot for `addr` with the router's pool/breaker knobs.
    pub fn new(addr: &str, cfg: &ClusterConfig) -> BackendSlot {
        BackendSlot {
            addr: addr.to_string(),
            pool: BackendPool::new(addr, cfg.timeout, cfg.pool_cap),
            breaker: Breaker::new(cfg.failure_threshold, cfg.probe_start, cfg.probe_cap),
            metrics: BackendMetrics::default(),
        }
    }

    /// The backend address this slot dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// When to hedge a request sitting on this backend: twice its
    /// observed p95 (interpolated within the covering log₂ bucket),
    /// floored at `hedge_min` so a cold or very fast backend is not
    /// hedged on noise.
    pub fn hedge_threshold(&self, hedge_min: std::time::Duration) -> std::time::Duration {
        let snap = self.metrics.latency.snapshot();
        let p95_us = snap.quantile_us(0.95);
        hedge_min.max(std::time::Duration::from_micros(p95_us.saturating_mul(2)))
    }
}

/// One immutable generation of the router's backend set: the hash ring
/// and the slots it indexes, stamped with the epoch that produced it.
pub struct Topology {
    /// Control-plane epoch of the config push that built this topology
    /// (0 for a static configuration).
    pub epoch: u64,
    /// Consistent-hash ring over `slots` (same indices).
    pub ring: HashRing,
    /// Backend slots in ring-index order.
    pub slots: Vec<Arc<BackendSlot>>,
}

impl Topology {
    /// The initial topology from a static backend list.
    pub fn initial(cfg: &ClusterConfig) -> Topology {
        Topology {
            epoch: 0,
            ring: HashRing::new(&cfg.backends, cfg.vnodes),
            slots: cfg.backends.iter().map(|b| Arc::new(BackendSlot::new(b, cfg))).collect(),
        }
    }

    /// The successor topology for a new backend list: slots for
    /// addresses already present are carried over (breaker state, warm
    /// pool, counters intact), new addresses get fresh slots, and the
    /// pools of dropped addresses are cleared.
    pub fn successor(&self, epoch: u64, backends: &[String], cfg: &ClusterConfig) -> Topology {
        let slots: Vec<Arc<BackendSlot>> = backends
            .iter()
            .map(|addr| {
                self.slots
                    .iter()
                    .find(|s| s.addr() == addr)
                    .cloned()
                    .unwrap_or_else(|| Arc::new(BackendSlot::new(addr, cfg)))
            })
            .collect();
        for old in &self.slots {
            if !backends.iter().any(|a| a == old.addr()) {
                old.pool.clear();
            }
        }
        Topology { epoch, ring: HashRing::new(backends, cfg.vnodes), slots }
    }

    /// Number of backends in this generation.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether this generation has no backends at all (a dynamic router
    /// waiting for its first config push).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot that owns `addr`, if present in this generation.
    pub fn slot_for(&self, addr: &str) -> Option<&Arc<BackendSlot>> {
        self.slots.iter().find(|s| s.addr() == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(backends: &[&str]) -> ClusterConfig {
        ClusterConfig {
            backends: backends.iter().map(|s| s.to_string()).collect(),
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn successor_reuses_slots_by_address() {
        let c = cfg(&["127.0.0.1:1001", "127.0.0.1:1002"]);
        let t0 = Topology::initial(&c);
        // Trip 1001's breaker so carried-over state is observable.
        for _ in 0..3 {
            t0.slots[0].breaker.record_failure();
        }
        assert_eq!(t0.slots[0].breaker.opened_total(), 1);

        let next =
            vec!["127.0.0.1:1002".to_string(), "127.0.0.1:1001".into(), "127.0.0.1:1003".into()];
        let t1 = t0.successor(7, &next, &c);
        assert_eq!(t1.epoch, 7);
        assert_eq!(t1.len(), 3);
        // 1001 moved position but kept its identity — breaker state and
        // all — while 1003 is a fresh slot.
        assert!(Arc::ptr_eq(t1.slot_for("127.0.0.1:1001").unwrap(), &t0.slots[0]));
        assert!(Arc::ptr_eq(t1.slot_for("127.0.0.1:1002").unwrap(), &t0.slots[1]));
        assert_eq!(t1.slot_for("127.0.0.1:1001").unwrap().breaker.opened_total(), 1);
        assert_eq!(t1.slot_for("127.0.0.1:1003").unwrap().breaker.opened_total(), 0);
    }

    #[test]
    fn successor_clears_dropped_pools() {
        let c = cfg(&["127.0.0.1:1001", "127.0.0.1:1002"]);
        let t0 = Topology::initial(&c);
        let keep = vec!["127.0.0.1:1002".to_string()];
        let t1 = t0.successor(1, &keep, &c);
        assert!(t1.slot_for("127.0.0.1:1001").is_none());
        assert_eq!(t0.slots[0].pool.idle_len(), 0, "dropped pool emptied");
    }
}
