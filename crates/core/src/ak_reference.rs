//! A deliberately *literal* transcription of Table 1 — the reference
//! implementation `AkReference`.
//!
//! [`Ak`](crate::Ak) keeps incremental occurrence counts and caches the
//! `Leader(σ)` verdict once the ring is determined; those are pure
//! evaluation caches, but caches can hide bugs. This module transcribes
//! the paper's action table with **no optimization whatsoever** — the
//! `Leader` predicate is recomputed from scratch (full occurrence scan,
//! naive `O(m²)` srp, naive `O(n²)` Lyndon test) on every reception,
//! exactly as written.
//!
//! The differential tests (here and in `benches/bench_ablation.rs`) drive
//! both implementations over the same rings and assert **identical
//! per-process message streams** — the strongest behavioral equivalence
//! available short of state bisimulation — which justifies trusting the
//! optimized `Ak` everywhere else.

use crate::ak::AkMsg;
use hre_sim::{Algorithm, ElectionState, Outbox, ProcessBehavior, Reaction};
use hre_words::{is_lyndon, least_rotation_naive, occurrences, rotate_left, srp_len_naive, Label};

/// The paper's `Leader(σ)` predicate, computed entirely with naive
/// reference algorithms.
pub fn leader_predicate_naive(sigma: &[Label], k: usize) -> bool {
    let threshold = 2 * k + 1;
    let has_heavy_label = sigma.iter().any(|l| occurrences(sigma, l) >= threshold);
    if !has_heavy_label {
        return false;
    }
    let srp = &sigma[..srp_len_naive(sigma)];
    is_lyndon(srp)
}

/// Factory for the unoptimized reference processes.
#[derive(Clone, Copy, Debug)]
pub struct AkReference {
    /// The multiplicity bound `k ≥ 1`.
    pub k: usize,
}

impl AkReference {
    /// Creates the reference algorithm for a bound `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "Ak requires k >= 1");
        AkReference { k }
    }
}

impl Algorithm for AkReference {
    type Proc = AkReferenceProc;

    fn name(&self) -> String {
        format!("AkReference(k={})", self.k)
    }

    fn spawn(&self, label: Label) -> AkReferenceProc {
        AkReferenceProc {
            id: label,
            k: self.k,
            init: true,
            string: Vec::new(),
            st: ElectionState::INITIAL,
        }
    }
}

/// One reference process: exactly the paper's six variables, nothing else.
pub struct AkReferenceProc {
    id: Label,
    k: usize,
    init: bool,
    string: Vec<Label>,
    st: ElectionState,
}

impl ProcessBehavior for AkReferenceProc {
    type Msg = AkMsg;

    /// A1.
    fn on_start(&mut self, out: &mut Outbox<AkMsg>) {
        self.init = false;
        self.string.push(self.id);
        out.send(AkMsg::Token(self.id));
    }

    fn on_msg(&mut self, msg: &AkMsg, out: &mut Outbox<AkMsg>) -> Reaction {
        match (*msg, self.st.is_leader) {
            // A5.
            (AkMsg::Token(_), true) => Reaction::Consumed,
            (AkMsg::Token(x), false) => {
                // Guards of A2/A3 evaluate Leader(p.string . x) afresh.
                self.string.push(x);
                if leader_predicate_naive(&self.string, self.k) {
                    // A3.
                    self.st.is_leader = true;
                    self.st.leader = Some(self.id);
                    self.st.done = true;
                    out.send(AkMsg::Finish);
                } else {
                    // A2.
                    out.send(AkMsg::Token(x));
                }
                Reaction::Consumed
            }
            // A4 — all-naive LW(srp(string))[1].
            (AkMsg::Finish, false) => {
                let srp = &self.string[..srp_len_naive(&self.string)];
                let lw = rotate_left(srp, least_rotation_naive(srp));
                self.st.leader = Some(lw[0]);
                self.st.done = true;
                out.send(AkMsg::Finish);
                self.st.halted = true;
                Reaction::Consumed
            }
            // A6.
            (AkMsg::Finish, true) => {
                self.st.halted = true;
                Reaction::Consumed
            }
        }
    }

    fn election(&self) -> ElectionState {
        self.st
    }

    fn space_bits(&self, label_bits: u32) -> u64 {
        let b = label_bits as u64;
        self.string.len() as u64 * b + 2 * b + 3
    }

    /// `⟨x⟩` carries one label plus a one-bit tag; `⟨FINISH⟩` is the tag
    /// alone.
    fn msg_wire_bits(&self, msg: &AkMsg, label_bits: u32) -> u64 {
        match msg {
            AkMsg::Token(_) => label_bits as u64 + 1,
            AkMsg::Finish => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ak;
    use hre_ring::{catalog, enumerate, generate, RingLabeling};
    use hre_sim::{run, RoundRobinSched, RunOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn traces_identical(ring: &RingLabeling, k: usize) {
        let opts = RunOptions { record_trace: true, ..Default::default() };
        let fast = run(&Ak::new(k), ring, &mut RoundRobinSched::default(), opts);
        let slow = run(&AkReference::new(k), ring, &mut RoundRobinSched::default(), opts);
        assert_eq!(fast.verdict, slow.verdict, "{ring:?} k={k}");
        assert_eq!(fast.leader, slow.leader, "{ring:?} k={k}");
        assert_eq!(fast.metrics.messages, slow.metrics.messages, "{ring:?} k={k}");
        assert_eq!(fast.metrics.time_units, slow.metrics.time_units, "{ring:?} k={k}");
        assert_eq!(fast.metrics.peak_space_bits, slow.metrics.peak_space_bits, "{ring:?} k={k}");
        let (tf, ts) = (fast.trace.unwrap(), slow.trace.unwrap());
        for p in 0..ring.n() {
            assert_eq!(tf.received_stream(p), ts.received_stream(p), "{ring:?} k={k} p={p}");
            assert_eq!(tf.sent_stream(p), ts.sent_stream(p), "{ring:?} k={k} p={p}");
        }
    }

    #[test]
    fn differential_exhaustive_small_rings() {
        for n in 2..=5usize {
            for ring in enumerate::canonical_asymmetric_labelings(n, 3) {
                let k = ring.max_multiplicity();
                traces_identical(&ring, k);
                traces_identical(&ring, k + 1); // overestimation too
            }
        }
    }

    #[test]
    fn differential_random_rings() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..15 {
            let ring = generate::random_a_inter_kk(9, 3, 4, &mut rng);
            traces_identical(&ring, 3);
        }
    }

    #[test]
    fn differential_figure1() {
        traces_identical(&catalog::figure1_ring(), catalog::FIGURE1_K);
    }

    #[test]
    fn naive_predicate_matches_optimized_predicate() {
        use crate::leader_predicate;
        let ring = catalog::figure1_ring();
        for p in 0..ring.n() {
            for m in 1..=60 {
                let sigma = ring.llabels(p, m);
                for k in 1..=4 {
                    assert_eq!(
                        leader_predicate(&sigma, k),
                        leader_predicate_naive(&sigma, k),
                        "p={p} m={m} k={k}"
                    );
                }
            }
        }
    }
}
