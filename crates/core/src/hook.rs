//! Optional election-run observer hook.
//!
//! An embedding runtime (the election service daemon) installs a
//! process-wide callback once; whatever executes an election afterwards
//! reports the run's measured complexity through [`notify`]. The core
//! algorithms stay dependency-free — the hook trades in plain numbers,
//! and an uninstalled hook costs one relaxed `OnceLock` load per run.
//!
//! The service uses this to attach an `election` span (messages sent,
//! time units elapsed) under its `execute` span in the flight recorder,
//! which is how a served request's trace reaches all the way down to
//! the paper's complexity measures (Ak's `(2k+2)n` time, Bk's
//! `O(k²n²)` — Tables 1–2) without the algorithms knowing about
//! tracing at all.

use std::sync::OnceLock;
use std::time::Duration;

/// One completed election run, as reported to the installed hook.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElectionRun {
    /// Algorithm that ran (`"ak"`, `"bk"`, …).
    pub algo: &'static str,
    /// Ring size.
    pub n: usize,
    /// Messages sent across all links.
    pub messages: u64,
    /// Virtual time units (unit-delay normalization, as in the paper).
    pub time_units: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

type Hook = Box<dyn Fn(&ElectionRun) + Send + Sync>;

static HOOK: OnceLock<Hook> = OnceLock::new();

/// Installs the process-wide run observer. The first installation wins
/// and sticks for the life of the process (returns `false` if a hook
/// was already installed — the newcomer is dropped). Implementations
/// must be cheap and non-blocking: they run on the election's thread.
pub fn install(hook: impl Fn(&ElectionRun) + Send + Sync + 'static) -> bool {
    HOOK.set(Box::new(hook)).is_ok()
}

/// Reports one completed run to the installed hook, if any.
pub fn notify(run: &ElectionRun) {
    if let Some(hook) = HOOK.get() {
        hook(run);
    }
}

/// `true` iff a hook has been installed (lets callers skip assembling
/// the report when nobody is listening).
pub fn installed() -> bool {
    HOOK.get().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn notify_reaches_the_installed_hook_once_installed() {
        // OnceLock is process-global, so this single test exercises the
        // whole lifecycle: notify-before-install is a no-op, the first
        // install wins, later installs are rejected.
        let seen = Arc::new(AtomicU64::new(0));
        let run = ElectionRun {
            algo: "ak",
            n: 8,
            messages: 100,
            time_units: 20,
            wall: Duration::from_micros(50),
        };
        if !installed() {
            notify(&run); // nobody listening: must not panic
        }
        let seen2 = Arc::clone(&seen);
        let first = install(move |r| {
            seen2.fetch_add(r.messages, Ordering::Relaxed);
        });
        if first {
            notify(&run);
            assert_eq!(seen.load(Ordering::Relaxed), 100);
        }
        assert!(installed());
        assert!(!install(|_| ()), "second install must be rejected");
    }
}
